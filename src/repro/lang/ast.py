"""Abstract syntax for the Jigsaw query dialect.

Pure data: the parser builds these nodes, the binder lowers them onto the
probdb expression/operator layer and the scenario/optimizer objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# --------------------------------------------------------------------------
# Expressions


class ExprNode:
    """Base class for expression AST nodes."""


@dataclass(frozen=True)
class NumberLit(ExprNode):
    value: float


@dataclass(frozen=True)
class Identifier(ExprNode):
    """A bare identifier: column alias or (in constraints) a column name."""

    name: str


@dataclass(frozen=True)
class ParamNode(ExprNode):
    """``@name`` parameter reference."""

    name: str


@dataclass(frozen=True)
class BinaryNode(ExprNode):
    op: str
    left: ExprNode
    right: ExprNode


@dataclass(frozen=True)
class UnaryNode(ExprNode):
    op: str
    operand: ExprNode


@dataclass(frozen=True)
class CaseNode(ExprNode):
    """``CASE WHEN cond THEN a ELSE b END``."""

    condition: ExprNode
    then_value: ExprNode
    else_value: ExprNode


@dataclass(frozen=True)
class CallNode(ExprNode):
    """``Name(arg, ...)`` — a black-box or scalar function invocation."""

    name: str
    arguments: Tuple[ExprNode, ...]


@dataclass(frozen=True)
class AggregateNode(ExprNode):
    """``SUM(expr)`` / ``AVG`` / ``COUNT`` / ``MIN`` / ``MAX`` over the rows
    of the select's source (paper section 2.2: the cumulative effect of an
    event table is "a simple SQL SUM aggregate")."""

    kind: str
    argument: ExprNode


# --------------------------------------------------------------------------
# Statements


class Statement:
    """Base class for top-level statements."""


@dataclass(frozen=True)
class RangeSpec:
    start: float
    stop: float
    step: float


@dataclass(frozen=True)
class SetSpec:
    members: Tuple[float, ...]


@dataclass(frozen=True)
class ChainSpec:
    """``CHAIN column FROM @driver : offset_expr INITIAL VALUE v``."""

    source_column: str
    driver: str
    offset_expr: ExprNode
    initial_value: float


@dataclass(frozen=True)
class DeclareParameter(Statement):
    name: str
    spec: Union[RangeSpec, SetSpec, ChainSpec]


@dataclass(frozen=True)
class SelectItem:
    expression: ExprNode
    alias: Optional[str]


@dataclass(frozen=True)
class SelectStatement(Statement):
    """``SELECT items [FROM (subselect) | FROM table_name] INTO table``."""

    items: Tuple[SelectItem, ...]
    subquery: Optional["SelectStatement"]
    into: Optional[str]
    source_table: Optional[str] = None


@dataclass(frozen=True)
class ConstraintClause:
    """``AGG(METRIC column) OP threshold``, e.g. MAX(EXPECT overload) < 0.01."""

    aggregate: str
    metric: str
    column: str
    op: str
    threshold: float


@dataclass(frozen=True)
class ObjectiveClause:
    """``MAX @param`` / ``MIN @param``."""

    direction: str
    parameter: str


@dataclass(frozen=True)
class OptimizeStatement(Statement):
    """``OPTIMIZE SELECT ... FROM table WHERE ... GROUP BY ... FOR ...``."""

    select_params: Tuple[str, ...]
    source_table: str
    constraints: Tuple[ConstraintClause, ...]
    group_by: Tuple[str, ...]
    objectives: Tuple[ObjectiveClause, ...]


@dataclass(frozen=True)
class GraphSeries:
    """One plotted series: ``METRIC column WITH style words``."""

    metric: str
    column: str
    style: Tuple[str, ...] = ()


@dataclass(frozen=True)
class GraphStatement(Statement):
    """``GRAPH OVER @param series, series, ...`` (interactive mode)."""

    x_parameter: str
    series: Tuple[GraphSeries, ...]


@dataclass
class Script:
    """An ordered list of parsed statements."""

    statements: List[Statement] = field(default_factory=list)

    def declares(self) -> List[DeclareParameter]:
        return [s for s in self.statements if isinstance(s, DeclareParameter)]

    def selects(self) -> List[SelectStatement]:
        return [s for s in self.statements if isinstance(s, SelectStatement)]

    def optimizes(self) -> List[OptimizeStatement]:
        return [s for s in self.statements if isinstance(s, OptimizeStatement)]

    def graphs(self) -> List[GraphStatement]:
        return [s for s in self.statements if isinstance(s, GraphStatement)]
