"""Save -> load -> probe parity (the persistence layer's invariant).

A store loaded from a snapshot must be indistinguishable from the live
store it was saved from: for every probe the same basis id, bitwise-same
mapping parameters, and the same ``candidates_tested`` counters (stats are
persisted, so the cumulative counters line up exactly) — across all five
mapping families, all three index strategies, and every store shape the
match-parity suite exercises, including after a :meth:`BasisStore.merge`
into a loaded store.  Mirrors ``test_match_parity.py``.

Also pinned here: copy-on-write promotion (mutating a memory-mapped store
never writes through to the snapshot), atomic overwrite, and the typed
compatibility refusals.
"""

import os

import numpy as np
import pytest

from repro.core import persist
from repro.core.basis import BasisStore
from repro.core.estimator import Estimator
from repro.core.fingerprint import Fingerprint
from repro.core.index import INDEX_STRATEGIES
from repro.core.mapping import (
    IdentityMappingFamily,
    LinearMappingFamily,
    MonotoneMappingFamily,
    ScaleMappingFamily,
    ShiftMappingFamily,
)
from repro.core.seeds import SeedBank
from repro.errors import (
    PersistError,
    SnapshotCompatibilityError,
)
from repro.interactive.session import InteractiveSession
from repro.scenario.parameter import RangeParameter
from repro.scenario.space import ParameterSpace

FAMILY_FACTORIES = {
    "linear": LinearMappingFamily,
    "identity": IdentityMappingFamily,
    "shift": ShiftMappingFamily,
    "scale": ScaleMappingFamily,
    "monotone": MonotoneMappingFamily,
}

BASE = Fingerprint((0.0, 1.0, 0.5, 2.0, -1.0))
SAMPLES = np.linspace(-1.0, 2.0, 40)


def _affine(fp, alpha, beta):
    return Fingerprint(tuple(alpha * v + beta for v in fp.values))


def _cubic(fp):
    return Fingerprint(tuple(v**3 for v in fp.values))


CONTENTS = {
    "empty": [],
    "singleton": [BASE],
    "duplicates": [BASE, Fingerprint(BASE.values), _affine(BASE, 1.0, 0.0)],
    "mixed": [
        BASE,
        _affine(BASE, 2.0, 3.0),
        _cubic(BASE),
        Fingerprint((4.0, 4.0, 4.0, 4.0, 4.0)),  # constant
        Fingerprint((0.0, 0.0, 0.0, 0.0, 0.0)),  # zero
        Fingerprint((1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)),  # other size
        _affine(BASE, -1.5, 0.25),
    ],
}

PROBES = [
    BASE,
    _affine(BASE, 1.0, 0.0),
    _affine(BASE, 3.0, -2.0),
    _affine(BASE, 1.0, 4.5),  # pure shift
    _affine(BASE, 2.5, 0.0),  # pure scale
    _affine(BASE, -2.0, 1.0),  # decreasing affine
    _cubic(BASE),  # monotone, not affine
    Fingerprint(tuple(-(v**3) for v in BASE.values)),  # decreasing monotone
    Fingerprint((4.0, 4.0, 4.0, 4.0, 4.0)),  # constant hit
    Fingerprint((7.5, 7.5, 7.5, 7.5, 7.5)),  # constant shift image
    Fingerprint((0.0, 0.0, 0.0, 0.0, 0.0)),  # zero
    Fingerprint((0.3, 0.1, 0.9, 0.2, 0.8)),  # unrelated: miss
    Fingerprint((1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)),  # other size, exact
    Fingerprint((2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0)),  # other size, 2x
]


def build_store(family_name, strategy, fingerprints):
    store = BasisStore(
        mapping_family=FAMILY_FACTORIES[family_name](),
        index_strategy=strategy,
    )
    store.columnar_min_candidates = 0
    store._verify_remaining = 0
    for index, fingerprint in enumerate(fingerprints):
        store.add(fingerprint, SAMPLES * (index + 1))
    return store


def fresh_like(store):
    return BasisStore(
        mapping_family=type(store.mapping_family)(),
        index_strategy=type(store.index).strategy,
    )


def save_and_load(store, path, mmap=True):
    persist.save_store(store, str(path))
    loaded = persist.load_store(str(path), like=fresh_like(store), mmap=mmap)
    loaded.columnar_min_candidates = store.columnar_min_candidates
    loaded._verify_remaining = store._verify_remaining
    return loaded


def assert_same_match(expected, actual):
    assert (expected is None) == (actual is None)
    if expected is None:
        return
    assert actual.basis.basis_id == expected.basis.basis_id
    assert type(actual.mapping) is type(expected.mapping)
    assert actual.mapping == expected.mapping


def assert_probe_parity(live, loaded):
    """Probe both stores identically; everything observable must agree."""
    assert len(loaded) == len(live)
    assert loaded.stats.as_dict() == live.stats.as_dict()
    expected = [live.match(probe) for probe in PROBES]
    actual = [loaded.match(probe) for probe in PROBES]
    for want, got in zip(expected, actual):
        assert_same_match(want, got)
    assert loaded.stats.as_dict() == live.stats.as_dict()
    via_batch = loaded.match_batch(PROBES)
    live.match_batch(PROBES)
    for want, got in zip(expected, via_batch):
        assert_same_match(want, got)
    assert loaded.stats.as_dict() == live.stats.as_dict()


class TestSaveLoadProbeParity:
    @pytest.mark.parametrize("content_name", sorted(CONTENTS))
    @pytest.mark.parametrize("strategy", INDEX_STRATEGIES)
    @pytest.mark.parametrize("family_name", sorted(FAMILY_FACTORIES))
    def test_loaded_store_probes_like_live(
        self, family_name, strategy, content_name, tmp_path
    ):
        content = CONTENTS[content_name]
        if not content:
            # An empty collection is refused outright (nothing to persist
            # is almost always a caller bug); pin that and stop.
            store = build_store(family_name, strategy, content)
            persist.save_store(store, str(tmp_path / "snap"))
            loaded = persist.load_store(
                str(tmp_path / "snap"), like=fresh_like(store)
            )
            assert len(loaded) == 0
            assert loaded.match(BASE) is None
            return
        live = build_store(family_name, strategy, content)
        loaded = save_and_load(live, tmp_path / "snap")
        assert_probe_parity(live, loaded)

    @pytest.mark.parametrize("strategy", INDEX_STRATEGIES)
    @pytest.mark.parametrize("family_name", sorted(FAMILY_FACTORIES))
    def test_probed_store_roundtrips_materialized_keys(
        self, family_name, strategy, tmp_path
    ):
        """Saving *after* probes (key matrices materialized, stats
        non-zero) must round-trip those too."""
        live = build_store(family_name, strategy, CONTENTS["mixed"])
        for probe in PROBES:
            live.match(probe)
        loaded = save_and_load(live, tmp_path / "snap")
        assert_probe_parity(live, loaded)

    @pytest.mark.parametrize("family_name", sorted(FAMILY_FACTORIES))
    def test_samples_and_metrics_bitwise(self, family_name, tmp_path):
        live = build_store(family_name, "array", CONTENTS["mixed"])
        loaded = save_and_load(live, tmp_path / "snap")
        for basis_id in range(len(live)):
            live_basis = live.get(basis_id)
            loaded_basis = loaded.get(basis_id)
            np.testing.assert_array_equal(
                np.asarray(loaded_basis.samples),
                np.asarray(live_basis.samples),
            )
            assert loaded_basis.metrics == live_basis.metrics
            assert (
                loaded_basis.fingerprint.values
                == live_basis.fingerprint.values
            )

    def test_no_mmap_mode_matches_mmap_mode(self, tmp_path):
        live = build_store("linear", "normalization", CONTENTS["mixed"])
        persist.save_store(live, str(tmp_path / "snap"))
        mapped = persist.load_store(
            str(tmp_path / "snap"), like=fresh_like(live), mmap=True
        )
        copied = persist.load_store(
            str(tmp_path / "snap"), like=fresh_like(live), mmap=False
        )
        for probe in PROBES:
            assert_same_match(mapped.match(probe), copied.match(probe))
        assert mapped.stats.as_dict() == copied.stats.as_dict()


class TestMergeIntoLoadedStore:
    LEFT = [BASE, _cubic(BASE), Fingerprint((3.0, 3.0, 3.0, 3.0, 3.0))]
    RIGHT = [
        _affine(BASE, 4.0, -1.0),  # collapses into BASE under linear
        Fingerprint((0.2, 0.7, 0.1, 0.9, 0.4)),  # new basis
        Fingerprint(BASE.values),  # duplicate of BASE
    ]

    @pytest.mark.parametrize("reprobe", (True, False))
    @pytest.mark.parametrize("strategy", INDEX_STRATEGIES)
    @pytest.mark.parametrize("family_name", sorted(FAMILY_FACTORIES))
    def test_merge_after_load_equals_live_merge(
        self, family_name, strategy, reprobe, tmp_path
    ):
        live_left = build_store(family_name, strategy, self.LEFT)
        live_right = build_store(family_name, strategy, self.RIGHT)
        loaded_left = save_and_load(live_left, tmp_path / "left")
        loaded_right = save_and_load(live_right, tmp_path / "right")

        expected = live_left.merge(live_right, reprobe=reprobe)
        actual = loaded_left.merge(loaded_right, reprobe=reprobe)

        assert set(actual) == set(expected)
        for incoming_id in expected:
            assert actual[incoming_id] == expected[incoming_id]
        assert_probe_parity(live_left, loaded_left)

    def test_merged_loaded_store_resnapshots(self, tmp_path):
        """save -> load -> merge -> save -> load keeps full parity."""
        live_left = build_store("linear", "normalization", self.LEFT)
        live_right = build_store("linear", "normalization", self.RIGHT)
        loaded_left = save_and_load(live_left, tmp_path / "left")
        loaded_right = save_and_load(live_right, tmp_path / "right")
        live_left.merge(live_right)
        loaded_left.merge(loaded_right)
        reloaded = save_and_load(loaded_left, tmp_path / "merged")
        assert_probe_parity(live_left, reloaded)


class TestCopyOnWrite:
    """Mutating a memory-mapped store must never touch the snapshot."""

    def _snapshot_bytes(self, path):
        payload = {}
        for name in sorted(os.listdir(path)):
            with open(os.path.join(path, name), "rb") as handle:
                payload[name] = handle.read()
        return payload

    def test_add_extend_merge_leave_snapshot_untouched(self, tmp_path):
        live = build_store("linear", "normalization", CONTENTS["mixed"])
        path = tmp_path / "snap"
        persist.save_store(live, str(path))
        before = self._snapshot_bytes(path)

        loaded = persist.load_store(str(path), like=fresh_like(live))
        # Every mutation class: append a basis, extend one, merge a store.
        loaded.add(Fingerprint((9.0, 8.0, 7.0, 6.0, 5.0)), np.arange(12.0))
        loaded.extend_basis(0, np.arange(5.0))
        other = build_store("linear", "normalization", [_cubic(BASE)])
        loaded.merge(other)
        loaded.match_batch(PROBES)

        assert self._snapshot_bytes(path) == before
        # And a reload still sees the original store.
        reloaded = persist.load_store(str(path), like=fresh_like(live))
        assert len(reloaded) == len(live)

    def test_loaded_matrices_are_readonly_until_promoted(self, tmp_path):
        live = build_store("linear", "array", CONTENTS["mixed"])
        loaded = save_and_load(live, tmp_path / "snap")
        block = loaded.columnar._blocks[BASE.size]
        assert not block.matrix.flags.writeable
        loaded.add(_affine(BASE, 7.0, 7.0), SAMPLES)
        assert block is loaded.columnar._blocks[BASE.size]
        assert block.matrix.flags.writeable  # promoted, not written through

    def test_interactive_rebind_on_loaded_store(self, tmp_path):
        """`_rebind_from_scratch` (and refinement) on a read-only/mmap
        store must promote copy-on-write, not crash or corrupt."""
        live = BasisStore()
        explorer_sim = lambda params, seed: (  # noqa: E731
            params["x"] * float(seed % 97) / 97.0
        )
        # Seed the store with one basis so the session can warm-start.
        space = ParameterSpace([RangeParameter("x", 1.0, 3.0, 1.0)])
        seeder = InteractiveSession(
            explorer_sim, space, fingerprint_size=4, chunk=3,
            basis_store=live,
        )
        seeder.focus({"x": 1.0})
        seeder.run(4)
        path = tmp_path / "snap"
        persist.save_store(live, str(path))
        before = self._snapshot_bytes(path)

        session = InteractiveSession(
            explorer_sim, space, fingerprint_size=4, chunk=3,
        )
        session.load_store(str(path))
        assert len(session.store) == len(live)
        session.focus({"x": 2.0})
        for _ in range(9):
            session.tick()
        # Force the failed-validation path directly as well.
        state = session._state({"x": 2.0})
        session._rebind_from_scratch(state)
        assert session.estimate({"x": 2.0}) is not None
        assert self._snapshot_bytes(path) == before

    def test_interactive_load_after_focus_refused(self, tmp_path):
        live = build_store("linear", "normalization", CONTENTS["singleton"])
        path = tmp_path / "snap"
        persist.save_store(live, str(path))
        session = InteractiveSession(
            lambda params, seed: float(seed % 7),
            ParameterSpace([RangeParameter("x", 1.0, 2.0, 1.0)]),
            fingerprint_size=4,
        )
        session.focus({"x": 1.0})
        from repro.errors import InteractiveError

        with pytest.raises(InteractiveError):
            session.load_store(str(path))


class TestAtomicityAndRefusals:
    def test_overwrite_is_all_or_nothing(self, tmp_path):
        first = build_store("linear", "normalization", CONTENTS["singleton"])
        second = build_store("linear", "normalization", CONTENTS["mixed"])
        path = tmp_path / "snap"
        persist.save_store(first, str(path))
        persist.save_store(second, str(path))
        loaded = persist.load_store(str(path), like=fresh_like(second))
        assert len(loaded) == len(second)
        # No stray temp/old directories survive a successful swap.
        leftovers = [
            name
            for name in os.listdir(tmp_path)
            if name != "snap"
        ]
        assert leftovers == []

    def test_family_mismatch_refused(self, tmp_path):
        live = build_store("linear", "normalization", CONTENTS["singleton"])
        persist.save_store(live, str(tmp_path / "snap"))
        with pytest.raises(SnapshotCompatibilityError, match="family"):
            persist.load_store(
                str(tmp_path / "snap"),
                like=BasisStore(mapping_family=ShiftMappingFamily()),
            )

    def test_strategy_mismatch_refused(self, tmp_path):
        live = build_store("linear", "normalization", CONTENTS["singleton"])
        persist.save_store(live, str(tmp_path / "snap"))
        with pytest.raises(SnapshotCompatibilityError, match="strategy"):
            persist.load_store(
                str(tmp_path / "snap"),
                like=BasisStore(index_strategy="sorted_sid"),
            )

    def test_tolerance_mismatch_refused(self, tmp_path):
        live = build_store("linear", "array", CONTENTS["singleton"])
        persist.save_store(live, str(tmp_path / "snap"))
        with pytest.raises(SnapshotCompatibilityError, match="tolerance"):
            persist.load_store(
                str(tmp_path / "snap"),
                like=BasisStore(index_strategy="array", rel_tol=1e-6),
            )

    def test_seed_bank_mismatch_refused(self, tmp_path):
        live = build_store("linear", "array", CONTENTS["singleton"])
        persist.save_store(
            live, str(tmp_path / "snap"), seed_bank=SeedBank(1234)
        )
        with pytest.raises(SnapshotCompatibilityError, match="seed bank"):
            persist.load_store(
                str(tmp_path / "snap"), seed_bank=SeedBank(5678)
            )
        # The recorded bank itself loads fine.
        loaded = persist.load_store(
            str(tmp_path / "snap"), seed_bank=SeedBank(1234)
        )
        assert len(loaded) == 1

    def test_estimator_mismatch_refused(self, tmp_path):
        live = build_store("linear", "array", CONTENTS["singleton"])
        persist.save_store(live, str(tmp_path / "snap"))
        unusual = BasisStore(
            index_strategy="array",
            estimator=Estimator(quantile_probabilities=(0.5,)),
        )
        with pytest.raises(SnapshotCompatibilityError, match="estimator"):
            persist.load_store(str(tmp_path / "snap"), like=unusual)

    def test_store_name_set_mismatch_refused(self, tmp_path):
        persist.save_stores(
            {"a": build_store("linear", "array", CONTENTS["singleton"])},
            str(tmp_path / "snap"),
        )
        with pytest.raises(SnapshotCompatibilityError, match="covers"):
            persist.load_stores(
                str(tmp_path / "snap"),
                like={"a": BasisStore(index_strategy="array"),
                      "b": BasisStore(index_strategy="array")},
            )

    def test_newer_version_refused(self, tmp_path):
        live = build_store("linear", "array", CONTENTS["singleton"])
        path = tmp_path / "snap"
        persist.save_store(live, str(path))
        import json
        import zlib

        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["body"]["version"] = persist.SNAPSHOT_VERSION + 1
        manifest["crc32"] = zlib.crc32(
            persist._canonical(manifest["body"])
        )
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotCompatibilityError, match="version"):
            persist.load_store(str(path))

    def test_missing_snapshot_raises_persist_error(self, tmp_path):
        with pytest.raises(PersistError, match="no snapshot"):
            persist.load_store(str(tmp_path / "absent"))

    def test_empty_collection_refused(self, tmp_path):
        with pytest.raises(PersistError, match="empty"):
            persist.save_stores({}, str(tmp_path / "snap"))

    def test_snapshot_info_summarizes_without_loading(self, tmp_path):
        persist.save_stores(
            {
                "demand": build_store(
                    "linear", "normalization", CONTENTS["mixed"]
                ),
                "overload": build_store(
                    "identity", "array", CONTENTS["singleton"]
                ),
            },
            str(tmp_path / "snap"),
            metadata={"figure": "fig8"},
        )
        info = persist.snapshot_info(str(tmp_path / "snap"))
        assert info["version"] == persist.SNAPSHOT_VERSION
        assert info["metadata"] == {"figure": "fig8"}
        assert info["stores"]["demand"] == {
            "bases": len(CONTENTS["mixed"]),
            "mapping_family": "LinearMappingFamily",
            "index_strategy": "normalization",
        }
        assert info["stores"]["overload"]["mapping_family"] == (
            "IdentityMappingFamily"
        )
        assert info["stores"]["overload"]["index_strategy"] == "array"

    def test_unknown_family_without_like_refused(self, tmp_path):
        class OddFamily(LinearMappingFamily):
            pass

        live = BasisStore(mapping_family=OddFamily(), index_strategy="array")
        live.add(BASE, SAMPLES)
        persist.save_store(live, str(tmp_path / "snap"))
        with pytest.raises(SnapshotCompatibilityError, match="built-in"):
            persist.load_store(str(tmp_path / "snap"))
        # With a matching `like` store the user family round-trips.
        loaded = persist.load_store(
            str(tmp_path / "snap"),
            like=BasisStore(
                mapping_family=OddFamily(), index_strategy="array"
            ),
        )
        assert isinstance(loaded.mapping_family, OddFamily)
        assert loaded.match(_affine(BASE, 2.0, 1.0)) is not None
