"""Unit tests for the global seed bank (paper section 3.1)."""

import pytest

from repro.core.seeds import DEFAULT_SEED_BANK, SeedBank, derive_seed, mix64


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {mix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000

    def test_output_fits_64_bits(self):
        for value in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= mix64(value) < 2**64

    def test_negative_input_masked(self):
        assert mix64(-1) == mix64(2**64 - 1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_order_sensitive(self):
        assert derive_seed(1, 2) != derive_seed(2, 1)

    def test_arity_sensitive(self):
        assert derive_seed(1) != derive_seed(1, 0)

    def test_no_collisions_over_grid(self):
        outputs = {
            derive_seed(a, b) for a in range(100) for b in range(100)
        }
        assert len(outputs) == 100 * 100


class TestSeedBank:
    def test_same_master_same_seeds(self):
        a = SeedBank(7)
        b = SeedBank(7)
        assert a.seeds(20) == b.seeds(20)

    def test_different_master_different_seeds(self):
        assert SeedBank(1).seeds(5) != SeedBank(2).seeds(5)

    def test_seed_index_stability(self):
        bank = SeedBank(42)
        assert bank.seed(3) == bank.seeds(10)[3]

    def test_seeds_with_start_offset(self):
        bank = SeedBank(42)
        assert bank.seeds(5, start=5) == bank.seeds(10)[5:]

    def test_iter_seeds_matches_indexed(self):
        bank = SeedBank(42)
        iterator = bank.iter_seeds()
        assert [next(iterator) for _ in range(8)] == bank.seeds(8)

    def test_iter_seeds_with_start(self):
        bank = SeedBank(42)
        iterator = bank.iter_seeds(start=3)
        assert next(iterator) == bank.seed(3)

    def test_all_seeds_distinct(self):
        bank = SeedBank(42)
        seeds = bank.seeds(5000)
        assert len(set(seeds)) == 5000

    def test_step_seed_distinct_from_plain_seed(self):
        bank = SeedBank(42)
        plain = set(bank.seeds(100))
        stepped = {bank.step_seed(i, 0) for i in range(100)}
        assert not plain & stepped

    def test_step_seed_varies_by_step(self):
        bank = SeedBank(42)
        assert bank.step_seed(0, 1) != bank.step_seed(0, 2)

    def test_step_seed_varies_by_instance(self):
        bank = SeedBank(42)
        assert bank.step_seed(1, 0) != bank.step_seed(2, 0)

    def test_negative_seed_index_rejected(self):
        with pytest.raises(ValueError):
            SeedBank(42).seed(-1)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            SeedBank(42).step_seed(0, -1)

    def test_negative_master_rejected(self):
        with pytest.raises(ValueError):
            SeedBank(-5)

    def test_equality_and_hash(self):
        assert SeedBank(9) == SeedBank(9)
        assert SeedBank(9) != SeedBank(10)
        assert hash(SeedBank(9)) == hash(SeedBank(9))

    def test_default_bank_is_stable(self):
        assert DEFAULT_SEED_BANK.seed(0) == SeedBank().seed(0)

    def test_repr_mentions_master(self):
        assert "master_seed" in repr(SeedBank(3))
