"""Benchmark engines, workloads, and figure-reproduction runners."""

from repro.bench.engines import CoreEngine, EngineRun, WrapperEngine, default_query_for
from repro.bench.figures import (
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_match,
)
from repro.bench.harness import FigureResult, Measurement, Series, timed
from repro.bench.workloads import (
    PAPER_FINGERPRINT_SIZE,
    PAPER_SAMPLES_PER_POINT,
    SweepWorkload,
    capacity_workload,
    demand_workload,
    markov_branch_model,
    markov_step_model,
    overload_workload,
    synth_basis_workload,
    user_selection_workload,
)

__all__ = [
    "CoreEngine",
    "EngineRun",
    "WrapperEngine",
    "default_query_for",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_match",
    "FigureResult",
    "Measurement",
    "Series",
    "timed",
    "PAPER_FINGERPRINT_SIZE",
    "PAPER_SAMPLES_PER_POINT",
    "SweepWorkload",
    "capacity_workload",
    "demand_workload",
    "markov_branch_model",
    "markov_step_model",
    "overload_workload",
    "synth_basis_workload",
    "user_selection_workload",
]
