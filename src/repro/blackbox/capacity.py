"""The Capacity black box (paper Figure 6, sections 2.2 and 6.2).

"Simulates a series of purchases.  Each purchase increases the capacity of
the server cluster after an exponentially distributed delay."

The expectation plotted over time is a step function with a *structure*
around each purchase date: for a short window after a purchase, only an
(exponentially shrinking) fraction of sampled worlds have the hardware
online.  Far from any purchase the week-to-week output distributions are
identical up to a constant shift, so Jigsaw collapses the ~8000-point
parameter space into a handful of basis distributions; inside a structure,
each distinct (week − purchase) offset yields its own basis.  Figure 9
sweeps ``structure_size`` (the mean coming-online delay, in weeks) and
observes sub-linear basis growth.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.blackbox.base import BlackBox, Params
from repro.blackbox.draws import DEFAULT_DRAW_CACHE
from repro.blackbox.fastrng import KIND_EXPONENTIAL, KIND_NORMAL
from repro.blackbox.rng import DeterministicRng


class CapacityModel(BlackBox):
    """Stochastic CPU-core availability for a given future week.

    Parameters (per sample): ``current_week``, ``purchase1``, ``purchase2``
    — the week being estimated and two candidate purchase weeks.
    """

    name = "Capacity"
    parameter_names: Tuple[str, ...] = (
        "current_week",
        "purchase1",
        "purchase2",
    )

    def __init__(
        self,
        base_capacity: float = 40.0,
        purchase_volume: float = 30.0,
        structure_size: float = 2.0,
        noise_stddev: float = 1.0,
        weekly_failure_rate: float = 0.0,
    ):
        super().__init__()
        if structure_size < 0:
            raise ValueError("structure_size must be non-negative")
        if noise_stddev < 0:
            raise ValueError("noise_stddev must be non-negative")
        if not 0.0 <= weekly_failure_rate < 1.0:
            raise ValueError("weekly_failure_rate must lie in [0, 1)")
        self.base_capacity = base_capacity
        self.purchase_volume = purchase_volume
        self.structure_size = structure_size
        self.noise_stddev = noise_stddev
        self.weekly_failure_rate = weekly_failure_rate

    def _sample(self, params: Params, seed: int) -> float:
        week = float(params["current_week"])
        purchases = (float(params["purchase1"]), float(params["purchase2"]))
        rng = DeterministicRng(seed)
        # Fleet attrition shrinks the pre-existing capacity geometrically.
        surviving = self.base_capacity * (
            (1.0 - self.weekly_failure_rate) ** max(week, 0.0)
        )
        capacity = surviving + rng.normal(0.0, self.noise_stddev)
        for purchase_week in purchases:
            # The delay draw happens unconditionally so that the seed stream
            # stays aligned across parameter points (same code path => same
            # draws), which is what makes cross-week fingerprints mappable.
            if self.structure_size > 0:
                online_delay = rng.exponential(self.structure_size)
            else:
                online_delay = 0.0
            if week >= purchase_week + online_delay:
                capacity += self.purchase_volume
        return capacity

    def _sample_batch(
        self, params: Params, seeds: np.ndarray
    ) -> Optional[np.ndarray]:
        week = float(params["current_week"])
        purchases = (float(params["purchase1"]), float(params["purchase2"]))
        if self.structure_size > 0:
            kinds = (KIND_NORMAL, KIND_EXPONENTIAL, KIND_EXPONENTIAL)
        else:
            kinds = (KIND_NORMAL,)
        draws = DEFAULT_DRAW_CACHE.matrix(seeds, kinds)
        surviving = self.base_capacity * (
            (1.0 - self.weekly_failure_rate) ** max(week, 0.0)
        )
        capacity = surviving + (0.0 + self.noise_stddev * draws[:, 0])
        for position, purchase_week in enumerate(purchases):
            if self.structure_size > 0:
                online_delay = self.structure_size * draws[:, 1 + position]
            else:
                online_delay = np.zeros(seeds.shape[0])
            capacity = np.where(
                week >= purchase_week + online_delay,
                capacity + self.purchase_volume,
                capacity,
            )
        return capacity
