"""Integration tests for the section 2.2 event-table SUM formulation.

Capacity expressed as ``SELECT SUM(...) FROM random_table`` must behave
like the monolithic CapacityModel black box: same expectation staircase,
same fingerprint-reuse structure (shared bases away from purchase
transients), and exact equivalence between Jigsaw and naive exploration.
"""

import pytest

from repro.blackbox import BlackBoxRegistry, FunctionBlackBox
from repro.blackbox.base import param_key
from repro.blackbox.rng import DeterministicRng
from repro.core.explorer import NaiveExplorer, ParameterExplorer
from repro.errors import BindingError
from repro.lang.binder import compile_query
from repro.probdb import RandomRelation, Relation, Schema, VGColumn

QUERY = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 20 STEP BY 2;
SELECT SUM(CASE WHEN purchase_week + delay <= @current_week
           THEN cores ELSE 0 END) AS capacity
FROM purchases
INTO results;
"""


def purchases_table(delay_mean=2.0):
    base = Relation(
        Schema.of("purchase_week", "cores"),
        [(4.0, 30.0), (12.0, 25.0)],
    )
    delay_model = FunctionBlackBox(
        lambda params, seed: DeterministicRng(seed).exponential(delay_mean),
        name="OnlineDelay",
        parameter_names=("purchase_week",),
    )
    return RandomRelation(
        base,
        [VGColumn("delay", delay_model, ("purchase_week",), ("purchase_week",))],
    )


@pytest.fixture(scope="module")
def bound():
    return compile_query(
        QUERY, BlackBoxRegistry(), tables={"purchases": purchases_table()}
    )


class TestSemantics:
    def test_staircase_expectation(self, bound):
        simulation = bound.scenario.column_simulation("capacity")

        def expectation(week):
            values = [
                simulation({"current_week": week}, seed)
                for seed in range(300)
            ]
            return sum(values) / len(values)

        import math

        assert expectation(0.0) == 0.0
        # First purchase (week 4, 30 cores, Exp(2) delay): by week 10 a
        # fraction 1 - e^(-6/2) of worlds have it online.
        online_by_10 = 30.0 * (1.0 - math.exp(-6.0 / 2.0))
        assert expectation(10.0) == pytest.approx(online_by_10, abs=1.5)
        # By week 20 both purchases are nearly always online.
        online_by_20 = 30.0 * (1.0 - math.exp(-16.0 / 2.0)) + 25.0 * (
            1.0 - math.exp(-8.0 / 2.0)
        )
        assert expectation(20.0) == pytest.approx(online_by_20, abs=1.5)

    def test_deterministic_per_seed(self, bound):
        simulation = bound.scenario.column_simulation("capacity")
        point = {"current_week": 6.0}
        assert simulation(point, 99) == simulation(point, 99)

    def test_output_schema(self, bound):
        assert bound.scenario.output_columns == ("capacity",)


class TestFingerprintReuse:
    def test_jigsaw_equals_naive(self, bound):
        simulation = bound.scenario.column_simulation("capacity")
        points = [{"current_week": float(w)} for w in range(0, 21, 2)]
        jigsaw = ParameterExplorer(simulation, samples_per_point=60).run(
            points
        )
        naive = NaiveExplorer(simulation, samples_per_point=60).run(points)
        for point in points:
            outcome = jigsaw.result(point)
            if not outcome.reused:
                assert outcome.metrics.approx_equals(
                    naive[param_key(point)], rel_tol=1e-8
                )

    def test_weeks_far_from_purchases_share_bases(self, bound):
        simulation = bound.scenario.column_simulation("capacity")
        points = [{"current_week": float(w)} for w in range(0, 21, 2)]
        result = ParameterExplorer(simulation, samples_per_point=60).run(
            points
        )
        assert result.stats.bases_created < len(points)
        assert result.stats.points_reused > 0


class TestBindingRules:
    def test_unknown_table(self):
        with pytest.raises(BindingError):
            compile_query(QUERY, BlackBoxRegistry(), tables={})

    def test_wrong_table_type(self):
        with pytest.raises(BindingError):
            compile_query(
                QUERY, BlackBoxRegistry(), tables={"purchases": object()}
            )

    def test_mixed_aggregate_and_plain_items_rejected(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 2 STEP BY 1;
        SELECT SUM(cores) AS total, cores AS each
        FROM purchases INTO results;
        """
        with pytest.raises(BindingError):
            compile_query(
                source,
                BlackBoxRegistry(),
                tables={"purchases": purchases_table()},
            )

    def test_deterministic_relation_source(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 2 STEP BY 1;
        SELECT SUM(cores) AS total, COUNT(cores) AS events,
               AVG(cores) AS mean_cores, MAX(purchase_week) AS last_week
        FROM purchases INTO results;
        """
        base = Relation(
            Schema.of("purchase_week", "cores"),
            [(4.0, 30.0), (12.0, 25.0)],
        )
        bound = compile_query(
            source, BlackBoxRegistry(), tables={"purchases": base}
        )
        row = bound.scenario.simulate({"w": 0.0}, seed=1)
        assert row["total"] == 55.0
        assert row["events"] == 2.0
        assert row["mean_cores"] == 27.5
        assert row["last_week"] == 12.0
