"""In-memory relations: the deterministic storage layer of the substrate."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import SchemaError
from repro.probdb.schema import Schema

Row = Tuple[object, ...]


class Relation:
    """An immutable bag of rows under a schema."""

    def __init__(self, schema: Schema, rows: Iterable[Sequence[object]] = ()):
        self.schema = schema
        coerced: List[Row] = []
        for row in rows:
            row = tuple(row)
            if len(row) != len(schema):
                raise SchemaError(
                    f"row arity {len(row)} does not match schema arity "
                    f"{len(schema)}"
                )
            coerced.append(
                tuple(
                    column.coerce(value)
                    for column, value in zip(schema.columns, row)
                )
            )
        self._rows: Tuple[Row, ...] = tuple(coerced)

    @property
    def rows(self) -> Tuple[Row, ...]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def column_values(self, name: str) -> List[object]:
        index = self.schema.index_of(name)
        return [row[index] for row in self._rows]

    def column_array(self, name: str) -> np.ndarray:
        """Numeric column as a numpy array (the bulk-processing path)."""
        return np.asarray(self.column_values(name), dtype=float)

    def row_dict(self, row: Row) -> Dict[str, object]:
        return dict(zip(self.schema.names, row))

    def to_dicts(self) -> List[Dict[str, object]]:
        return [self.row_dict(row) for row in self._rows]

    @classmethod
    def from_dicts(
        cls, schema: Schema, dicts: Iterable[Dict[str, object]]
    ) -> "Relation":
        return cls(
            schema,
            ([d[name] for name in schema.names] for d in dicts),
        )

    def __repr__(self) -> str:
        return (
            f"Relation(columns={list(self.schema.names)}, "
            f"rows={len(self._rows)})"
        )
