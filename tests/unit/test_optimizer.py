"""Unit tests for the OPTIMIZE Selector."""

import pytest

from repro.core.estimator import MetricSet
from repro.core.optimizer import (
    Constraint,
    Objective,
    Selector,
)
from repro.errors import OptimizationError


def metric(expectation, stddev=1.0):
    return MetricSet(
        count=100,
        expectation=expectation,
        stddev=stddev,
        minimum=expectation - 2 * stddev,
        maximum=expectation + 2 * stddev,
        quantiles=((0.5, expectation),),
    )


def rows_for_grid():
    """Rows over (p in {1,2,3}) x (week in {0,1,2}): risk rises with p."""
    rows = []
    for p in (1.0, 2.0, 3.0):
        for week in (0.0, 1.0, 2.0):
            risk = 0.01 * p * (week + 1)
            rows.append(
                (
                    {"p": p, "week": week},
                    {"overload": metric(risk), "cost": metric(10.0 - p)},
                )
            )
    return rows


class TestConstraint:
    def test_max_expect_under_threshold(self):
        constraint = Constraint("max", "expect", "overload", "<", 0.05)
        rows = [r for r in rows_for_grid() if r[0]["p"] == 1.0]
        ok, value = constraint.evaluate(rows)
        assert ok
        assert value == pytest.approx(0.03)

    def test_max_expect_over_threshold(self):
        constraint = Constraint("max", "expect", "overload", "<", 0.05)
        rows = [r for r in rows_for_grid() if r[0]["p"] == 3.0]
        ok, value = constraint.evaluate(rows)
        assert not ok
        assert value == pytest.approx(0.09)

    def test_avg_and_min_aggregates(self):
        rows = [r for r in rows_for_grid() if r[0]["p"] == 2.0]
        avg = Constraint("avg", "expect", "overload", "<", 1.0)
        assert avg.evaluate(rows)[1] == pytest.approx(0.04)
        low = Constraint("min", "expect", "overload", ">=", 0.02)
        assert low.evaluate(rows)[0]

    def test_stddev_and_median_metrics(self):
        rows = [({"p": 1.0}, {"x": metric(5.0, stddev=2.0)})]
        stddev = Constraint("max", "stddev", "x", "<=", 2.0)
        assert stddev.evaluate(rows) == (True, 2.0)
        median = Constraint("max", "median", "x", "=", 5.0)
        assert median.evaluate(rows)[0]

    def test_unknown_column_raises(self):
        constraint = Constraint("max", "expect", "missing", "<", 1.0)
        with pytest.raises(OptimizationError):
            constraint.evaluate([({"p": 1.0}, {"x": metric(0.0)})])

    def test_bad_aggregate_metric_op_rejected(self):
        with pytest.raises(OptimizationError):
            Constraint("mode", "expect", "x", "<", 1.0)
        with pytest.raises(OptimizationError):
            Constraint("max", "skew", "x", "<", 1.0)
        with pytest.raises(OptimizationError):
            Constraint("max", "expect", "x", "!!", 1.0)


class TestSelector:
    def test_picks_latest_feasible(self):
        selector = Selector(
            group_by=["p"],
            constraints=[Constraint("max", "expect", "overload", "<", 0.07)],
            objectives=[Objective("p", "max")],
        )
        answer = selector.solve(rows_for_grid())
        # p=3 violates (0.09); p=2 is the largest feasible (0.06 < 0.07).
        assert answer.best_parameters() == {"p": 2.0}
        assert len(answer.feasible_groups) == 2

    def test_min_objective(self):
        selector = Selector(
            group_by=["p"],
            constraints=[],
            objectives=[Objective("p", "min")],
        )
        answer = selector.solve(rows_for_grid())
        assert answer.best_parameters() == {"p": 1.0}

    def test_lexicographic_objectives(self):
        rows = [
            ({"a": 1.0, "b": 9.0}, {"x": metric(0.0)}),
            ({"a": 2.0, "b": 1.0}, {"x": metric(0.0)}),
            ({"a": 2.0, "b": 5.0}, {"x": metric(0.0)}),
        ]
        selector = Selector(
            group_by=["a", "b"],
            constraints=[],
            objectives=[Objective("a", "max"), Objective("b", "max")],
        )
        answer = selector.solve(rows)
        assert answer.best_parameters() == {"a": 2.0, "b": 5.0}

    def test_infeasible_returns_none_best(self):
        selector = Selector(
            group_by=["p"],
            constraints=[Constraint("max", "expect", "overload", "<", 0.0)],
            objectives=[Objective("p", "max")],
        )
        answer = selector.solve(rows_for_grid())
        assert answer.best is None
        with pytest.raises(OptimizationError):
            answer.best_parameters()

    def test_group_outcomes_expose_constraint_values(self):
        selector = Selector(
            group_by=["p"],
            constraints=[Constraint("max", "expect", "overload", "<", 0.07)],
            objectives=[Objective("p", "max")],
        )
        answer = selector.solve(rows_for_grid())
        for outcome in answer.groups:
            assert len(outcome.constraint_values) == 1
            assert len(outcome.rows) == 3

    def test_group_key_value_lookup_error(self):
        selector = Selector(
            group_by=["p"],
            constraints=[],
            objectives=[Objective("p", "max")],
        )
        answer = selector.solve(rows_for_grid())
        with pytest.raises(OptimizationError):
            answer.groups[0].value_of("week")


class TestSelectorValidation:
    def test_requires_group_by(self):
        with pytest.raises(OptimizationError):
            Selector([], [], [Objective("p", "max")])

    def test_requires_objectives(self):
        with pytest.raises(OptimizationError):
            Selector(["p"], [], [])

    def test_objective_must_be_grouped(self):
        with pytest.raises(OptimizationError):
            Selector(["p"], [], [Objective("q", "max")])

    def test_bad_direction_rejected(self):
        with pytest.raises(OptimizationError):
            Objective("p", "sideways")

    def test_empty_rows_rejected(self):
        selector = Selector(["p"], [], [Objective("p", "max")])
        with pytest.raises(OptimizationError):
            selector.solve([])

    def test_row_missing_group_parameter(self):
        selector = Selector(["p"], [], [Objective("p", "max")])
        with pytest.raises(OptimizationError):
            selector.solve([({"q": 1.0}, {"x": metric(0.0)})])
