"""Unit tests for the query-language tokenizer."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "eof"]


class TestBasics:
    def test_keywords_lowercased(self):
        assert texts("SELECT Select select") == ["select"] * 3

    def test_identifiers_preserve_case(self):
        assert texts("DemandModel") == ["DemandModel"]

    def test_parameter_tokens(self):
        tokens = tokenize("@current_week")
        assert tokens[0].kind == "param"
        assert tokens[0].text == "current_week"

    def test_bare_at_rejected(self):
        with pytest.raises(ParseError):
            tokenize("@ week")

    def test_numbers(self):
        assert texts("1 2.5 0.01 1e3 2.5E-2") == [
            "1",
            "2.5",
            "0.01",
            "1e3",
            "2.5E-2",
        ]

    def test_leading_dot_number(self):
        assert texts(".5") == [".5"]

    def test_operators_maximal_munch(self):
        assert texts("<= >= <> < > =") == ["<=", ">=", "<>", "<", ">", "="]

    def test_punctuation(self):
        assert texts("( ) , ; :") == ["(", ")", ",", ";", ":"]

    def test_comments_skipped(self):
        assert texts("select -- the whole line\n1") == ["select", "1"]

    def test_comment_at_eof(self):
        assert texts("1 -- trailing") == ["1"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("select $")

    def test_eof_token_terminates(self):
        tokens = tokenize("select")
        assert tokens[-1].kind == "eof"


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("select\n  @p")
        param = [t for t in tokens if t.kind == "param"][0]
        assert param.line == 2
        assert param.column == 3

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("ok\n   $")
        assert excinfo.value.line == 2


class TestFigureQueries:
    def test_figure1_tokenizes(self):
        source = """
        DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
        SELECT DemandModel(@current_week, @feature_release) AS demand
        INTO results;
        OPTIMIZE SELECT @feature_release FROM results
        WHERE MAX(EXPECT overload) < 0.01
        GROUP BY feature_release FOR MAX @purchase1;
        """
        tokens = tokenize(source)
        assert tokens[-1].kind == "eof"
        assert any(t.matches("keyword", "optimize") for t in tokens)

    def test_graph_clause_tokenizes(self):
        source = "GRAPH OVER @current_week EXPECT overload WITH bold red;"
        tokens = tokenize(source)
        assert any(t.matches("keyword", "graph") for t in tokens)
        assert any(t.matches("ident", "bold") for t in tokens)
