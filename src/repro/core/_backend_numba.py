"""Numba JIT kernels behind :class:`repro.core.backend.NumbaBackend`.

Import of :mod:`numba` is guarded: this module always imports, and
:func:`available` reports whether the kernels can actually compile.
Everything here mirrors the numpy reference arithmetic operation for
operation — uint64 wrapping multiplies for the decomposed 128-bit PCG64
math, one float multiply per ziggurat accept-path draw, a bare
multiply-add per affine validation cell.  Numba's default (non-fastmath)
codegen performs no FMA contraction or reassociation, so the float
results are bit-identical to numpy's; the backend layer's first-N
cross-check verifies that on every host before trusting the kernels.

The seed pipeline splits at the SeedSequence boundary: pool mixing
(:func:`repro.blackbox.fastrng.seedseq_state4` over the salted seeds)
stays in numpy — it is a fixed handful of uint32 array ops — and the
JIT kernel takes over for the per-draw PCG64 stepping and output
transforms, which is where the per-lane Python/numpy loop overhead
actually lives.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError:  # pragma: no cover
    numba = None


def available() -> bool:
    """Whether the optional numba dependency imports on this host."""
    return numba is not None


#: Standard-draw kind codes shared with the JIT kernel (strings do not
#: cross the nopython boundary).
CODE_UNIFORM = 0
CODE_NORMAL = 1
CODE_EXPONENTIAL = 2

# Constants pre-split for the decomposed 128-bit arithmetic; module-level
# numpy scalars are compile-time constants to numba.
_MASK32 = np.uint64(0xFFFFFFFF)
_MASK52 = np.uint64((1 << 52) - 1)
_PCG_MULT_HI = np.uint64(2549297995355413924)
_PCG_MULT_LO = np.uint64(4865540595714422341)
_PCG_MULT_LO_LO = np.uint64(4865540595714422341 & 0xFFFFFFFF)
_PCG_MULT_LO_HI = np.uint64(4865540595714422341 >> 32)
_INV_2_53 = 1.0 / 9007199254740992.0
_U0 = np.uint64(0)
_U1 = np.uint64(1)
_U3 = np.uint64(3)
_U8 = np.uint64(8)
_U9 = np.uint64(9)
_U11 = np.uint64(11)
_U32 = np.uint64(32)
_U58 = np.uint64(58)
_U63 = np.uint64(63)
_U64C = np.uint64(64)
_UFF = np.uint64(0xFF)


if numba is not None:  # pragma: no cover - exercised in the CI extras job

    @numba.njit(cache=True)
    def _pcg_step(s_hi, s_lo, inc_hi, inc_lo):
        """state = state * PCG_MULT + inc (mod 2**128), uint64 halves."""
        a_lo = s_lo & _MASK32
        a_hi = s_lo >> _U32
        ll = a_lo * _PCG_MULT_LO_LO
        lh = a_lo * _PCG_MULT_LO_HI
        hl = a_hi * _PCG_MULT_LO_LO
        hh = a_hi * _PCG_MULT_LO_HI
        mid = (ll >> _U32) + (lh & _MASK32) + (hl & _MASK32)
        low = (ll & _MASK32) | ((mid & _MASK32) << _U32)
        high = hh + (lh >> _U32) + (hl >> _U32) + (mid >> _U32)
        high = high + s_lo * _PCG_MULT_HI + s_hi * _PCG_MULT_LO
        out_lo = low + inc_lo
        carry = _U1 if out_lo < low else _U0
        return high + inc_hi + carry, out_lo

    @numba.njit(cache=True)
    def _draw_block_kernel(state4, codes, wi, ki, we, ke, out, ok):
        n = state4.shape[1]
        draws = codes.shape[0]
        for lane in range(n):
            init_hi = state4[0, lane]
            init_lo = state4[1, lane]
            seq_hi = state4[2, lane]
            seq_lo = state4[3, lane]
            inc_hi = (seq_hi << _U1) | (seq_lo >> _U63)
            inc_lo = (seq_lo << _U1) | _U1
            # srandom: state = 0; step; state += initstate; step
            s_hi, s_lo = _pcg_step(_U0, _U0, inc_hi, inc_lo)
            add_lo = s_lo + init_lo
            carry = _U1 if add_lo < s_lo else _U0
            s_hi = s_hi + init_hi + carry
            s_lo = add_lo
            s_hi, s_lo = _pcg_step(s_hi, s_lo, inc_hi, inc_lo)
            lane_ok = True
            for j in range(draws):
                s_hi, s_lo = _pcg_step(s_hi, s_lo, inc_hi, inc_lo)
                rot = s_hi >> _U58
                xored = s_hi ^ s_lo
                raw = (xored >> rot) | (xored << ((_U64C - rot) & _U63))
                code = codes[j]
                if code == CODE_UNIFORM:
                    out[lane, j] = np.float64(raw >> _U11) * _INV_2_53
                elif code == CODE_NORMAL:
                    idx = np.int64(raw & _UFF)
                    rabs = (raw >> _U9) & _MASK52
                    x = np.float64(rabs) * wi[idx]
                    if (raw >> _U8) & _U1:
                        x = -x
                    out[lane, j] = x
                    if rabs >= ki[idx]:
                        lane_ok = False
                else:  # CODE_EXPONENTIAL
                    ri = raw >> _U3
                    idx = np.int64(ri & _UFF)
                    m = ri >> _U8
                    out[lane, j] = np.float64(m) * we[idx]
                    if m >= ke[idx]:
                        lane_ok = False
            ok[lane] = lane_ok

    @numba.njit(cache=True)
    def _affine_validate_kernel(sources, alpha, beta, target, tol, valid):
        rows, entries = sources.shape
        for r in range(rows):
            a = alpha[r]
            b = beta[r]
            row_ok = True
            for c in range(entries):
                deviation = a * sources[r, c] + b - target[c]
                if deviation < 0.0:
                    deviation = -deviation
                if not (deviation <= tol):
                    row_ok = False
                    break
            valid[r] = row_ok


def draw_block(
    seeds: np.ndarray, kinds: Tuple[str, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    """JIT accept-path draws; signature of ``fastrng._vector_draw_block``."""
    from repro.blackbox import fastrng
    from repro.blackbox import ziggurat_tables as zt
    from repro.core.seeds import derive_seed_array

    codes = {
        fastrng.KIND_UNIFORM: CODE_UNIFORM,
        fastrng.KIND_NORMAL: CODE_NORMAL,
        fastrng.KIND_EXPONENTIAL: CODE_EXPONENTIAL,
    }
    code_array = np.array([codes[kind] for kind in kinds], dtype=np.int64)
    seeds = np.atleast_1d(np.asarray(seeds, dtype=np.uint64))
    state4 = fastrng.seedseq_state4(derive_seed_array(seeds))
    n = seeds.shape[0]
    out = np.empty((n, len(kinds)), dtype=np.float64)
    ok = np.empty(n, dtype=np.bool_)
    _draw_block_kernel(
        np.ascontiguousarray(state4),
        code_array,
        zt.WI_NORMAL,
        zt.KI_NORMAL,
        zt.WE_EXP,
        zt.KE_EXP,
        out,
        ok,
    )
    return out, ok


def affine_validate(
    sources: np.ndarray,
    alpha: np.ndarray,
    beta: np.ndarray,
    target: np.ndarray,
    tol: float,
) -> np.ndarray:
    """JIT row-wise affine validation; signature of the numpy reference."""
    sources = np.ascontiguousarray(sources, dtype=np.float64)
    valid = np.empty(len(sources), dtype=np.bool_)
    _affine_validate_kernel(
        sources,
        np.ascontiguousarray(alpha, dtype=np.float64),
        np.ascontiguousarray(beta, dtype=np.float64),
        np.ascontiguousarray(target, dtype=np.float64),
        float(tol),
        valid,
    )
    return valid
