"""Property-based tests for the basis store and its indexes.

The store-level guarantee (paper section 3.2): for the linear family, an
index never causes a *false negative* for mappable fingerprints, and
metrics obtained via reuse equal metrics computed directly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import BasisStore
from repro.core.estimator import Estimator
from repro.core.fingerprint import Fingerprint
from repro.core.index import make_index
from repro.core.mapping import LinearMappingFamily

# Rounded to 2 decimals: see test_prop_fingerprint.py for why.
moderate_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
).map(lambda v: round(v, 2))

fingerprints = st.lists(moderate_floats, min_size=4, max_size=10).map(
    lambda vs: Fingerprint(tuple(vs))
)

alphas = st.floats(min_value=0.1, max_value=20.0).map(
    lambda a: round(a, 3)
).flatmap(
    lambda a: st.sampled_from([a, -a])
)
betas = st.floats(min_value=-50.0, max_value=50.0).map(lambda v: round(v, 2))

strategies = st.sampled_from(["array", "normalization", "sorted_sid"])


class TestNoFalseNegatives:
    @given(
        fp=fingerprints, alpha=alphas, beta=betas, strategy=strategies
    )
    @settings(max_examples=200)
    def test_affine_probe_always_matches(self, fp, alpha, beta, strategy):
        store = BasisStore(
            mapping_family=LinearMappingFamily(),
            index=make_index(strategy),
        )
        samples = np.asarray(fp.values, dtype=float)
        store.add(fp, samples)
        probe = Fingerprint(tuple(alpha * v + beta for v in fp.values))
        assert store.match(probe) is not None

    @given(fp=fingerprints, strategy=strategies)
    @settings(max_examples=100)
    def test_self_probe_always_matches(self, fp, strategy):
        store = BasisStore(index=make_index(strategy))
        store.add(fp, np.asarray(fp.values))
        assert store.match(fp) is not None


class TestReuseCorrectness:
    @given(fp=fingerprints, alpha=alphas, beta=betas)
    @settings(max_examples=100)
    def test_remapped_metrics_equal_direct_metrics(self, fp, alpha, beta):
        store = BasisStore()
        samples = np.asarray(fp.values, dtype=float)
        basis = store.add(fp, samples)
        probe = Fingerprint(tuple(alpha * v + beta for v in fp.values))
        matched = store.match(probe)
        assert matched is not None
        _, mapping = matched
        reused = store.metrics_for(basis, mapping)
        direct = Estimator().estimate(mapping.apply_array(samples))
        scale = max(abs(direct.expectation), 1.0)
        assert abs(reused.expectation - direct.expectation) <= 1e-6 * scale
        assert abs(reused.stddev - direct.stddev) <= 1e-6 * scale


@pytest.mark.xfail(
    strict=True,
    reason=(
        "Known quantization-boundary false negative (ROADMAP item 6): "
        "normal-form bucket keys round to 6 decimals, and this fingerprint's "
        "normalized coordinate 4.75/800 sits exactly on the 0.0059375 "
        "rounding boundary — float noise puts the stored basis and its "
        "affine-equivalent probe in different buckets, so the index returns "
        "no candidates.  Fixing it means probing adjacent buckets near "
        "boundaries, which changes the candidates_tested counter contract; "
        "remove this marker when that lands."
    ),
)
def test_normal_form_rounding_boundary_false_negative():
    fp = Fingerprint((0, 2, -798, -2.75))
    store = BasisStore()
    store.add(fp, np.asarray(fp.values, dtype=float))
    probe = Fingerprint(tuple(0.102 * v for v in fp.values))
    assert store.match(probe) is not None


class TestIndexSupersetInvariant:
    @given(
        stored=st.lists(fingerprints, min_size=1, max_size=8, unique_by=repr),
        probe=fingerprints,
        strategy=strategies,
    )
    @settings(max_examples=100)
    def test_candidates_contain_every_true_match(
        self, stored, probe, strategy
    ):
        """Whatever the index prunes, it must keep every basis the full scan
        would have matched."""
        family = LinearMappingFamily()
        index = make_index(strategy)
        same_size = [fp for fp in stored if fp.size == probe.size]
        for basis_id, fp in enumerate(same_size):
            index.insert(fp, basis_id)
        candidates = set(index.candidates(probe))
        for basis_id, fp in enumerate(same_size):
            if family.find(fp, probe) is not None:
                assert basis_id in candidates
