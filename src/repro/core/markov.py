"""Markovian jumps (paper section 4, Algorithm 4).

Many event-based simulations are Markov chains whose step-to-step dependency
only *matters* near infrequent discontinuities.  Jigsaw exploits this by:

1. synthesizing a non-Markovian estimator from the chain state at the start
   of a region (section 4.2 — the rudimentary estimator fixes the state, so
   it predicts "the state stays the same"; uniform drift is absorbed by the
   mapping function);
2. evolving only a fingerprint-sized subset (m of n instances) of the chain,
   comparing its fingerprint to the estimator's at exponentially growing
   skips;
3. when the fingerprints stop mapping, binary-searching back to the last
   valid step, jumping the full population there through the mapping, and
   restarting with a fresh estimator.

The full population pays per-step cost only inside discontinuity regions;
elsewhere the chain advances at fingerprint cost (m ≪ n instances).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.blackbox.base import MarkovModel
from repro.core.fingerprint import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    Fingerprint,
)
from repro.core.mapping import Mapping, MappingFamily, ShiftMappingFamily
from repro.core.seeds import DEFAULT_SEED_BANK, SeedBank
from repro.errors import MarkovError


@dataclass
class JumpRecord:
    """One successful jump: the population skipped [from_step, to_step)."""

    from_step: int
    to_step: int

    @property
    def length(self) -> int:
        return self.to_step - self.from_step


@dataclass
class MarkovRunResult:
    """Final instance states plus work accounting."""

    states: np.ndarray
    steps: int
    step_invocations: int
    full_steps: int = 0
    jumps: List[JumpRecord] = field(default_factory=list)

    @property
    def jumped_steps(self) -> int:
        return sum(j.length for j in self.jumps)


class NaiveMarkovRunner:
    """Baseline: advance every instance through every step."""

    def __init__(
        self,
        model: MarkovModel,
        instance_count: int = 1000,
        seed_bank: Optional[SeedBank] = None,
    ):
        if instance_count < 1:
            raise MarkovError("instance_count must be positive")
        self.model = model
        self.instance_count = instance_count
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK

    #: Steps per draw-planning block: large enough to amortize stream
    #: seeding, small enough to bound the precomputed draw matrix.
    plan_block_steps = 256

    def run(self, target_steps: int) -> MarkovRunResult:
        if target_steps < 0:
            raise MarkovError("target_steps must be non-negative")
        before = self.model.step_invocations
        states = np.full(
            self.instance_count, self.model.initial_state(), dtype=float
        )
        for block_start in range(0, target_steps, self.plan_block_steps):
            block_steps = min(
                self.plan_block_steps, target_steps - block_start
            )
            seed_matrix = self.seed_bank.step_seed_matrix(
                self.instance_count, block_steps, start_step=block_start
            )
            draws = self.model.plan_step_draws(seed_matrix)
            trajectory = self.model.run_block(
                states, block_start, seed_matrix, draws
            )
            if block_steps:
                states = trajectory[-1]
        return MarkovRunResult(
            states=states,
            steps=target_steps,
            step_invocations=self.model.step_invocations - before,
            full_steps=target_steps,
        )


class FrozenStateEstimator:
    """Section 4.2's rudimentary estimator: outputs as if the state froze.

    Synthesized from a population snapshot; predicts instance ``i``'s output
    at any later step as ``output(frozen_state_i)``.  Uniform population
    drift between synthesis and the probed step is absorbed by the mapping
    function, so the estimator stays valid far longer than it looks.
    """

    def __init__(
        self, model: MarkovModel, frozen_states: np.ndarray, at_step: int
    ):
        self.model = model
        self.frozen_states = np.asarray(frozen_states, dtype=float).copy()
        self.at_step = at_step

    def fingerprint(self, size: int, step: int) -> Fingerprint:
        """Predicted outputs of the first ``size`` instances at ``step``."""
        return Fingerprint(self.fingerprint_array(size, step))

    def fingerprint_array(self, size: int, step: int) -> np.ndarray:
        """Raw predicted-output vector (probe loop's allocation-free path)."""
        return self.model.output_batch(self.frozen_states[:size], step)

    def rebuild_states(self, mapping: Mapping) -> np.ndarray:
        """Jump the whole population: apply M to the frozen outputs.

        Valid for models whose observable equals their state (the paper's
        chains in Figures 5 and 6); the mapping carries any uniform drift.
        """
        return mapping.apply_array(self.frozen_states)


class MarkovJumpRunner:
    """Algorithm 4: exponential skip + binary backtrack over estimator
    validity, jumping the full population across non-Markovian regions."""

    def __init__(
        self,
        model: MarkovModel,
        instance_count: int = 1000,
        fingerprint_size: int = 10,
        mapping_family: Optional[MappingFamily] = None,
        seed_bank: Optional[SeedBank] = None,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
    ):
        if instance_count < 1:
            raise MarkovError("instance_count must be positive")
        if not 1 <= fingerprint_size <= instance_count:
            raise MarkovError(
                "fingerprint_size must lie in [1, instance_count]"
            )
        self.model = model
        self.instance_count = instance_count
        self.fingerprint_size = fingerprint_size
        # Shift-only mappings are the natural family for state drift; the
        # caller may supply the full linear family for scaling processes.
        self.mapping_family = mapping_family or ShiftMappingFamily()
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol

    def run(self, target_steps: int) -> MarkovRunResult:
        if target_steps < 0:
            raise MarkovError("target_steps must be non-negative")
        before = self.model.step_invocations
        m = self.fingerprint_size
        n = self.instance_count
        states = np.full(n, self.model.initial_state(), dtype=float)
        current = 0
        full_steps = 0
        jumps: List[JumpRecord] = []

        # The fingerprint instances' standard draws depend only on
        # (instance, step) — never on chain state — so one plan covers every
        # estimator region of the whole run.
        fp_seed_matrix = self.seed_bank.step_seed_matrix(m, target_steps)
        fp_draws = self.model.plan_step_draws(fp_seed_matrix)

        while current < target_steps:
            estimator = FrozenStateEstimator(self.model, states, current)
            # Evolve only the fingerprint instances forward, recording the
            # trajectory so the binary backtrack needs no re-evaluation.
            fp_states = states[:m].copy()
            trajectory: List[Tuple[int, np.ndarray]] = []
            last_valid = current
            last_mapping: Optional[Mapping] = None
            span = 1
            probe = current
            while probe < target_steps:
                next_stop = min(current + span, target_steps)
                chunk = next_stop - probe
                if chunk > 0:
                    block = self.model.run_block(
                        fp_states,
                        probe,
                        fp_seed_matrix[probe:next_stop],
                        None if fp_draws is None else fp_draws[probe:next_stop],
                    )
                    for offset in range(chunk):
                        trajectory.append((probe + offset + 1, block[offset]))
                    fp_states = block[-1]
                    probe = next_stop
                mapping = self._match(estimator, fp_states, probe)
                if mapping is None:
                    break
                last_valid, last_mapping = probe, mapping
                span *= 2

            if last_valid == current:
                # Estimator invalid immediately: take one full-population
                # step and retry with a fresh estimator (Alg 4 line 12).
                valid_at = self._backtrack(estimator, trajectory, current)
                if valid_at is None:
                    states = self.model.step_batch(
                        states,
                        current,
                        self.seed_bank.step_seed_array(
                            np.arange(n), current
                        ),
                    )
                    current += 1
                    full_steps += 1
                    continue
                last_valid, last_mapping = valid_at
            elif last_valid < probe:
                # Mismatch after some valid probes: the failure lies in
                # (last_valid, probe]; tighten with the recorded trajectory.
                improved = self._backtrack(
                    estimator,
                    [(s, v) for s, v in trajectory if s > last_valid],
                    current,
                )
                if improved is not None and improved[0] > last_valid:
                    last_valid, last_mapping = improved

            # Jump the full population to last_valid via the mapping, but
            # keep the exactly-evolved fingerprint instances authoritative.
            assert last_mapping is not None
            jumped = estimator.rebuild_states(last_mapping)
            exact = self._exact_states_at(trajectory, last_valid)
            if exact is not None:
                jumped[:m] = exact
            states = jumped
            jumps.append(JumpRecord(from_step=current, to_step=last_valid))
            current = last_valid

        return MarkovRunResult(
            states=states,
            steps=target_steps,
            step_invocations=self.model.step_invocations - before,
            full_steps=full_steps,
            jumps=[j for j in jumps if j.length > 0],
        )

    def _match(
        self,
        estimator: FrozenStateEstimator,
        fp_states: np.ndarray,
        step: int,
    ) -> Optional[Mapping]:
        actual = self.model.output_batch(
            fp_states[: self.fingerprint_size], step
        )
        predicted = estimator.fingerprint_array(self.fingerprint_size, step)
        return self.mapping_family.find_arrays(
            predicted, actual, rel_tol=self.rel_tol, abs_tol=self.abs_tol
        )

    def _backtrack(
        self,
        estimator: FrozenStateEstimator,
        trajectory: List[Tuple[int, np.ndarray]],
        floor_step: int,
    ) -> Optional[Tuple[int, Mapping]]:
        """Largest recorded step (> floor) where the estimator still maps."""
        lo, hi = 0, len(trajectory) - 1
        best: Optional[Tuple[int, Mapping]] = None
        while lo <= hi:
            mid = (lo + hi) // 2
            step, fp_states = trajectory[mid]
            mapping = self._match(estimator, fp_states, step)
            if mapping is not None:
                best = (step, mapping)
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def _exact_states_at(
        self, trajectory: List[Tuple[int, np.ndarray]], step: int
    ) -> Optional[np.ndarray]:
        for recorded_step, states in trajectory:
            if recorded_step == step:
                return states.copy()
        return None
