"""Persistent basis-store snapshots with cross-run warm start.

Jigsaw's value proposition is amortization — bases built once answer every
later probe — but (before this module) the reuse state died with the
process.  A *snapshot* materializes the full state of one or more
:class:`~repro.core.basis.BasisStore` instances so a later run (CLI sweep,
bench figure, interactive session, sharded sweep master) can warm-start
from it and only pay fingerprint rounds for points the stored bases cover.

Format
------

A snapshot is a directory::

    <path>/
      manifest.json        structured state; CRC-guarded, floats hex-encoded
      <name>.npy           fingerprint/key matrices and sample vectors

* **Bitwise fidelity.**  Every float that crosses the JSON boundary is
  encoded with ``float.hex()``; arrays are raw ``.npy`` files.  A loaded
  store answers probes with the same basis ids, bitwise-identical mapping
  parameters, and the same ``candidates_tested`` counters as the live
  store it was saved from (``tests/unit/test_persist_parity.py``).
* **Zero-copy matrices.**  Array files are opened with
  ``np.load(mmap_mode="r")``: the columnar fingerprint matrices and basis
  sample vectors are read-only views of the page cache, so forked shard
  workers share physical pages instead of each materializing a copy.
  Mutation paths (``add``/``merge``/``extend_basis``/interactive rebind)
  promote to fresh writable arrays — copy-on-write at the array level; the
  snapshot on disk is never written through.
* **Atomicity.**  Saves build the snapshot under a temp name in the target
  directory and rename it into place, so no reader ever observes a
  partial snapshot at the target path.  Overwrites swap via an adjacent
  ``.old-`` directory with in-process rollback; only a hard crash in the
  instant between the two renames can leave the target absent, and even
  then the previous snapshot survives intact under the ``.old-`` twin.
* **Corruption detection.**  The manifest body carries a CRC32 over its
  canonical serialization, and every array file records its byte length
  and CRC32.  Truncation or bit damage anywhere raises
  :class:`~repro.errors.SnapshotCorruptionError` before any state reaches
  a store — a load returns a complete store or nothing.
* **Compatibility validation.**  The manifest records the mapping family,
  index strategy, match tolerances, estimator configuration, and
  seed-bank identity each store was built under.  A load checked against
  an expectation (a ``like`` store and/or a seed bank) refuses with
  :class:`~repro.errors.SnapshotCompatibilityError` on any mismatch —
  fingerprints are only comparable under one seed bank and one tolerance
  regime, so silent cross-configuration reuse would be silently wrong.

What is (not) persisted
-----------------------

Persisted: bases (fingerprints, raw sample vectors, metrics), the
fingerprint index with verbatim bucket order (first-match-wins depends on
it), the columnar matrices including any materialized SID-order /
normal-form key matrices, and the deterministic ``StoreStats`` counters.
Not persisted: ``match_seconds`` (wall clock), and the columnar engine's
runtime knobs (``columnar_min_candidates``, the self-verification budget)
— a loaded store re-verifies its first columnar lookups against the scalar
loop, exactly like a fresh one.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import zlib
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.basis import BasisDistribution, BasisStore, StoreStats
from repro.core.columnar import ColumnarStore, _SizeBlock
from repro.core.estimator import Estimator, Histogram, MetricSet
from repro.core.fingerprint import Fingerprint
from repro.core.index import STRATEGY_CLASSES, FingerprintIndex
from repro.core.mapping import (
    AffineMapping,
    IdentityMappingFamily,
    LinearMappingFamily,
    Mapping as MappingFunction,
    MappingFamily,
    MonotoneMappingFamily,
    PiecewiseLinearMapping,
    ScaleMappingFamily,
    ShiftMappingFamily,
    _NegatedPiecewise,
)
from repro.core.seeds import DEFAULT_SEED_BANK, SeedBank
from repro.errors import (
    PersistError,
    SnapshotCompatibilityError,
    SnapshotCorruptionError,
)

SNAPSHOT_MAGIC = "jigsaw-store-snapshot"

#: Format version written by this build.  Loaders accept any version up to
#: this one (older formats must stay loadable or be explicitly migrated);
#: newer versions are refused — see the ROADMAP's version-bump procedure.
#:
#: Version history:
#:
#: 1. initial format (PR 5).
#: 2. lifecycle (PR 8): per-basis ``hits`` reuse counters in each basis
#:    entry; block matrices are written tombstone-free (the columnar
#:    mirror is compacted at save time).  Version-1 snapshots still load
#:    — their bases restore with ``hits = 0``.
SNAPSHOT_VERSION = 2

CHECKPOINT_MAGIC = "jigsaw-sweep-checkpoint"

#: Checkpoint format version; bumped under the same procedure as
#: :data:`SNAPSHOT_VERSION` (see the ROADMAP) — older checkpoints must
#: stay loadable or be explicitly migrated, newer ones are refused.
CHECKPOINT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Mapping-family class name -> factory, for rebuilding a snapshot's family
#: when the caller does not hand in a ``like`` store.  User-defined
#: families round-trip by passing ``like`` (the instance is reused after a
#: name check).
FAMILY_CLASSES = {
    cls.__name__: cls
    for cls in (
        LinearMappingFamily,
        IdentityMappingFamily,
        ShiftMappingFamily,
        ScaleMappingFamily,
        MonotoneMappingFamily,
    )
}


# ---------------------------------------------------------------------------
# Value codecs: floats, fingerprints, mappings, metric sets
#
# Everything structured goes through JSON with floats as hex strings, so a
# serialize -> deserialize round trip is bitwise (including nan/inf) —
# pinned by tests/property/test_prop_persist_roundtrip.py.


def encode_float(value: float) -> str:
    """Bitwise-exact JSON encoding of one float."""
    return float(value).hex()


def decode_float(text: str) -> float:
    return float.fromhex(text)


def encode_fingerprint(fingerprint: Fingerprint) -> dict:
    return {"values": [encode_float(v) for v in fingerprint.values]}


def decode_fingerprint(obj: dict) -> Fingerprint:
    return Fingerprint(tuple(decode_float(v) for v in obj["values"]))


def encode_mapping(mapping: MappingFunction) -> dict:
    """Serialize a mapping function (every built-in kind)."""
    if isinstance(mapping, AffineMapping):
        return {
            "kind": "affine",
            "alpha": encode_float(mapping.alpha),
            "beta": encode_float(mapping.beta),
        }
    if isinstance(mapping, PiecewiseLinearMapping):
        return {
            "kind": "piecewise",
            "knots_x": [encode_float(v) for v in mapping.knots_x],
            "knots_y": [encode_float(v) for v in mapping.knots_y],
        }
    if isinstance(mapping, _NegatedPiecewise):
        return {"kind": "negated", "inner": encode_mapping(mapping.inner)}
    raise PersistError(
        f"cannot serialize mapping of type {type(mapping).__name__}"
    )


def decode_mapping(obj: dict) -> MappingFunction:
    kind = obj.get("kind")
    if kind == "affine":
        return AffineMapping(
            decode_float(obj["alpha"]), decode_float(obj["beta"])
        )
    if kind == "piecewise":
        return PiecewiseLinearMapping(
            tuple(decode_float(v) for v in obj["knots_x"]),
            tuple(decode_float(v) for v in obj["knots_y"]),
        )
    if kind == "negated":
        inner = decode_mapping(obj["inner"])
        if not isinstance(inner, PiecewiseLinearMapping):
            raise SnapshotCorruptionError(
                "negated mapping wraps a non-piecewise inner mapping"
            )
        return _NegatedPiecewise(inner)
    raise SnapshotCorruptionError(f"unknown mapping kind {kind!r}")


def encode_metrics(metrics: MetricSet) -> dict:
    body = {
        "count": int(metrics.count),
        "expectation": encode_float(metrics.expectation),
        "stddev": encode_float(metrics.stddev),
        "minimum": encode_float(metrics.minimum),
        "maximum": encode_float(metrics.maximum),
        "quantiles": [
            [encode_float(p), encode_float(v)] for p, v in metrics.quantiles
        ],
    }
    if metrics.histogram is not None:
        body["histogram"] = {
            "counts": [int(c) for c in metrics.histogram.counts],
            "edges": [encode_float(e) for e in metrics.histogram.edges],
        }
    return body


def decode_metrics(obj: dict) -> MetricSet:
    histogram = None
    if "histogram" in obj:
        histogram = Histogram(
            tuple(int(c) for c in obj["histogram"]["counts"]),
            tuple(decode_float(e) for e in obj["histogram"]["edges"]),
        )
    return MetricSet(
        count=int(obj["count"]),
        expectation=decode_float(obj["expectation"]),
        stddev=decode_float(obj["stddev"]),
        minimum=decode_float(obj["minimum"]),
        maximum=decode_float(obj["maximum"]),
        quantiles=tuple(
            (decode_float(p), decode_float(v)) for p, v in obj["quantiles"]
        ),
        histogram=histogram,
    )


# ---------------------------------------------------------------------------
# Store <-> manifest entry


def store_config(store: BasisStore) -> dict:
    """The compatibility-relevant identity of a store's configuration.

    This is what a load validates an expectation against: same mapping
    family, same *effective* index strategy (``BasisStore`` may have
    downgraded ``normalization`` to ``array`` for families without a
    normal form — the effective strategy is what the snapshot's candidate
    lists were built under), same match tolerances (bitwise), and the
    same estimator configuration (quantile probabilities, histogram bins
    — a mismatched estimator would silently change every refreshed
    metric).
    """
    return {
        "mapping_family": store.mapping_family.name(),
        "index_strategy": type(store.index).strategy,
        "rel_tol": encode_float(store.rel_tol),
        "abs_tol": encode_float(store.abs_tol),
        "estimator": {
            "quantile_probabilities": [
                encode_float(p)
                for p in store.estimator.quantile_probabilities
            ],
            "histogram_bins": int(store.estimator.histogram_bins),
        },
    }


def _dump_store(name: str, store: BasisStore, arrays: dict) -> dict:
    """One store's manifest entry; arrays land in ``arrays`` for writing.

    Snapshots are compacted by construction (format version 2): any
    tombstoned columnar rows are dropped before the matrices are
    serialized.  Compaction preserves every observable answer, so saving
    remains semantically read-only even though it may renumber rows.
    """
    store.columnar.compact()
    blocks = {}
    for size, block in sorted(store.columnar._blocks.items()):
        if block.count == 0:
            continue
        prefix = f"{name}.block{size}"
        arrays[f"{prefix}.matrix"] = block.matrix[: block.count]
        entry = {
            "count": int(block.count),
            "ids": [int(i) for i in block.ids],
            "matrix": f"{prefix}.matrix",
        }
        if block._sid_matrix is not None and block._sid_filled == block.count:
            arrays[f"{prefix}.sid"] = block._sid_matrix[: block.count]
            entry["sid"] = f"{prefix}.sid"
        normal_forms = {}
        for rel_tol, (nf_matrix, filled) in sorted(block._nf_matrix.items()):
            if filled != block.count:
                continue
            key = encode_float(rel_tol)
            arrays[f"{prefix}.nf{key}"] = nf_matrix[: block.count]
            normal_forms[key] = f"{prefix}.nf{key}"
        if normal_forms:
            entry["normal_forms"] = normal_forms
        blocks[str(size)] = entry

    bases = []
    chunks = []
    offset = 0
    for basis_id in sorted(store._bases):
        basis = store._bases[basis_id]
        samples = np.asarray(basis.samples, dtype=np.float64)
        bases.append(
            {
                "id": int(basis_id),
                "hits": int(basis.hits),
                "metrics": encode_metrics(basis.metrics),
                "samples": [int(offset), int(samples.size)],
            }
        )
        chunks.append(samples)
        offset += int(samples.size)
    arrays[f"{name}.samples"] = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.float64)
    )

    return {
        "config": store_config(store),
        "index": store.index.dump_state(),
        "next_id": int(store._next_id),
        "stats": store.stats.as_dict(),
        "blocks": blocks,
        "bases": bases,
        "samples": f"{name}.samples",
    }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SnapshotCorruptionError(message)


def _restore_store(
    entry: dict,
    load_array,
    mapping_family: MappingFamily,
    estimator: Optional[Estimator],
    version: int = SNAPSHOT_VERSION,
) -> BasisStore:
    """Rebuild one store from its manifest entry (arrays via ``load_array``).

    ``version`` is the snapshot body's format version; the version-1
    compatibility branch restores bases without reuse counters (the field
    did not exist) as ``hits = 0``.
    """
    config = entry["config"]
    strategy = config["index_strategy"]
    index_class = STRATEGY_CLASSES.get(strategy)
    if index_class is None:
        raise SnapshotCompatibilityError(
            f"snapshot uses unknown index strategy {strategy!r}; it cannot "
            f"be rebuilt by this version"
        )
    index: FingerprintIndex = index_class.restore_state(entry["index"])
    store = BasisStore(
        mapping_family=mapping_family,
        index=index,
        estimator=estimator,
        rel_tol=decode_float(config["rel_tol"]),
        abs_tol=decode_float(config["abs_tol"]),
    )

    blocks: Dict[int, _SizeBlock] = {}
    fingerprint_of: Dict[int, Fingerprint] = {}
    for size_text, block_entry in entry["blocks"].items():
        size = int(size_text)
        matrix = load_array(block_entry["matrix"])
        count = int(block_entry["count"])
        ids = [int(i) for i in block_entry["ids"]]
        _require(
            matrix.ndim == 2 and matrix.shape == (count, size),
            f"block matrix for size {size} has shape {matrix.shape}, "
            f"expected ({count}, {size})",
        )
        _require(len(ids) == count, "block id list disagrees with count")
        fingerprints = []
        for row, basis_id in enumerate(ids):
            row_view = np.asarray(matrix[row])
            fingerprint = Fingerprint(tuple(float(v) for v in row_view))
            # Seed the array cache with the read-only mapped row so the
            # scalar find path shares pages with the columnar kernels.
            fingerprint._cache["array"] = row_view
            fingerprints.append(fingerprint)
            fingerprint_of[basis_id] = fingerprint
        sid_matrix = None
        if "sid" in block_entry:
            sid_matrix = load_array(block_entry["sid"])
            _require(
                sid_matrix.shape == (count, size),
                "SID key matrix shape disagrees with its block",
            )
        nf_matrices = {}
        for rel_tol_text, array_name in block_entry.get(
            "normal_forms", {}
        ).items():
            nf_matrix = load_array(array_name)
            _require(
                nf_matrix.shape == (count, size),
                "normal-form key matrix shape disagrees with its block",
            )
            nf_matrices[decode_float(rel_tol_text)] = nf_matrix
        blocks[size] = _SizeBlock.restore(
            size, matrix, ids, fingerprints, sid_matrix, nf_matrices
        )
    columnar = ColumnarStore()
    columnar.restore_blocks(blocks)
    store.columnar = columnar

    samples_all = load_array(entry["samples"])
    _require(samples_all.ndim == 1, "sample vector file is not 1-d")
    for basis_entry in entry["bases"]:
        basis_id = int(basis_entry["id"])
        _require(
            basis_id in fingerprint_of,
            f"basis {basis_id} has no fingerprint row in any block",
        )
        start, count = (int(v) for v in basis_entry["samples"])
        _require(
            0 <= start and start + count <= samples_all.size,
            f"basis {basis_id} sample slice escapes the sample vector",
        )
        store._bases[basis_id] = BasisDistribution(
            basis_id=basis_id,
            fingerprint=fingerprint_of[basis_id],
            samples=samples_all[start : start + count],
            metrics=decode_metrics(basis_entry["metrics"]),
            # Version-1 snapshots predate reuse counters: restore cold.
            hits=int(basis_entry["hits"]) if version >= 2 else 0,
        )
    _require(
        len(store._bases) == len(fingerprint_of),
        "block rows and basis entries disagree",
    )
    store._next_id = int(entry["next_id"])
    store.stats = StoreStats(**{
        key: int(value) for key, value in entry["stats"].items()
    })
    return store


# ---------------------------------------------------------------------------
# Manifest + array files: checksummed write, verified read


def _canonical(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def _write_snapshot(path: str, body: dict, arrays: Mapping[str, np.ndarray]):
    """Serialize everything into a temp directory, then rename into place."""
    path = os.path.abspath(path)
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    scratch = tempfile.mkdtemp(
        prefix=os.path.basename(path) + ".tmp-", dir=parent
    )
    try:
        table = {}
        for name, array in arrays.items():
            filename = name + ".npy"
            target = os.path.join(scratch, filename)
            np.save(target, np.ascontiguousarray(array))
            with open(target, "rb") as handle:
                raw = handle.read()
            table[name] = {
                "file": filename,
                "nbytes": len(raw),
                "crc32": zlib.crc32(raw),
            }
        body = dict(body, arrays=table)
        manifest = {"crc32": zlib.crc32(_canonical(body)), "body": body}
        with open(os.path.join(scratch, MANIFEST_NAME), "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if os.path.lexists(path):
            # Swap: move the old snapshot aside, the new one in, then drop
            # the old.  A reader never observes a half-written directory,
            # and an in-process failure of the second rename rolls the
            # previous snapshot back into place.  A hard crash (power
            # loss) exactly between the two renames can leave the target
            # briefly absent — the previous snapshot then survives intact
            # under the adjacent ``<name>.old-*/previous`` directory, and
            # no reader ever sees partial state.
            graveyard = tempfile.mkdtemp(
                prefix=os.path.basename(path) + ".old-", dir=parent
            )
            previous = os.path.join(graveyard, "previous")
            os.rename(path, previous)
            try:
                os.rename(scratch, path)
            except BaseException:
                os.rename(previous, path)
                raise
            shutil.rmtree(graveyard)
        else:
            os.rename(scratch, path)
    except BaseException:
        shutil.rmtree(scratch, ignore_errors=True)
        raise


def _read_manifest(
    path: str,
    magic: str = SNAPSHOT_MAGIC,
    max_version: int = SNAPSHOT_VERSION,
    kind: str = "store snapshot",
) -> dict:
    """Parse and checksum-verify a snapshot's manifest; returns the body.

    ``magic``/``max_version``/``kind`` distinguish the snapshot families
    sharing this container format (basis-store snapshots and sweep
    checkpoints); the defaults read store snapshots.
    """
    if not os.path.isdir(path):
        raise PersistError(f"no snapshot directory at {path!r}")
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except OSError as error:
        raise PersistError(
            f"cannot read snapshot manifest {manifest_path!r}: {error}"
        ) from error
    except ValueError as error:
        raise SnapshotCorruptionError(
            f"snapshot manifest {manifest_path!r} is not valid JSON "
            f"({error})"
        ) from error
    if not (
        isinstance(manifest, dict)
        and isinstance(manifest.get("body"), dict)
        and isinstance(manifest.get("crc32"), int)
    ):
        raise SnapshotCorruptionError(
            f"snapshot manifest {manifest_path!r} has an unrecognized shape"
        )
    body = manifest["body"]
    if zlib.crc32(_canonical(body)) != manifest["crc32"]:
        raise SnapshotCorruptionError(
            f"snapshot manifest {manifest_path!r} fails its checksum"
        )
    if body.get("magic") != magic:
        raise SnapshotCorruptionError(
            f"{path!r} is not a jigsaw {kind}"
        )
    version = body.get("version")
    if not isinstance(version, int) or version < 1:
        raise SnapshotCorruptionError(
            f"{kind} at {path!r} carries invalid version {version!r}"
        )
    if version > max_version:
        raise SnapshotCompatibilityError(
            f"{kind} at {path!r} is version {version}, newer than this "
            f"build's {max_version}; upgrade to load it"
        )
    return body


def _array_loader(path: str, body: dict, mmap: bool):
    """Returns ``load(name) -> ndarray`` with size+CRC verification."""
    table = body.get("arrays")
    _require(isinstance(table, dict), "manifest has no array table")

    def load(name: str) -> np.ndarray:
        entry = table.get(name)
        _require(
            isinstance(entry, dict), f"array {name!r} missing from manifest"
        )
        file_path = os.path.join(path, os.path.basename(entry["file"]))
        try:
            with open(file_path, "rb") as handle:
                raw = handle.read()
        except OSError as error:
            raise SnapshotCorruptionError(
                f"array file {file_path!r} unreadable: {error}"
            ) from error
        if len(raw) != entry["nbytes"]:
            raise SnapshotCorruptionError(
                f"array file {file_path!r} is {len(raw)} bytes, manifest "
                f"recorded {entry['nbytes']} (truncated?)"
            )
        if zlib.crc32(raw) != entry["crc32"]:
            raise SnapshotCorruptionError(
                f"array file {file_path!r} fails its checksum"
            )
        try:
            array = np.load(file_path, mmap_mode="r" if mmap else None)
        except ValueError as error:
            raise SnapshotCorruptionError(
                f"array file {file_path!r} is not a valid .npy file: "
                f"{error}"
            ) from error
        if not mmap:
            array = np.asarray(array)
            array.setflags(write=False)
        return array

    return load


# ---------------------------------------------------------------------------
# Public save/load API


def save_stores(
    stores: Mapping[str, BasisStore],
    path: str,
    seed_bank: Optional[SeedBank] = None,
    metadata: Optional[dict] = None,
) -> None:
    """Atomically snapshot a named collection of basis stores.

    ``seed_bank`` records the identity the stores' fingerprints were drawn
    under (default: the shared :data:`~repro.core.seeds.DEFAULT_SEED_BANK`)
    — loads validate against it.  ``metadata`` is an arbitrary JSON-able
    dict stored verbatim (avoid raw floats: JSON would round-trip them,
    but the manifest convention is hex strings).
    """
    if not stores:
        raise PersistError("refusing to save an empty store collection")
    bank = seed_bank or DEFAULT_SEED_BANK
    arrays: Dict[str, np.ndarray] = {}
    body = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "seed_bank": {"master_seed": int(bank.master_seed)},
        "metadata": metadata or {},
        "stores": {
            str(name): _dump_store(f"store{position}", store, arrays)
            for position, (name, store) in enumerate(sorted(stores.items()))
        },
    }
    _write_snapshot(path, body, arrays)


def save_store(
    store: BasisStore,
    path: str,
    seed_bank: Optional[SeedBank] = None,
    metadata: Optional[dict] = None,
) -> None:
    """:func:`save_stores` for the common single-store case."""
    save_stores({"default": store}, path, seed_bank=seed_bank,
                metadata=metadata)


def _check_compatible(
    label: str, stored: dict, expected: dict
) -> None:
    """Refuse on any identity mismatch between snapshot and expectation."""
    for key, description in (
        ("mapping_family", "mapping family"),
        ("index_strategy", "index strategy"),
        ("rel_tol", "relative match tolerance"),
        ("abs_tol", "absolute match tolerance"),
        ("estimator", "estimator configuration"),
    ):
        if stored.get(key) != expected[key]:
            raise SnapshotCompatibilityError(
                f"snapshot store {label!r} was built with {description} "
                f"{stored.get(key)!r}, caller expects {expected[key]!r}; "
                f"refusing to reuse across configurations"
            )


def load_stores(
    path: str,
    like: Optional[Mapping[str, BasisStore]] = None,
    seed_bank: Optional[SeedBank] = None,
    estimator: Optional[Estimator] = None,
    mmap: bool = True,
) -> Dict[str, BasisStore]:
    """Load a snapshot back into live stores, validating compatibility.

    ``like`` maps store names to configured (typically empty) stores the
    caller would otherwise use cold; the snapshot must cover exactly these
    names, and each loaded store must match its ``like`` store's mapping
    family, effective index strategy, tolerances, and estimator
    configuration — the family and estimator *instances* are then reused,
    which is also how user-defined families round-trip.  Without ``like``
    every recorded store is rebuilt from the registry of built-in
    families.

    ``seed_bank``, when given, must match the bank recorded at save time.
    ``mmap=False`` materializes arrays instead of memory-mapping them
    (loaded arrays stay read-only either way).
    """
    body = _read_manifest(path)
    if seed_bank is not None:
        recorded = body.get("seed_bank", {}).get("master_seed")
        if recorded != seed_bank.master_seed:
            raise SnapshotCompatibilityError(
                f"snapshot at {path!r} was built under seed bank master "
                f"{recorded!r}, caller uses {seed_bank.master_seed:#x}; "
                f"fingerprints are not comparable across seed banks"
            )
    entries = body.get("stores")
    _require(isinstance(entries, dict) and entries, "snapshot has no stores")
    if like is not None:
        missing = sorted(set(like) - set(entries))
        extra = sorted(set(entries) - set(like))
        if missing or extra:
            raise SnapshotCompatibilityError(
                f"snapshot at {path!r} covers stores {sorted(entries)}, "
                f"caller expects {sorted(like)} "
                f"(missing {missing}, unexpected {extra})"
            )
    load_array = _array_loader(path, body, mmap)
    stores: Dict[str, BasisStore] = {}
    for name, entry in entries.items():
        config = entry["config"]
        if like is not None:
            template = like[name]
            _check_compatible(name, config, store_config(template))
            family = template.mapping_family
            store_estimator = estimator or template.estimator
        else:
            family_class = FAMILY_CLASSES.get(config["mapping_family"])
            if family_class is None:
                raise SnapshotCompatibilityError(
                    f"snapshot store {name!r} uses mapping family "
                    f"{config['mapping_family']!r}, which is not a "
                    f"built-in; pass a configured `like` store to load it"
                )
            family = family_class()
            store_estimator = estimator
        try:
            stores[name] = _restore_store(
                entry, load_array, family, store_estimator,
                version=int(body["version"]),
            )
        except (KeyError, TypeError) as error:
            raise SnapshotCorruptionError(
                f"snapshot store {name!r} at {path!r} has a malformed "
                f"manifest entry ({type(error).__name__}: {error})"
            ) from error
    return stores


def load_store(
    path: str,
    like: Optional[BasisStore] = None,
    seed_bank: Optional[SeedBank] = None,
    estimator: Optional[Estimator] = None,
    mmap: bool = True,
    name: str = "default",
) -> BasisStore:
    """:func:`load_stores` for the common single-store case."""
    body_like = None if like is None else {name: like}
    stores = load_stores(
        path, like=body_like, seed_bank=seed_bank, estimator=estimator,
        mmap=mmap,
    )
    if name not in stores:
        raise SnapshotCompatibilityError(
            f"snapshot at {path!r} has no store named {name!r} "
            f"(available: {sorted(stores)})"
        )
    return stores[name]


def snapshot_info(path: str) -> dict:
    """Cheap summary of a snapshot (no arrays touched): version, seed
    bank, metadata, and per-store basis counts / configuration."""
    body = _read_manifest(path)
    return {
        "version": body["version"],
        "seed_bank": dict(body.get("seed_bank", {})),
        "metadata": dict(body.get("metadata", {})),
        "stores": {
            name: {
                "bases": len(entry.get("bases", ())),
                **{
                    key: entry["config"][key]
                    for key in ("mapping_family", "index_strategy")
                },
            }
            for name, entry in body.get("stores", {}).items()
        },
    }


# ---------------------------------------------------------------------------
# Sweep checkpoints: resumable completed-shard records


class SweepCheckpoint:
    """Resumable record of a sweep's completed shard outcomes.

    A checkpoint is a snapshot directory in the same container format as
    basis-store snapshots (CRC-guarded manifest + ``.npy`` array files,
    written atomically via temp-dir + rename), holding one record per
    *completed* shard plus the sweep configuration it belongs to.  The
    supervision layer appends a record as each shard's result is accepted;
    every append rewrites the whole directory atomically, so a reader —
    including a restarted run — always sees a complete, checksum-valid
    prefix of the sweep, never a torn write.

    ``config`` is the sweep's identity (engine, shard layout, sampling
    parameters, seed bank, a digest of the parameter space, ...).  A
    resume whose configuration differs refuses with
    :class:`~repro.errors.SnapshotCompatibilityError` — consuming shard
    records across configurations would be silently wrong.  A checkpoint
    that fails its checksums is *discarded* instead (:meth:`load` returns
    no records): shards are deterministic, so recomputing is always
    correct, merely slower — corruption must never block a sweep.
    """

    def __init__(self, path: str, config: dict):
        self.path = os.path.abspath(str(path))
        self.config = json.loads(json.dumps(config))
        self._records: Dict[int, tuple] = {}

    def load(self) -> Dict[int, tuple]:
        """Valid completed-shard records, as ``{index: (meta, arrays)}``.

        Returns an empty mapping when no checkpoint exists yet *or* the
        existing one is corrupt (recompute-all fallback); raises
        :class:`~repro.errors.SnapshotCompatibilityError` when an intact
        checkpoint belongs to a different sweep configuration.  Loaded
        records also re-seed this instance, so subsequent :meth:`record`
        calls preserve them.
        """
        if not os.path.isdir(self.path):
            return {}
        try:
            body = _read_manifest(
                self.path,
                magic=CHECKPOINT_MAGIC,
                max_version=CHECKPOINT_VERSION,
                kind="sweep checkpoint",
            )
        except SnapshotCorruptionError:
            return {}
        if body.get("config") != self.config:
            raise SnapshotCompatibilityError(
                f"sweep checkpoint at {self.path!r} belongs to a different "
                f"sweep configuration; refusing to resume from it (move it "
                f"aside to start fresh)"
            )
        load_array = _array_loader(self.path, body, mmap=False)
        records: Dict[int, tuple] = {}
        try:
            for index_text, entry in body.get("shards", {}).items():
                arrays = {
                    name: np.asarray(load_array(ref))
                    for name, ref in entry["arrays"].items()
                }
                records[int(index_text)] = (dict(entry["meta"]), arrays)
        except (SnapshotCorruptionError, KeyError, TypeError, ValueError):
            return {}
        self._records = dict(records)
        return records

    def record(self, index: int, meta: dict, arrays: Mapping[str, np.ndarray]):
        """Persist shard ``index``'s outcome (atomic full rewrite)."""
        self._records[int(index)] = (
            json.loads(json.dumps(meta)),
            {
                str(name): np.ascontiguousarray(array)
                for name, array in arrays.items()
            },
        )
        self._flush()

    def _flush(self) -> None:
        array_files: Dict[str, np.ndarray] = {}
        shards = {}
        for index in sorted(self._records):
            meta, arrays = self._records[index]
            refs = {}
            for name in sorted(arrays):
                ref = f"shard{index}.{name}"
                array_files[ref] = arrays[name]
                refs[name] = ref
            shards[str(index)] = {"meta": meta, "arrays": refs}
        body = {
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "config": self.config,
            "shards": shards,
        }
        _write_snapshot(self.path, body, array_files)
        # Fault seam: chaos tests corrupt the freshly written checkpoint
        # here to prove resumes detect the damage and recompute.
        from repro.testing import faults as _faults

        _faults.checkpoint_written(self.path)


# Re-exported for callers that only deal in snapshots.
__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "SweepCheckpoint",
    "FAMILY_CLASSES",
    "encode_float",
    "decode_float",
    "encode_fingerprint",
    "decode_fingerprint",
    "encode_mapping",
    "decode_mapping",
    "encode_metrics",
    "decode_metrics",
    "store_config",
    "save_store",
    "save_stores",
    "load_store",
    "load_stores",
    "snapshot_info",
]
