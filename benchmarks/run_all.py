#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation as text.

Usage::

    python benchmarks/run_all.py [--scale smoke|quick|paper] [--workers N]
                                 [--warm-store DIR] [--backend NAME]
                                 [--out results.txt]
                                 [--bench-out BENCH_run_all.json]
                                 [--data-out figure_data.json]

``quick`` (default) runs laptop-sized sweeps in seconds on the batch
sampling engine; ``paper`` runs the paper-sized configurations (1000
samples/point over the full parameter spaces); ``smoke`` is the tiny
deterministic configuration the CI regression gate
(``benchmarks/check_regression.py``) compares against its committed
baseline.  Either way the *shapes* — who wins, by roughly what factor,
where crossovers fall — are the reproduced quantity; absolute times depend
on the host.

``--workers N`` shards the explorer sweeps (fig8-11) across N processes
via :class:`repro.core.parallel.ParallelExplorer`.  Deterministic counters
(samples drawn, reuse fractions, step invocations) are bit-identical to
the serial run by the engine's replay-merge invariant; only wall clocks
change, which is why a sharded run is recorded with its worker count and
never merged into (or allowed to overwrite) a serial baseline.

``--warm-store DIR`` persists the explorer sweeps' basis stores under
``DIR`` (one snapshot per sweep, see :mod:`repro.core.persist`) and
warm-starts from whatever snapshots a previous run left there: the first
run is cold and saves, a rerun reuses the stored bases and draws only
fingerprint rounds for covered points, reproducing the cold estimates
exactly.  Warm figures record ``warm_reuse_fraction``; warm documents are
tagged ``warm_store`` and refused as replacements for (or merge targets
of) cold baselines — the same protection adaptive documents get.

Alongside the text report, a machine-readable ``BENCH_run_all.json`` is
written with per-figure wall-clock seconds and work counters (samples
drawn, reuse fraction) so future changes have a perf trajectory to regress
against.  ``--data-out`` additionally dumps each figure's deterministic
data points (``FigureResult.data``) for exact estimate comparisons.
"""

import argparse
import json
import os
import platform
import sys
import time

from repro.bench.figures import (
    run_crossover,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_match,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _classify_baseline(bench_out, scale, workers=1, adaptive=None,
                       warm=False, backend=None):
    """Classify the file at ``bench_out`` for overwrite/merge decisions.

    Returns ``(kind, existing)``; ``kind`` is ``"missing"`` (no file),
    ``"unusable"`` (unparseable or unrecognized shape), ``"other-scale"``
    (well-formed baseline for a different scale), ``"other-workers"``
    (well-formed baseline measured at a different worker count — sharded
    wall clocks must never replace or be merged into the serial perf
    trajectory), ``"other-adaptive"`` (adaptive stopping policy differs —
    adaptive runs draw fewer samples by design, so their counters must
    never replace or be merged into a fixed-budget baseline, nor vice
    versa), ``"other-warm"`` (one run warm-started from a persisted
    store, the other did not — warm runs reuse prior-run bases and draw
    fewer samples by design, so their counters must never replace or be
    merged into a cold baseline, nor vice versa), ``"other-backend"``
    (measured under a different compute backend — deterministic counters
    are bitwise-identical across backends by contract, but the wall
    clocks and crossover keys are the backend's own and must not pose as
    the default trajectory), or ``"compatible"`` (well-formed, same
    configuration).  ``existing`` is the parsed document except for the
    first two kinds.
    """
    if not os.path.exists(bench_out):
        return "missing", None
    try:
        with open(bench_out) as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        return "unusable", None
    if not (
        isinstance(existing, dict)
        and isinstance(existing.get("figures"), dict)
        and all(
            isinstance(entry, dict) for entry in existing["figures"].values()
        )
    ):
        return "unusable", None
    if existing.get("scale") != scale:
        return "other-scale", existing
    if existing.get("workers", 1) != workers:
        return "other-workers", existing
    if existing.get("adaptive") != adaptive:
        return "other-adaptive", existing
    if bool(existing.get("warm_store", False)) != bool(warm):
        return "other-warm", existing
    if existing.get("backend") != backend:
        return "other-backend", existing
    return "compatible", existing


def _refuse_overwrite(bench_out, reason):
    print(
        f"not overwriting {bench_out}: {reason}; pass --bench-out to "
        f"write elsewhere",
        file=sys.stderr,
    )


def _warm_mismatch_reason(existing, bench):
    if bench.get("warm_store", False):
        return (
            "existing baseline is a cold run, this run warm-started from "
            "a persisted store (its counters reflect cross-run reuse)"
        )
    return (
        "existing baseline warm-started from a persisted store, this run "
        "is cold"
    )


def _merge_partial(bench_out, bench, all_figures):
    """Fold a ``--only`` run into an existing full-suite baseline.

    A partial run must never erase the other figures' entries: the JSON at
    the default path is the perf-regression baseline that acceptance
    criteria compare against.  If a compatible baseline exists (same scale,
    well-formed figure entries), update just the selected figure and
    recompute the total from the per-figure seconds.  Any existing file
    that cannot be merged — unparseable, unrecognized shape, or a
    different scale — is left untouched: returning None tells the caller
    to skip writing rather than overwrite it.  Whenever the resulting file
    covers fewer than all figures, it carries a ``partial`` key listing
    what it does cover, and any figure entry stitched in by an ``--only``
    run stays listed under ``merged_figures`` — so nobody mistakes the
    file for one full-suite measurement (a plain full run writes neither
    key).
    """
    kind, existing = _classify_baseline(
        bench_out,
        bench["scale"],
        bench.get("workers", 1),
        bench.get("adaptive"),
        bench.get("warm_store", False),
        bench.get("backend"),
    )
    if kind == "unusable":
        _refuse_overwrite(
            bench_out, "existing file is unreadable or has an unrecognized shape"
        )
        return None
    if kind == "other-scale":
        _refuse_overwrite(
            bench_out,
            f"existing baseline is {existing.get('scale')!r} scale, "
            f"this run is {bench['scale']!r}",
        )
        return None
    if kind == "other-workers":
        _refuse_overwrite(
            bench_out,
            f"existing baseline was measured with "
            f"{existing.get('workers', 1)} worker(s), this run used "
            f"{bench.get('workers', 1)}",
        )
        return None
    if kind == "other-adaptive":
        _refuse_overwrite(
            bench_out,
            f"existing baseline used adaptive policy "
            f"{existing.get('adaptive')!r}, this run used "
            f"{bench.get('adaptive')!r}",
        )
        return None
    if kind == "other-warm":
        _refuse_overwrite(
            bench_out,
            _warm_mismatch_reason(existing, bench),
        )
        return None
    if kind == "other-backend":
        _refuse_overwrite(
            bench_out,
            f"existing baseline was measured on backend "
            f"{existing.get('backend') or 'numpy'!r}, this run on "
            f"{bench.get('backend') or 'numpy'!r}",
        )
        return None
    merged_figures = set(bench["figures"])
    if existing is not None:
        merged_figures |= set(existing.get("merged_figures", ()))
        figures = dict(existing["figures"])
        figures.update(bench["figures"])
        bench = dict(existing, **bench)
        bench["figures"] = figures
        bench["total_seconds"] = round(
            sum(entry.get("seconds", 0.0) for entry in figures.values()), 4
        )
    else:
        bench = dict(bench)
    bench["merged_figures"] = sorted(merged_figures)
    if set(bench["figures"]) >= set(all_figures):
        bench.pop("partial", None)
    else:
        bench["partial"] = sorted(bench["figures"])
    return bench


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("smoke", "quick", "paper"),
        default="quick",
        help=(
            "workload sizes: smoke (CI regression gate), quick (seconds) "
            "or paper (minutes)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard the explorer sweeps (fig8-11) across this many "
            "processes; deterministic counters are bit-identical to the "
            "serial run, and sharded wall clocks are never merged into a "
            "serial baseline"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--bench-out",
        default=os.path.join(_REPO_ROOT, "BENCH_run_all.json"),
        help="machine-readable per-figure timings (empty string disables)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="run a single experiment, e.g. --only fig9",
    )
    parser.add_argument(
        "--rtol",
        type=float,
        default=None,
        help=(
            "enable adaptive per-point stopping at this relative "
            "tolerance for the explorer sweeps (fig8-11); figures then "
            "record samples_saved_fraction, and the resulting document "
            "is never merged into a fixed-budget baseline"
        ),
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level for --rtol stopping (default 0.95)",
    )
    parser.add_argument(
        "--warm-store",
        default=None,
        help=(
            "persist the explorer sweeps' basis stores (fig8-11) under "
            "this directory and warm-start from any snapshots already "
            "there; figures then record warm_reuse_fraction, and the "
            "resulting document is tagged and never merged into a cold "
            "baseline"
        ),
    )
    parser.add_argument(
        "--data-out",
        default=None,
        help=(
            "also write each figure's deterministic data points "
            "(FigureResult.data) to this JSON file — e.g. for the "
            "warm-start gate's exact estimate comparison"
        ),
    )
    parser.add_argument(
        "--backend",
        default=None,
        help=(
            "compute backend for the sampling/matching kernels (see "
            "repro.core.backend; default: the always-on numpy "
            "reference).  Deterministic counters are bitwise-identical "
            "across backends by contract, so the smoke gate passes "
            "unchanged; wall clocks and the crossover figure's "
            "crossover keys are the backend's own, so the resulting "
            "document is tagged and never merged into a default "
            "baseline.  Unknown or unavailable names are refused."
        ),
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help=(
            "persist the explorer sweeps' (fig8-11) completed-shard "
            "outcomes under this directory as they run; an interrupted "
            "run (exit code 130) re-invoked with the same arguments "
            "resumes from them, with counters bit-identical to an "
            "uninterrupted run (delete the directory after a completed "
            "run — stale records would merely be re-consumed, but cost "
            "disk)"
        ),
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.backend is not None:
        # Installed process-wide before any figure builds a store, so
        # every sweep (and every fork-pool shard worker, through the
        # pool initializer) runs the selected kernels.  Refusal is loud:
        # an unknown or unavailable name must never degrade silently.
        from repro.core.backend import use_backend
        from repro.errors import BackendError

        try:
            use_backend(args.backend)
        except BackendError as error:
            parser.error(str(error))
    adaptive = None
    if args.rtol is not None:
        from repro.core.adaptive import AdaptiveBudget

        try:
            adaptive = AdaptiveBudget(
                rtol=args.rtol, confidence=args.confidence
            )
        except Exception as error:
            parser.error(str(error))
    elif args.confidence != 0.95:
        print(
            "--confidence has no effect without --rtol",
            file=sys.stderr,
        )

    warm_store = args.warm_store or None
    checkpoint = args.checkpoint or None
    runners = {
        "fig7": lambda: run_fig7(args.scale),
        "fig8": lambda: run_fig8(
            args.scale, workers=args.workers, adaptive=adaptive,
            warm_store=warm_store, checkpoint=checkpoint,
        ),
        "fig9": lambda: run_fig9(
            args.scale, workers=args.workers, adaptive=adaptive,
            warm_store=warm_store, checkpoint=checkpoint,
        ),
        "fig10": lambda: run_fig10(
            args.scale, workers=args.workers, adaptive=adaptive,
            warm_store=warm_store, checkpoint=checkpoint,
        ),
        "fig11": lambda: run_fig11(
            args.scale, workers=args.workers, adaptive=adaptive,
            warm_store=warm_store, checkpoint=checkpoint,
        ),
        "fig12": lambda: run_fig12(args.scale),
        # The columnar FindMatch engine in isolation (no sampling): its
        # candidates_tested / matches_found counters are deterministic and
        # regression-gated like any figure's.
        "match": lambda: run_match(args.scale),
        # Reference-vs-backend kernel wall clock; gated on deterministic
        # counters only (the crossover keys are wall-clock-derived and
        # excluded, like seconds).
        "crossover": lambda: run_crossover(args.scale),
    }
    all_figures = tuple(runners)
    #: Figures whose runner takes the stopping policy (and the warm-store
    #: directory); fig7, fig12, and the match microbenchmark have no
    #: per-point sample budget to adapt nor a basis store to persist.
    adaptive_figures = ("fig8", "fig9", "fig10", "fig11")
    if args.only is not None:
        if args.only not in runners:
            parser.error(
                f"unknown experiment {args.only!r}; choose from "
                f"{sorted(runners)}"
            )
        runners = {args.only: runners[args.only]}
    if adaptive is not None and not any(
        name in adaptive_figures for name in runners
    ):
        # Nothing selected consumes the policy: the run is bit-identical
        # to a fixed-budget one, so don't tag (and later refuse to merge)
        # a document the flag never influenced.
        print(
            f"--rtol has no effect on {'/'.join(runners)}; "
            f"running fixed-budget",
            file=sys.stderr,
        )
        adaptive = None
    if warm_store is not None and not any(
        name in adaptive_figures for name in runners
    ):
        # Same neutrality rule for the warm store: nothing selected reads
        # or writes snapshots, so don't tag the document.
        print(
            f"--warm-store has no effect on {'/'.join(runners)}; "
            f"running cold",
            file=sys.stderr,
        )
        warm_store = None

    sections = []
    bench = {
        "scale": args.scale,
        "python": platform.python_version(),
        "workers": args.workers,
        "figures": {},
    }
    if adaptive is not None:
        # Recorded so adaptive documents can never be mistaken for (or
        # merged into) fixed-budget baselines; absent otherwise to keep
        # default documents byte-identical to pre-adaptive ones.
        bench["adaptive"] = {
            "rtol": adaptive.rtol,
            "confidence": adaptive.confidence,
        }
    if warm_store is not None:
        # Same tagging pattern: a warm run's reuse/sample counters reflect
        # cross-run amortization and must never be mistaken for (or merged
        # into) a cold baseline; absent on cold runs so default documents
        # stay byte-identical to pre-warm-start ones.
        bench["warm_store"] = True
    if args.backend is not None:
        # Tagged so a backend run's wall clocks (and the crossover
        # figure's crossover keys) never pose as the default numpy
        # trajectory; absent on default runs so those documents stay
        # byte-identical to pre-backend ones.
        bench["backend"] = args.backend
    total_seconds = 0.0
    data_doc = {}
    for name, runner in runners.items():
        started = time.perf_counter()
        print(f"running {name} ({args.scale} scale)...", file=sys.stderr)
        try:
            result = runner()
        except KeyboardInterrupt:
            # Figure sweeps flush completed-shard records through
            # --checkpoint as they arrive (each write is atomic), so
            # everything finished before Ctrl-C is already on disk; the
            # partially measured figure is discarded (its wall clocks
            # would be meaningless) and the same invocation resumes it.
            note = (
                f"; re-run with --checkpoint {checkpoint} to resume"
                if checkpoint
                else ""
            )
            print(f"interrupted during {name}{note}", file=sys.stderr)
            return 130
        elapsed = time.perf_counter() - started
        total_seconds += elapsed
        if isinstance(result, str):
            text, counters = result, {}
        else:
            text, counters = result.to_text(), dict(result.counters)
            data_doc[name] = result.data
        entry = {"seconds": round(elapsed, 4)}
        entry.update(
            {key: round(float(value), 6) for key, value in counters.items()}
        )
        bench["figures"][name] = entry
        sections.append(f"{text}\n  [regenerated in {elapsed:.1f}s]")
    bench["total_seconds"] = round(total_seconds, 4)

    write_bench = bool(args.bench_out)
    if args.only is not None and args.bench_out:
        bench = _merge_partial(args.bench_out, bench, all_figures)
        write_bench = bench is not None
    elif args.bench_out:
        # A full run at another scale, worker count, or adaptive policy
        # must not clobber the committed baseline either — same data-loss
        # class _merge_partial guards.  (A full run may replace a
        # missing/unusable/compatible file: it produces a complete fresh
        # baseline.)
        kind, existing = _classify_baseline(
            args.bench_out, args.scale, args.workers, bench.get("adaptive"),
            bench.get("warm_store", False), bench.get("backend"),
        )
        if kind == "other-scale":
            _refuse_overwrite(
                args.bench_out,
                f"existing baseline is {existing.get('scale')!r} scale, "
                f"this run is {args.scale!r}",
            )
            write_bench = False
        elif kind == "other-workers":
            _refuse_overwrite(
                args.bench_out,
                f"existing baseline was measured with "
                f"{existing.get('workers', 1)} worker(s), this run used "
                f"{args.workers}",
            )
            write_bench = False
        elif kind == "other-adaptive":
            _refuse_overwrite(
                args.bench_out,
                f"existing baseline used adaptive policy "
                f"{existing.get('adaptive')!r}, this run used "
                f"{bench.get('adaptive')!r}",
            )
            write_bench = False
        elif kind == "other-warm":
            _refuse_overwrite(
                args.bench_out, _warm_mismatch_reason(existing, bench)
            )
            write_bench = False
        elif kind == "other-backend":
            _refuse_overwrite(
                args.bench_out,
                f"existing baseline was measured on backend "
                f"{existing.get('backend') or 'numpy'!r}, this run on "
                f"{bench.get('backend') or 'numpy'!r}",
            )
            write_bench = False

    report = ("\n\n" + "=" * 76 + "\n\n").join(sections)
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
        print(f"\nwritten to {args.out}", file=sys.stderr)
    if args.data_out:
        with open(args.data_out, "w") as handle:
            json.dump(data_doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"figure data written to {args.data_out}", file=sys.stderr)
    if write_bench:
        with open(args.bench_out, "w") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"bench counters written to {args.bench_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
