"""Integration test: interactive what-if exploration over a real scenario.

Drives the Fuzzy Prophet event loop over the Figure 1 demand model, checks
that estimates converge toward ground truth, that scrubbing across the
parameter space reuses one basis per code path, and that GRAPH OVER output
renders from session estimates.
"""

import pytest

from repro.blackbox import BlackBoxRegistry, DemandModel
from repro.core.estimator import Estimator
from repro.core.seeds import SeedBank
from repro.interactive import InteractiveSession, render_graph
from repro.lang.binder import compile_query

QUERY = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 12 STEP BY 1;
SELECT DemandModel(@current_week, 6) AS demand INTO results;
GRAPH OVER @current_week EXPECT demand WITH bold red;
"""


@pytest.fixture(scope="module")
def bound():
    registry = BlackBoxRegistry()
    registry.register(DemandModel(), "DemandModel")
    return compile_query(QUERY, registry)


def make_session(bound, **kwargs):
    return InteractiveSession(
        bound.scenario.column_simulation("demand"),
        bound.scenario.space,
        fingerprint_size=10,
        chunk=10,
        seed_bank=SeedBank(17),
        **kwargs,
    )


class TestConvergence:
    def test_estimate_approaches_ground_truth(self, bound):
        session = make_session(bound)
        point = {"current_week": 8.0}
        session.focus(point)
        session.run(20)
        estimate = session.estimate(point)
        truth = Estimator().estimate(
            [
                bound.scenario.column_simulation("demand")(point, seed)
                for seed in SeedBank(999).seeds(2000)
            ]
        )
        assert estimate.expectation == pytest.approx(
            truth.expectation, abs=3 * truth.stddev / (estimate.count**0.5) + 0.3
        )

    def test_estimates_sharpen_with_ticks(self, bound):
        session = make_session(bound)
        point = {"current_week": 8.0}
        session.focus(point)
        shallow = session.sample_count(point)
        session.run(10)
        assert session.sample_count(point) > shallow


class TestScrubbing:
    def test_scrub_across_weeks_reuses_code_path_bases(self, bound):
        session = make_session(bound)
        # Weeks 0..6 are pre-release, 7..12 post-release: the demand model
        # has two code paths, and week 0 is degenerate (zero variance), so
        # a handful of bases must cover all 13 points.
        for week in range(13):
            session.focus({"current_week": float(week)})
        assert len(session.store) <= 4

    def test_every_scrubbed_point_has_estimate(self, bound):
        session = make_session(bound)
        for week in (2.0, 5.0, 9.0):
            session.focus({"current_week": week})
        for week in (2.0, 5.0, 9.0):
            estimate = session.estimate({"current_week": week})
            assert estimate is not None
            assert estimate.expectation == pytest.approx(week, abs=2.5)


class TestGraphRendering:
    def test_graph_over_session_estimates(self, bound):
        session = make_session(bound)
        weeks = [float(w) for w in range(0, 13, 2)]
        for week in weeks:
            session.focus({"current_week": week})
            session.run(3)
        series = [
            session.estimate({"current_week": week}).expectation
            for week in weeks
        ]
        metric, column, _ = bound.graph.series[0]
        text = render_graph(
            bound.graph.x_parameter,
            weeks,
            {f"{metric} {column}": series},
        )
        assert "GRAPH OVER @current_week" in text
        assert "expect demand" in text
