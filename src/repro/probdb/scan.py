"""Scan operators for named tables, deterministic or random.

Separated from :mod:`repro.probdb.query` because the random variant depends
on :mod:`repro.probdb.worlds` (which itself builds on the query layer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.probdb.query import Operator, WorldContext
from repro.probdb.relation import Relation
from repro.probdb.schema import Schema
from repro.probdb.worlds import RandomRelation


@dataclass
class RandomScan(Operator):
    """Scan a random table: instantiate one possible world per execution.

    This is the canonical MCDB table access path — the table is represented
    by its schema plus generating black boxes, and each world seed realizes
    a concrete relation (paper section 2.3).
    """

    table: RandomRelation

    def schema(self) -> Schema:
        return self.table.schema

    def execute(self, world: WorldContext) -> Relation:
        return self.table.instantiate(world)
