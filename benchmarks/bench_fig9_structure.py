"""Figure 9: computation time vs structure size (Capacity model).

Paper shape: wider purchase transients ("structures") create more basis
distributions — sub-linearly — so per-point cost rises with structure size,
and indexed matching (Normalization / Sorted SID) stays at or below the
Array scan as the basis count grows.
"""

import pytest

from repro.bench.workloads import capacity_workload
from repro.core.explorer import ParameterExplorer

SAMPLES = 50
STRUCTURE_SIZES = (2.0, 10.0)
STRATEGIES = ("array", "normalization", "sorted_sid")


@pytest.mark.parametrize("structure_size", STRUCTURE_SIZES, ids=str)
@pytest.mark.parametrize("strategy", STRATEGIES, ids=str)
def test_capacity_sweep(benchmark, structure_size, strategy):
    workload = capacity_workload(
        weeks=16, purchase_step=8, structure_size=structure_size
    )

    def run():
        explorer = ParameterExplorer(
            workload.simulation(),
            samples_per_point=SAMPLES,
            fingerprint_size=10,
            index_strategy=strategy,
        )
        return explorer.run(workload.points)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["bases"] = result.stats.bases_created


def test_fig9_shape():
    """Basis count grows with structure size, sub-linearly."""
    bases = {}
    for structure_size in (0.0, 4.0, 16.0):
        workload = capacity_workload(
            weeks=16, purchase_step=8, structure_size=structure_size
        )
        explorer = ParameterExplorer(
            workload.simulation(),
            samples_per_point=SAMPLES,
            fingerprint_size=10,
        )
        bases[structure_size] = explorer.run(
            workload.points
        ).stats.bases_created
    assert bases[0.0] <= bases[4.0] <= bases[16.0]
    assert bases[4.0] > bases[0.0]
    # Sub-linear: quadrupling the structure size does not quadruple bases.
    assert bases[16.0] < 4 * max(bases[4.0], 1)
