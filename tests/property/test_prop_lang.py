"""Property-based tests for the query language round trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.ast import RangeSpec, SetSpec
from repro.lang.parser import parse_expression, parse_script
from repro.probdb.expressions import EvalContext
from repro.lang.binder import Binder
from repro.lang.ast import Script
from repro.blackbox import BlackBoxRegistry

names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda n: n
    not in {
        "declare", "parameter", "as", "range", "to", "step", "by", "set",
        "chain", "from", "initial", "value", "select", "into", "optimize",
        "where", "group", "for", "max", "min", "graph", "over", "with",
        "case", "when", "then", "else", "end", "and", "or", "not",
        "expect", "expect_stddev", "stddev", "median", "avg", "sum", "count",
    }
)

numbers = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
).map(lambda v: round(v, 6))


class TestDeclareRoundTrip:
    @given(name=names, start=numbers, span=st.floats(0.0, 100.0), step=st.floats(0.1, 10.0))
    @settings(max_examples=100)
    def test_range_survives_parse(self, name, start, span, step):
        start = round(start, 3)
        stop = round(start + span, 3)
        step = round(step, 3)
        source = (
            f"DECLARE PARAMETER @{name} AS RANGE {start} TO {stop} "
            f"STEP BY {step};"
        )
        declare = parse_script(source).declares()[0]
        assert declare.name == name
        assert isinstance(declare.spec, RangeSpec)
        assert declare.spec.start == float(start)
        assert declare.spec.stop == float(stop)
        assert declare.spec.step == float(step)

    @given(
        name=names,
        members=st.lists(numbers, min_size=1, max_size=6),
    )
    @settings(max_examples=100)
    def test_set_survives_parse(self, name, members):
        rendered = ", ".join(repr(m) for m in members)
        source = f"DECLARE PARAMETER @{name} AS SET ({rendered});"
        declare = parse_script(source).declares()[0]
        assert isinstance(declare.spec, SetSpec)
        assert list(declare.spec.members) == [float(m) for m in members]


class TestExpressionSemantics:
    """Parsed-and-bound arithmetic must agree with Python's evaluation."""

    @given(
        a=st.integers(-50, 50),
        b=st.integers(-50, 50),
        c=st.integers(1, 50),
    )
    @settings(max_examples=150)
    def test_arithmetic_precedence_matches_python(self, a, b, c):
        source = f"{a} + {b} * {c} - ({a} - {b}) / {c}"
        node = parse_expression(source)
        registry = BlackBoxRegistry()
        binder = Binder(Script(), registry)
        expression = binder._bind_expression(node, set(), set())
        value = expression.evaluate(
            EvalContext(row={}, params={}, world_seed=0)
        )
        expected = a + b * c - (a - b) / c
        assert value == expected

    @given(a=st.integers(-20, 20), b=st.integers(-20, 20))
    @settings(max_examples=100)
    def test_comparisons_match_python(self, a, b):
        for op, expected in (
            ("<", a < b),
            ("<=", a <= b),
            (">", a > b),
            (">=", a >= b),
            ("=", a == b),
            ("<>", a != b),
        ):
            node = parse_expression(f"{a} {op} {b}")
            registry = BlackBoxRegistry()
            binder = Binder(Script(), registry)
            expression = binder._bind_expression(node, set(), set())
            assert (
                expression.evaluate(EvalContext({}, {}, 0)) == expected
            ), op

    @given(a=st.integers(-20, 20))
    @settings(max_examples=50)
    def test_case_when_matches_python(self, a):
        node = parse_expression(
            f"CASE WHEN {a} < 0 THEN 0 - {a} ELSE {a} END"
        )
        registry = BlackBoxRegistry()
        binder = Binder(Script(), registry)
        expression = binder._bind_expression(node, set(), set())
        assert expression.evaluate(EvalContext({}, {}, 0)) == abs(a)
