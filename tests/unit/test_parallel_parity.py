"""Parity suite for the sharded parallel sweep engine.

The engine's contract (ISSUE 2): per-point ``metrics`` of
:class:`~repro.core.parallel.ParallelExplorer` are **bit-identical** to the
serial :class:`~repro.core.explorer.ParameterExplorer` — reuse *decisions*
may in principle differ across shard counts, estimates may not.  The
replay-merge implementation actually guarantees the stronger property that
decisions, basis ids, mappings, and counters all match too, and these tests
pin the stronger property so a regression in the merge shows up as loudly
as possible.

Runs workers in {1, 2, 4} over two black-box models and two index
strategies, plus the merge APIs (``BasisStore.merge`` /
``FingerprintIndex.merge``), picklable seed slices, per-worker cache init,
the sharded scenario runner, and the CLI plumbing.
"""

import pickle

import numpy as np
import pytest

from repro.blackbox import draws
from repro.core.basis import BasisStore
from repro.core.explorer import NaiveExplorer, ParameterExplorer
from repro.core.fingerprint import Fingerprint
from repro.core.index import ArrayIndex, NormalizationIndex, SortedSIDIndex
from repro.core.mapping import IdentityMappingFamily
from repro.core.parallel import (
    ParallelExplorer,
    fork_available,
    fork_map,
    shard_slices,
)
from repro.core.seeds import SeedBank, SeedSlice
from repro.bench.workloads import (
    capacity_workload,
    overload_workload,
    user_selection_workload,
)
from repro.errors import IndexError_
from repro.scenario import ScenarioRunner
from repro.lang import compile_query
from repro.blackbox import default_registry

WORKER_COUNTS = (1, 2, 4)

WORKLOADS = {
    "capacity": lambda: capacity_workload(weeks=10, purchase_step=4),
    "user_selection": lambda: user_selection_workload(
        weeks=6, user_count=50
    ),
}

INDEX_STRATEGIES = ("normalization", "sorted_sid")


def _serial_run(workload_factory, strategy, samples=60):
    workload = workload_factory()
    explorer = ParameterExplorer(
        workload.simulation(),
        samples_per_point=samples,
        fingerprint_size=workload.fingerprint_size,
        index_strategy=strategy,
    )
    return workload, explorer.run(workload.points)


def _parallel_run(workload_factory, strategy, workers, samples=60):
    workload = workload_factory()
    explorer = ParallelExplorer(
        workload.simulation(),
        workers=workers,
        samples_per_point=samples,
        fingerprint_size=workload.fingerprint_size,
        index_strategy=strategy,
    )
    return workload, explorer.run(workload.points)


class TestParallelExplorerParity:
    """workers x models x index strategies: bit-identical to serial."""

    @pytest.mark.parametrize("strategy", INDEX_STRATEGIES)
    @pytest.mark.parametrize("model", sorted(WORKLOADS))
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_metrics_bit_identical(self, model, strategy, workers):
        factory = WORKLOADS[model]
        _, serial = _serial_run(factory, strategy)
        _, parallel = _parallel_run(factory, strategy, workers)
        assert len(parallel) == len(serial)
        for key, serial_point in serial.points.items():
            point = parallel.points[key]
            # MetricSet is a frozen dataclass: == is exact float equality
            # on every metric (expectation, stddev, extrema, quantiles).
            assert point.metrics == serial_point.metrics, (model, key)
            assert point.reused == serial_point.reused
            assert point.basis_id == serial_point.basis_id
            assert point.mapping == serial_point.mapping
            assert (
                point.fingerprint.values == serial_point.fingerprint.values
            )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_counters_shard_invariant(self, workers):
        _, serial = _serial_run(WORKLOADS["capacity"], "normalization")
        _, parallel = _parallel_run(
            WORKLOADS["capacity"], "normalization", workers
        )
        assert parallel.stats == serial.stats

    def test_identity_family_boolean_output(self):
        """Overload's 0/1 output (identity-only matching, array index)."""
        workload = overload_workload(weeks=8, purchase_step=4)
        serial = ParameterExplorer(
            workload.simulation(),
            samples_per_point=40,
            fingerprint_size=workload.fingerprint_size,
            basis_store=BasisStore(mapping_family=IdentityMappingFamily()),
        ).run(workload.points)
        for workers in (2, 4):
            workload = overload_workload(weeks=8, purchase_step=4)
            parallel = ParallelExplorer(
                workload.simulation(),
                workers=workers,
                samples_per_point=40,
                fingerprint_size=workload.fingerprint_size,
                mapping_family=IdentityMappingFamily(),
            ).run(workload.points)
            for key, serial_point in serial.points.items():
                assert parallel.points[key].metrics == serial_point.metrics

    def test_parallel_stats_account_for_speculation(self):
        _, serial = _serial_run(WORKLOADS["capacity"], "normalization")
        _, parallel = _parallel_run(
            WORKLOADS["capacity"], "normalization", workers=4
        )
        stats = parallel.parallel
        assert stats is not None
        assert stats.workers == 4
        assert sum(stats.shard_sizes) == serial.stats.points_total
        # Shards speculate: each one re-creates bases the serial order
        # reuses, and the merge collapses exactly that duplication.
        assert stats.shard_samples_drawn >= serial.stats.samples_drawn
        assert stats.bases_collapsed > 0
        assert stats.points_resimulated >= 0

    def test_matches_naive_where_serial_does(self):
        """End-to-end sanity: parity also transfers serial-vs-naive
        equivalence to the parallel engine."""
        workload = WORKLOADS["capacity"]()
        naive = NaiveExplorer(
            workload.simulation(), samples_per_point=60
        ).run(workload.points)
        assert naive.stats.points_total == len(workload.points)
        assert naive.stats.samples_drawn == 60 * len(workload.points)
        _, parallel = _parallel_run(
            WORKLOADS["capacity"], "normalization", workers=2
        )
        assert parallel.stats.samples_drawn < naive.stats.samples_drawn

    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_duplicate_points_stay_aligned(self, workers):
        """Regression: worker records are built per *visited* point, so a
        space containing repeated parameter points must not collapse in
        the shard payload and misalign (or truncate) the replay."""
        base = capacity_workload(weeks=6, purchase_step=4)
        points = base.points[:6] + base.points[:2] + base.points[3:5]
        serial = ParameterExplorer(
            capacity_workload(weeks=6, purchase_step=4).simulation(),
            samples_per_point=40,
            fingerprint_size=10,
        ).run(points)
        parallel = ParallelExplorer(
            capacity_workload(weeks=6, purchase_step=4).simulation(),
            workers=workers,
            samples_per_point=40,
            fingerprint_size=10,
        ).run(points)
        assert parallel.stats == serial.stats
        assert len(parallel) == len(serial)
        for key, serial_point in serial.points.items():
            assert parallel.points[key].metrics == serial_point.metrics
            assert parallel.points[key].reused == serial_point.reused

    def test_explorer_honors_empty_basis_store(self):
        """Regression: an empty BasisStore is falsy (len() == 0), and the
        explorer used to drop it via ``basis_store or BasisStore(...)`` —
        silently discarding the caller's mapping family and index."""
        store = BasisStore(
            mapping_family=IdentityMappingFamily(), index_strategy="array"
        )
        explorer = ParameterExplorer(
            lambda p, s: 0.0, samples_per_point=20, basis_store=store
        )
        assert explorer.store is store

    def test_validates_constructor_arguments(self):
        with pytest.raises(ValueError):
            ParallelExplorer(lambda p, s: 0.0, workers=-1)
        with pytest.raises(ValueError):
            ParallelExplorer(lambda p, s: 0.0, fingerprint_size=0)
        with pytest.raises(ValueError):
            ParallelExplorer(
                lambda p, s: 0.0, samples_per_point=5, fingerprint_size=10
            )


class TestShardSlices:
    def test_contiguous_cover(self):
        slices = shard_slices(10, 3)
        covered = [i for s in slices for i in range(s.start, s.stop)]
        assert covered == list(range(10))

    def test_more_workers_than_points(self):
        slices = shard_slices(2, 8)
        assert len(slices) == 2

    def test_empty_space(self):
        assert shard_slices(0, 4) == []


class TestForkMap:
    def test_inline_when_single_worker(self):
        calls = []

        def runner(context, index):
            calls.append(index)
            return context + index

        assert fork_map(runner, 10, 3, workers=1) == [10, 11, 12]
        assert calls == [0, 1, 2]

    @pytest.mark.skipif(not fork_available(), reason="no fork on platform")
    def test_forked_results_match_inline(self):
        def runner(context, index):
            return context * index

        forked = fork_map(runner, 3, 4, workers=4)
        inline = fork_map(runner, 3, 4, workers=1)
        assert forked == inline == [0, 3, 6, 9]

    @pytest.mark.skipif(not fork_available(), reason="no fork on platform")
    def test_worker_exceptions_propagate(self):
        def runner(context, index):
            raise RuntimeError("shard failed")

        with pytest.raises(RuntimeError):
            fork_map(runner, None, 2, workers=2)


class TestBasisStoreMerge:
    @staticmethod
    def _store_with(fingerprints, strategy="normalization"):
        store = BasisStore(index_strategy=strategy)
        for values in fingerprints:
            values = np.asarray(values, dtype=float)
            store.add(Fingerprint(values), np.tile(values, 3))
        return store

    def test_duplicates_collapse_into_mappings(self):
        base = [1.0, 2.0, 3.0, 5.0]
        left = self._store_with([base])
        # An affine image of the same fingerprint plus a genuinely new one.
        right = self._store_with(
            [[2 * v + 1 for v in base], [1.0, -4.0, 2.0, 9.0]]
        )
        translation = left.merge(right)
        assert len(left) == 2  # one collapsed, one adopted
        target_id, mapping = translation[0]
        assert target_id == 0
        assert mapping is not None
        mapped = mapping.apply_array(left.get(0).fingerprint.array)
        np.testing.assert_allclose(
            mapped, right.get(0).fingerprint.array, rtol=1e-9
        )
        adopted_id, adopted_mapping = translation[1]
        assert adopted_mapping is None
        np.testing.assert_array_equal(
            left.get(adopted_id).samples, right.get(1).samples
        )

    def test_merged_bases_are_probeable(self):
        left = self._store_with([[1.0, 2.0, 3.0, 5.0]])
        right = self._store_with([[1.0, -4.0, 2.0, 9.0]])
        left.merge(right)
        probe = Fingerprint(np.array([3.0, -7.0, 5.0, 19.0]))  # 2x + 1
        matched = left.match(probe)
        assert matched is not None
        basis, mapping = matched
        assert basis.basis_id == 1
        assert mapping.alpha == pytest.approx(2.0)

    def test_bulk_merge_without_reprobe(self):
        base = [1.0, 2.0, 3.0, 5.0]
        left = self._store_with([base])
        right = self._store_with([[2 * v + 1 for v in base]])
        translation = left.merge(right, reprobe=False)
        assert len(left) == 2  # duplicate kept: no collapsing requested
        assert translation[0] == (1, None)
        assert len(left.index) == 2

    @pytest.mark.parametrize("strategy", ("array", "sorted_sid"))
    def test_merge_under_other_strategies(self, strategy):
        left = self._store_with([[1.0, 2.0, 3.0, 5.0]], strategy)
        right = self._store_with([[0.0, 7.0, 1.0, 2.0]], strategy)
        left.merge(right, reprobe=False)
        probe = Fingerprint(np.array([0.0, 7.0, 1.0, 2.0]))
        matched = left.match(probe)
        assert matched is not None
        assert matched[0].basis_id == 1


class TestFingerprintIndexMerge:
    @staticmethod
    def _fingerprint(values):
        return Fingerprint(np.asarray(values, dtype=float))

    def test_array_index_translates_and_filters(self):
        left, right = ArrayIndex(), ArrayIndex()
        left.insert(self._fingerprint([1.0, 2.0]), 0)
        right.insert(self._fingerprint([3.0, 4.0]), 0)
        right.insert(self._fingerprint([5.0, 6.0]), 1)
        left.merge(right, {0: 7})  # id 1 collapsed away: not in the map
        assert left.candidates(self._fingerprint([0.0, 0.0])) == [0, 7]
        assert len(left) == 2

    def test_normalization_index_buckets_merge(self):
        left, right = NormalizationIndex(), NormalizationIndex()
        fp = self._fingerprint([1.0, 2.0, 4.0])
        affine_image = self._fingerprint([3.0, 5.0, 9.0])  # 2x + 1
        left.insert(fp, 0)
        right.insert(affine_image, 0)
        left.merge(right, {0: 1})
        assert left.candidates(fp) == [0, 1]

    def test_sorted_sid_index_buckets_merge(self):
        left, right = SortedSIDIndex(), SortedSIDIndex()
        fp = self._fingerprint([1.0, 3.0, 2.0])
        same_order = self._fingerprint([10.0, 30.0, 20.0])
        left.insert(fp, 0)
        right.insert(same_order, 5)
        left.merge(right, {5: 1})
        assert left.candidates(fp) == [0, 1]

    def test_strategy_mismatch_rejected(self):
        with pytest.raises(IndexError_):
            ArrayIndex().merge(NormalizationIndex(), {})

    def test_normalization_tolerance_mismatch_rejected(self):
        with pytest.raises(IndexError_):
            NormalizationIndex(rel_tol=1e-9).merge(
                NormalizationIndex(rel_tol=1e-6), {}
            )


class TestSeedSlices:
    def test_materialize_matches_seed_array(self):
        bank = SeedBank(1234)
        sliced = bank.slice(16, start=10)
        np.testing.assert_array_equal(
            sliced.materialize(), bank.seed_array(16, start=10)
        )

    def test_round_trips_through_pickle(self):
        sliced = SeedBank(99).slice(8, start=2)
        clone = pickle.loads(pickle.dumps(sliced))
        assert clone == sliced
        np.testing.assert_array_equal(
            clone.materialize(), sliced.materialize()
        )
        assert clone.bank == SeedBank(99)
        assert len(clone) == 8

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            SeedBank().slice(-1)
        with pytest.raises(ValueError):
            SeedSlice(0, -1, 4)


class TestWorkerCacheInit:
    def test_initialize_worker_clears_and_rebounds(self):
        cache = draws.DEFAULT_DRAW_CACHE
        original_budget = cache.max_floats
        try:
            seeds = SeedBank(7).seed_array(4)
            cache.matrix(seeds, ("normal",))
            assert len(cache) > 0
            draws.initialize_worker(max_floats=1024)
            assert len(cache) == 0
            assert cache.max_floats == 1024
            # Entries are pure functions of their key: recomputation after
            # the reset is bit-identical.
            first = np.array(cache.matrix(seeds, ("normal",)))
            draws.initialize_worker()
            np.testing.assert_array_equal(
                first, cache.matrix(seeds, ("normal",))
            )
        finally:
            draws.initialize_worker(max_floats=original_budget)

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            draws.initialize_worker(max_floats=-1)


SCENARIO_QUERY = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 14 STEP BY 1;
SELECT DemandModel(@current_week, 4) AS demand,
       CapacityModel(@current_week, 2, 6) AS capacity
INTO results;
"""


class TestScenarioRunnerWorkers:
    @pytest.fixture(scope="class")
    def bound(self):
        return compile_query(SCENARIO_QUERY, default_registry())

    @pytest.mark.parametrize("workers", (2, 4))
    def test_multi_column_parity(self, bound, workers):
        serial = ScenarioRunner(bound.scenario, samples_per_point=40).run()
        parallel = ScenarioRunner(
            bound.scenario, samples_per_point=40, workers=workers
        ).run()
        assert parallel.stats == serial.stats
        assert parallel.points == serial.points
        for key, columns in serial.metrics.items():
            assert parallel.metrics[key] == columns
        assert parallel.parallel is not None
        assert parallel.parallel.workers == workers

    def test_workers_validated(self, bound):
        with pytest.raises(ValueError):
            ScenarioRunner(bound.scenario, workers=0)


class TestCliWorkers:
    def test_run_with_workers_matches_serial_output(self, tmp_path, capsys):
        from repro.cli import main

        query = tmp_path / "scenario.sql"
        query.write_text(
            "DECLARE PARAMETER @current_week AS RANGE 0 TO 6 STEP BY 1;\n"
            "SELECT DemandModel(@current_week, 3) AS demand INTO results;\n"
        )
        assert main(["run", str(query), "--samples", "30"]) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(["run", str(query), "--samples", "30", "--workers", "2"])
            == 0
        )
        parallel_out = capsys.readouterr().out
        # Same estimates line for line; the sharded run only adds its
        # worker annotation to the header.
        serial_lines = serial_out.splitlines()
        parallel_lines = parallel_out.splitlines()
        assert parallel_lines[0].startswith(serial_lines[0])
        assert "2 workers" in parallel_lines[0]
        assert parallel_lines[1:] == serial_lines[1:]
