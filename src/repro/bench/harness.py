"""Timing harness shared by the figure runners and the pytest benchmarks.

Reports both wall-clock time and black-box invocation counts; the paper's
claims are about relative cost (Jigsaw vs. naive, index vs. scan), so the
machine-independent invocation ratio is printed next to every timing ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.util import timing
from repro.util.tables import format_table


@dataclass
class Measurement:
    """One timed run: seconds elapsed plus arbitrary work counters."""

    label: str
    seconds: float
    counters: Dict[str, int] = field(default_factory=dict)

    def per(self, unit_count: int) -> float:
        """Seconds per unit (per point, per step, ...)."""
        if unit_count <= 0:
            raise ValueError("unit_count must be positive")
        return self.seconds / unit_count


def timed(label: str, func: Callable[[], Dict[str, int]]) -> Measurement:
    """Run ``func`` once; it returns its work counters."""
    start = timing.perf_counter()
    counters = func() or {}
    elapsed = timing.perf_counter() - start
    return Measurement(label=label, seconds=elapsed, counters=counters)


@dataclass
class Series:
    """One plotted line: (x, y) pairs with a name."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    @property
    def xs(self) -> List[float]:
        return [p[0] for p in self.points]

    @property
    def ys(self) -> List[float]:
        return [p[1] for p in self.points]


@dataclass
class FigureResult:
    """Everything a figure reproduction produced, printable as text."""

    figure: str
    caption: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Machine-readable work counters (samples drawn, reuse fraction, ...)
    #: aggregated over the figure's runs; consumed by BENCH_run_all.json.
    counters: Dict[str, float] = field(default_factory=dict)
    #: Deterministic per-figure data points — per x-value estimates and
    #: reuse decisions that are pure functions of the fixed seed bank
    #: (never wall clock).  The golden-figure regression suite compares
    #: these exactly against committed files under ``benchmarks/golden/``.
    data: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def series_named(self, name: str) -> Series:
        for candidate in self.series:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no series named {name!r} in {self.figure}")

    def to_text(self) -> str:
        xs = sorted({x for s in self.series for x in s.xs})
        headers = [self.x_label] + [s.name for s in self.series]
        lookup = {
            s.name: dict(s.points) for s in self.series
        }
        rows = []
        for x in xs:
            row: List[object] = [x]
            for s in self.series:
                value = lookup[s.name].get(x)
                row.append("-" if value is None else value)
            rows.append(row)
        title = f"{self.figure}: {self.caption}  (y = {self.y_label})"
        body = format_table(headers, rows, title=title)
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body
