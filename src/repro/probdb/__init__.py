"""A compact MCDB-style Monte Carlo probabilistic database substrate."""

from repro.probdb.executor import MonteCarloExecutor, QueryDistribution
from repro.probdb.expressions import (
    BinaryOp,
    BlackBoxCall,
    CaseWhen,
    ColumnRef,
    Constant,
    EvalContext,
    Expression,
    FunctionCall,
    ParameterRef,
    UnaryOp,
)
from repro.probdb.query import (
    Filter,
    GeneratorScan,
    GroupAggregate,
    Limit,
    NestedLoopJoin,
    Operator,
    Project,
    SingletonScan,
    TableScan,
    WorldContext,
)
from repro.probdb.relation import Relation
from repro.probdb.scan import RandomScan
from repro.probdb.schema import Column, Schema
from repro.probdb.worlds import RandomRelation, VGColumn, WorldSampler

__all__ = [
    "MonteCarloExecutor",
    "QueryDistribution",
    "BinaryOp",
    "BlackBoxCall",
    "CaseWhen",
    "ColumnRef",
    "Constant",
    "EvalContext",
    "Expression",
    "FunctionCall",
    "ParameterRef",
    "UnaryOp",
    "Filter",
    "GeneratorScan",
    "GroupAggregate",
    "Limit",
    "NestedLoopJoin",
    "Operator",
    "Project",
    "SingletonScan",
    "TableScan",
    "WorldContext",
    "Relation",
    "RandomScan",
    "Column",
    "Schema",
    "RandomRelation",
    "VGColumn",
    "WorldSampler",
]
