"""Figure 7 (table): wrapper (C#+SQL analogue) vs core (Ruby analogue).

Paper shape: the wrapper is one to three orders of magnitude slower per
parameter combination on compute-light models (Demand, Capacity, Overload)
because per-invocation query interpretation and marshalling dominate, but
*faster* on the data-heavy UserSelect model, where set-oriented bulk
evaluation beats the core engine's per-row Python loop.
"""

import pytest

from repro.bench.engines import CoreEngine, WrapperEngine, default_query_for
from repro.bench.workloads import (
    capacity_workload,
    demand_workload,
    user_selection_workload,
)

SAMPLES = 25

DEMAND = demand_workload(weeks=8, features=(4.0,))
CAPACITY = capacity_workload(weeks=8, purchase_step=4)
USERS = user_selection_workload(weeks=2, user_count=400)


def _point(workload):
    return workload.points[len(workload.points) // 2]


@pytest.mark.parametrize(
    "workload",
    [DEMAND, CAPACITY, USERS],
    ids=lambda w: w.name,
)
def test_core_engine(benchmark, workload):
    engine = CoreEngine(workload.box, samples_per_point=SAMPLES)
    result = benchmark.pedantic(
        engine.evaluate_point, args=(_point(workload),), rounds=3, iterations=1
    )
    assert result.samples_drawn == SAMPLES


@pytest.mark.parametrize(
    "workload",
    [DEMAND, CAPACITY, USERS],
    ids=lambda w: w.name,
)
def test_wrapper_engine(benchmark, workload):
    engine = WrapperEngine(
        workload.box,
        default_query_for(workload.box),
        samples_per_point=SAMPLES,
    )
    result = benchmark.pedantic(
        engine.evaluate_point, args=(_point(workload),), rounds=3, iterations=1
    )
    assert result.samples_drawn == SAMPLES


def test_fig7_shape():
    """Non-timing shape check: wrapper loses on Demand, wins on UserSelect."""
    import time

    def seconds(engine, workload):
        point = _point(workload)
        start = time.perf_counter()
        engine.evaluate_point(point)
        return time.perf_counter() - start

    demand_core = seconds(
        CoreEngine(DEMAND.box, samples_per_point=SAMPLES), DEMAND
    )
    demand_wrapper = seconds(
        WrapperEngine(
            DEMAND.box,
            default_query_for(DEMAND.box),
            samples_per_point=SAMPLES,
        ),
        DEMAND,
    )
    users_core = seconds(
        CoreEngine(USERS.box, samples_per_point=SAMPLES), USERS
    )
    users_wrapper = seconds(
        WrapperEngine(
            USERS.box,
            default_query_for(USERS.box),
            samples_per_point=SAMPLES,
        ),
        USERS,
    )
    assert demand_wrapper > demand_core
    assert users_wrapper < users_core
