"""The Overload black box (paper Figure 6 and section 6.2).

"A black box synthesized from Capacity and Demand.  Demand's feature release
is ignored, and this black box returns 1 if Demand is greater than Capacity,
and 0 otherwise."

The boolean output destroys the affine structure fingerprint mapping relies
on: a 0/1 fingerprint carries no information about *how far* demand exceeded
capacity, so distinct distributions can only be reused under the identity
mapping.  The paper reports this as the case where Jigsaw achieves only ~2x
(rather than orders of magnitude) and motivates symbolic execution
(implemented separately in :mod:`repro.core.symbolic`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.blackbox.base import BlackBox, Params
from repro.blackbox.capacity import CapacityModel
from repro.blackbox.demand import DemandModel
from repro.blackbox.draws import derived_seed_array_cached
from repro.core.seeds import derive_seed


class OverloadModel(BlackBox):
    """Indicator that stochastic demand exceeds stochastic capacity."""

    name = "Overload"
    parameter_names: Tuple[str, ...] = (
        "current_week",
        "purchase1",
        "purchase2",
    )

    def __init__(
        self,
        demand: Optional[DemandModel] = None,
        capacity: Optional[CapacityModel] = None,
        ignored_feature_release: float = 1.0e9,
    ):
        super().__init__()
        self.demand = demand if demand is not None else DemandModel()
        self.capacity = capacity if capacity is not None else CapacityModel()
        # Per the paper, Demand's feature release is ignored; pushing it past
        # any reachable week keeps Demand on its no-release code path.
        self.ignored_feature_release = ignored_feature_release

    def component_boxes(self):
        return (self.demand, self.capacity)

    def _sample(self, params: Params, seed: int) -> float:
        week = float(params["current_week"])
        demand_value = self.demand.sample(
            {
                "current_week": week,
                "feature_release": self.ignored_feature_release,
            },
            # Distinct substreams per component so the two models do not
            # consume correlated draws from one stream.
            derive_seed(seed, 1),
        )
        capacity_value = self.capacity.sample(
            {
                "current_week": week,
                "purchase1": float(params["purchase1"]),
                "purchase2": float(params["purchase2"]),
            },
            derive_seed(seed, 2),
        )
        return 1.0 if demand_value > capacity_value else 0.0

    def _sample_batch(
        self, params: Params, seeds: np.ndarray
    ) -> Optional[np.ndarray]:
        week = float(params["current_week"])
        demand_values = self.demand.sample_batch(
            {
                "current_week": week,
                "feature_release": self.ignored_feature_release,
            },
            derived_seed_array_cached(seeds, 1),
        )
        capacity_values = self.capacity.sample_batch(
            {
                "current_week": week,
                "purchase1": float(params["purchase1"]),
                "purchase2": float(params["purchase2"]),
            },
            derived_seed_array_cached(seeds, 2),
        )
        return np.where(demand_values > capacity_values, 1.0, 0.0)
