"""End-to-end integration test: the paper's Figure 1 query.

Parses the (slightly down-scaled) Figure 1 text, binds it against the paper's
models, runs the batch explorer with fingerprint reuse, and answers the
OPTIMIZE clause — the complete batch-mode pipeline of paper Figure 3.
"""

import pytest

from repro.blackbox import (
    BlackBoxRegistry,
    CapacityModel,
    DemandModel,
)
from repro.lang.binder import compile_query
from repro.scenario import ScenarioRunner, boolean_column_families

FIG1_QUERY = """
-- DEFINITION --
DECLARE PARAMETER @current_week AS RANGE 0 TO 16 STEP BY 4;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 16 STEP BY 8;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 16 STEP BY 8;
DECLARE PARAMETER @feature_release AS SET (4, 12);
SELECT DemandModel(@current_week, @feature_release) AS demand,
       CapacityModel(@current_week, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
-- BATCH MODE --
OPTIMIZE SELECT @feature_release, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.5
GROUP BY feature_release, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
"""


@pytest.fixture(scope="module")
def bound():
    registry = BlackBoxRegistry()
    registry.register(DemandModel(), "DemandModel")
    registry.register(
        CapacityModel(base_capacity=12.0, purchase_volume=8.0),
        "CapacityModel",
    )
    return compile_query(FIG1_QUERY, registry)


@pytest.fixture(scope="module")
def result(bound):
    runner = ScenarioRunner(
        bound.scenario,
        samples_per_point=60,
        fingerprint_size=10,
        column_families=boolean_column_families(
            bound.scenario, ("overload",)
        ),
    )
    return runner.run()


class TestPipeline:
    def test_explores_entire_space(self, bound, result):
        assert len(result) == bound.scenario.space.size() == 5 * 3 * 3 * 2

    def test_fingerprinting_reuses_work(self, result):
        assert result.stats.points_reused > 0
        assert result.stats.rounds_executed < result.stats.points_total * 60

    def test_optimizer_answers(self, bound, result):
        answer = result.optimize(bound.selector)
        assert answer.groups
        if answer.best is not None:
            best = answer.best_parameters()
            assert set(best) == {
                "feature_release",
                "purchase1",
                "purchase2",
            }

    def test_best_group_is_lexicographic_max(self, bound, result):
        answer = result.optimize(bound.selector)
        if answer.best is None:
            pytest.skip("no feasible group at this scale")
        best_p1 = answer.best.value_of("purchase1")
        for group in answer.feasible_groups:
            assert group.value_of("purchase1") <= best_p1

    def test_overload_probability_monotone_in_demand_pressure(self, result):
        """Later weeks carry more demand, so overload expectation should
        not systematically decrease with the week at fixed purchases."""
        by_week = {}
        for key, columns in result.metrics.items():
            params = dict(key)
            if params["purchase1"] == 0.0 and params["purchase2"] == 0.0:
                if params["feature_release"] == 4.0:
                    by_week[params["current_week"]] = columns[
                        "overload"
                    ].expectation
        weeks = sorted(by_week)
        assert by_week[weeks[-1]] >= by_week[weeks[0]]


class TestGraphMode:
    def test_graph_clause_renders(self, bound):
        source = FIG1_QUERY.replace(
            "-- BATCH MODE --",
            "GRAPH OVER @current_week EXPECT overload WITH bold red,"
            " EXPECT capacity WITH blue y2;\n-- BATCH MODE --",
        )
        registry = BlackBoxRegistry()
        registry.register(DemandModel(), "DemandModel")
        registry.register(CapacityModel(), "CapacityModel")
        graphed = compile_query(source, registry)
        assert graphed.graph is not None
        assert graphed.graph.x_parameter == "current_week"
        assert len(graphed.graph.series) == 2
