"""The MarkovBranch black box (paper Figure 6 and section 6.4).

"A synthetic black box where at each step, a state counter is incremented by
one with a predefined probability.  The states diverge at some specified
rate."

``branching`` is the paper's *branching factor*: the per-step probability
that an instance's counter increments.  At low branching, trajectories stay
flat for long stretches and a frozen-state estimator remains valid, letting
the Markov-jump evaluator skip nearly all full-population work; as branching
approaches ~0.05 (one step in twenty), jumps stop paying off (Figure 12).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blackbox.base import MarkovModel
from repro.blackbox.draws import DEFAULT_DRAW_CACHE
from repro.blackbox.fastrng import KIND_UNIFORM, draw_matrix
from repro.blackbox.rng import DeterministicRng


class MarkovBranchModel(MarkovModel):
    """Counter chain that increments with probability ``branching`` per step."""

    name = "MarkovBranch"

    def __init__(
        self,
        branching: float = 0.01,
        increment: float = 1.0,
        work_per_step: int = 1,
    ):
        super().__init__()
        if not 0.0 <= branching <= 1.0:
            raise ValueError("branching must lie in [0, 1]")
        if work_per_step < 1:
            raise ValueError("work_per_step must be positive")
        self.branching = branching
        self.increment = increment
        self.work_per_step = work_per_step

    def initial_state(self) -> float:
        return 0.0

    def _step(self, state: float, step_index: int, seed: int) -> float:
        rng = DeterministicRng(seed)
        branched = rng.bernoulli(self.branching)
        # Busy-work knob emulating a costlier transition function.
        for _ in range(self.work_per_step - 1):
            rng.uniform()
        if branched:
            return state + self.increment
        return state

    def _step_batch(
        self,
        states: np.ndarray,
        step_index: int,
        seeds: np.ndarray,
        draws: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        # Busy-work draws beyond the first never influence the output, so
        # the batch path only materializes the branching uniform.
        if draws is None:
            u = draw_matrix(seeds, (KIND_UNIFORM,))[:, 0]
        else:
            u = np.asarray(draws, dtype=np.float64)
        return np.where(u < self.branching, states + self.increment, states)

    def plan_step_draws(
        self, seed_matrix: np.ndarray
    ) -> Optional[np.ndarray]:
        flat = np.asarray(seed_matrix, dtype=np.uint64).reshape(-1)
        u = DEFAULT_DRAW_CACHE.matrix(flat, (KIND_UNIFORM,))[:, 0]
        return u.reshape(np.asarray(seed_matrix).shape)
