"""Adaptive-precision estimation: confidence-driven early stopping.

The paper's engine draws a *fixed* per-point sample budget even when an
estimate has long since converged.  This module implements the natural
bounded-error alternative (in the spirit of Koch & Olteanu's "Conditioning
Probabilistic Databases" accuracy/effort trade): grow each point's Monte
Carlo sample set in vectorized blocks, and stop as soon as a confidence
interval on the expectation is inside a user-set *relative* tolerance —
with the fixed budget as a hard cap, so adaptive runs are never more
expensive than fixed ones.

Two interval constructions are offered:

* ``clt`` — the classical normal interval ``z * s / sqrt(n)``.  Valid
  asymptotically for any square-integrable output; the default.
* ``bernstein`` — the empirical-Bernstein bound (Maurer & Pontil 2009)
  using the *observed* sample range as the range proxy.  Tighter for
  low-variance bounded outputs (e.g. 0/1 indicator columns) and does not
  lean on asymptotic normality, but the observed-range proxy makes it a
  heuristic for unbounded outputs.

Everything here is a pure function of the sample values, which are
themselves pure functions of the shared seed bank — so adaptive stopping
decisions are deterministic per seed and identical across worker counts
(the sharded replay consumes the exact block schedule the shard produced).

Determinism contract: with the policy disabled (``adaptive=None``
everywhere), no call site changes behavior in any way — the fixed-budget
paths are bit-identical to a build without this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from statistics import NormalDist
from typing import Callable, Optional

import numpy as np

from repro.errors import EstimatorError

#: Interval constructions understood by :class:`AdaptiveBudget`.
METHODS = ("clt", "bernstein")

#: Default sample count before the interval math is trusted at all; below
#: this neither construction is meaningful (CLT: asymptotics; Bernstein:
#: the observed range badly underestimates the true range).
DEFAULT_MIN_SAMPLES = 32


@lru_cache(maxsize=64)
def _normal_quantile(probability: float) -> float:
    """Memoized standard-normal inverse CDF — the quantile is constant
    per policy but evaluated on every per-block convergence check."""
    return NormalDist().inv_cdf(probability)


@dataclass(frozen=True)
class AdaptiveBudget:
    """Stopping policy for sequential (confidence-driven) estimation.

    A point stops drawing once the two-sided ``confidence`` interval
    half-width on its running mean is at most ``rtol * |mean|`` (or
    ``atol``, whichever allows stopping earlier) — but never before
    ``min_samples`` and never beyond ``max_samples``.

    ``max_samples=None`` means "the caller's fixed budget": every engine
    caps the adaptive loop at its own ``samples_per_point``, so enabling
    the policy can only ever *save* samples.
    """

    rtol: float
    confidence: float = 0.95
    max_samples: Optional[int] = None
    min_samples: int = DEFAULT_MIN_SAMPLES
    method: str = "clt"
    atol: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.rtol:
            raise EstimatorError("rtol must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise EstimatorError("confidence must be in (0, 1)")
        if self.max_samples is not None and self.max_samples < 1:
            raise EstimatorError("max_samples must be positive")
        if self.min_samples < 2:
            raise EstimatorError("min_samples must be at least 2")
        if self.method not in METHODS:
            raise EstimatorError(f"method must be one of {METHODS}")
        if self.atol < 0.0:
            raise EstimatorError("atol must be non-negative")

    @property
    def z_value(self) -> float:
        """Two-sided standard-normal quantile for ``confidence``."""
        return _normal_quantile(0.5 + self.confidence / 2.0)

    def cap(self, fixed_budget: int) -> int:
        """The hard sample cap given a caller's fixed per-point budget."""
        if self.max_samples is None:
            return fixed_budget
        return min(self.max_samples, fixed_budget)

    # -- interval math -----------------------------------------------------

    def halfwidth(
        self, count: int, stddev: float, value_range: float
    ) -> float:
        """Two-sided CI half-width on the mean of ``count`` samples.

        ``stddev`` is the population standard deviation of the samples
        (matching :meth:`Estimator.estimate`); ``value_range`` is the
        observed max-min, used only by the Bernstein construction.
        """
        if count < 2:
            return math.inf
        if self.method == "clt":
            return self.z_value * stddev / math.sqrt(count)
        # Empirical Bernstein (Maurer & Pontil 2009, Thm 4) with the
        # observed range standing in for the a-priori range bound.
        delta = 1.0 - self.confidence
        log_term = math.log(3.0 / delta)
        return math.sqrt(
            2.0 * stddev * stddev * log_term / count
        ) + 3.0 * value_range * log_term / count

    def tolerance(self, mean: float) -> float:
        """The half-width target for a running ``mean``."""
        return max(self.rtol * abs(mean), self.atol)

    def satisfied(
        self, count: int, mean: float, stddev: float, value_range: float
    ) -> bool:
        """Whether the interval is inside tolerance (ignores the cap)."""
        if count < self.min_samples:
            return False
        return self.halfwidth(count, stddev, value_range) <= self.tolerance(
            mean
        )

    def satisfied_by(self, samples: np.ndarray) -> bool:
        """:meth:`satisfied` evaluated directly on a sample vector."""
        array = np.asarray(samples, dtype=float)
        if array.size < self.min_samples:
            return False
        mean = float(array.mean())
        return self.satisfied(
            int(array.size),
            mean,
            float(array.std()),
            float(array.max() - array.min()),
        )


def next_target(current: int, cap: int, policy: AdaptiveBudget) -> int:
    """Size to grow to next: geometric doubling toward the cap.

    Doubling keeps the block count logarithmic in the budget (so the
    vectorized draws stay large) while never overshooting ``cap``.  The
    schedule is a pure function of ``(current, cap, policy)`` — no data
    dependence — which keeps shard-recorded block boundaries trivially
    replayable.
    """
    return min(cap, max(policy.min_samples, 2 * max(current, 1)))


#: ``draw(start, count)`` returns ``count`` fresh sample values for global
#: sample ids ``[start, start + count)`` — typically a batched simulation
#: over ``seed_bank.seed_array(count, start=start)``.
DrawBlock = Callable[[int, int], np.ndarray]


def grow_samples(
    initial: np.ndarray,
    draw: DrawBlock,
    cap: int,
    policy: AdaptiveBudget,
) -> np.ndarray:
    """Sequential estimation loop: grow ``initial`` until converged/capped.

    Stopping is re-evaluated after every block on the full accumulated
    vector, so the decision sequence — and therefore the block schedule
    and the returned vector — is a pure function of the sample values.
    """
    samples = np.asarray(initial, dtype=float)
    while samples.size < cap and not policy.satisfied_by(samples):
        target = next_target(int(samples.size), cap, policy)
        block = np.asarray(
            draw(int(samples.size), target - int(samples.size)), dtype=float
        )
        samples = np.concatenate([samples, block])
    return samples


def fixed_budget_samples(
    points_total: int,
    points_reused: int,
    samples_per_point: int,
    fingerprint_size: int,
) -> int:
    """Samples the *fixed*-budget engine would draw for the same sweep.

    Reuse decisions are fingerprint-only, and fingerprints are unaffected
    by adaptive stopping, so the reuse pattern of an adaptive sweep matches
    the fixed sweep's exactly — which makes this closed form the correct
    denominator for :func:`saved_fraction`.
    """
    simulated = points_total - points_reused
    return points_total * fingerprint_size + simulated * (
        samples_per_point - fingerprint_size
    )


def saved_fraction(actual_samples: int, fixed_samples: int) -> float:
    """Fraction of the fixed budget the adaptive run did not draw."""
    if fixed_samples <= 0:
        return 0.0
    return max(0.0, 1.0 - actual_samples / fixed_samples)
