"""Store lifecycle differential suite (the invalidation layer's invariant).

A store that has lived — targeted removals, predicate invalidation,
policy eviction, compaction — must be indistinguishable from a fresh
store built from only its survivors: for every probe the same basis
(modulo the rebuild's renumbering), bitwise-same mapping parameters, and
the same per-probe ``candidates_tested`` work, across all five mapping
families, all three index strategies, and both the columnar and scalar
match paths.  Evicted ids must be unreachable everywhere: index buckets,
``candidates_batch``, the columnar gather (including its single-block
fast path), and :meth:`BasisStore.match` itself.

Also pinned here: eviction-policy ranking semantics, the sustained-load
bound (a policied store never exceeds ``max_bases``), snapshot version 2
round-trips with the committed v1 fixture loading through the compat
branch, the integer-tolerance codec fix, and the interactive engine's
failed-validation invalidation.
"""

import os

import numpy as np
import pytest

from repro.api import (
    CompactRequest,
    EvictRequest,
    MatchRequest,
    RefineRequest,
    Session,
)
from repro.blackbox.rng import DeterministicRng
from repro.core import persist
from repro.core.basis import BasisStore, EvictionPolicy
from repro.core.fingerprint import Fingerprint
from repro.core.index import INDEX_STRATEGIES, NormalizationIndex
from repro.core.mapping import (
    IdentityMappingFamily,
    LinearMappingFamily,
    MonotoneMappingFamily,
    ScaleMappingFamily,
    ShiftMappingFamily,
)
from repro.core.seeds import SeedBank
from repro.errors import ApiError, LifecycleError
from repro.interactive.heuristics import TASK_VALIDATION
from repro.interactive.session import InteractiveSession
from repro.scenario.parameter import RangeParameter
from repro.scenario.space import ParameterSpace

FAMILY_FACTORIES = {
    "linear": LinearMappingFamily,
    "identity": IdentityMappingFamily,
    "shift": ShiftMappingFamily,
    "scale": ScaleMappingFamily,
    "monotone": MonotoneMappingFamily,
}

BASE = Fingerprint((0.0, 1.0, 0.5, 2.0, -1.0))
SAMPLES = np.linspace(-1.0, 2.0, 40)

V1_FIXTURE = os.path.join(
    os.path.dirname(__file__), "data", "snapshot_v1"
)


def _affine(fp, alpha, beta):
    return Fingerprint(tuple(alpha * v + beta for v in fp.values))


def _cubic(fp):
    return Fingerprint(tuple(v**3 for v in fp.values))


MIXED = [
    BASE,
    _affine(BASE, 2.0, 3.0),
    _cubic(BASE),
    Fingerprint((4.0, 4.0, 4.0, 4.0, 4.0)),  # constant
    Fingerprint((0.0, 0.0, 0.0, 0.0, 0.0)),  # zero
    Fingerprint((1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)),  # other size
    _affine(BASE, -1.5, 0.25),
]

PROBES = [
    BASE,
    _affine(BASE, 1.0, 0.0),
    _affine(BASE, 3.0, -2.0),
    _affine(BASE, 1.0, 4.5),  # pure shift
    _affine(BASE, 2.5, 0.0),  # pure scale
    _affine(BASE, -2.0, 1.0),  # decreasing affine
    _cubic(BASE),  # monotone, not affine
    Fingerprint(tuple(-(v**3) for v in BASE.values)),  # decreasing monotone
    Fingerprint((4.0, 4.0, 4.0, 4.0, 4.0)),  # constant hit
    Fingerprint((7.5, 7.5, 7.5, 7.5, 7.5)),  # constant shift image
    Fingerprint((0.0, 0.0, 0.0, 0.0, 0.0)),  # zero
    Fingerprint((0.3, 0.1, 0.9, 0.2, 0.8)),  # unrelated: miss
    Fingerprint((1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)),  # other size, exact
    Fingerprint((2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0)),  # other size, 2x
]

#: Both match paths: columnar kernels always on vs. never reached.
MATCH_PATHS = {"columnar": 0, "scalar": 10**9}


def build_store(family_name, strategy, fingerprints, path="columnar"):
    store = BasisStore(
        mapping_family=FAMILY_FACTORIES[family_name](),
        index_strategy=strategy,
    )
    store.columnar_min_candidates = MATCH_PATHS[path]
    store._verify_remaining = 0
    for index, fingerprint in enumerate(fingerprints):
        store.add(fingerprint, SAMPLES * (index + 1))
    return store


def rebuild_from_survivors(store):
    """A fresh store holding only the survivors, plus orig-id -> new-id.

    The rebuild renumbers ids from zero, so comparisons translate
    through the returned map.  Survivors are inserted in ascending
    original id — the relative order removal preserved in every bucket —
    which is exactly what makes first-match-wins line up.
    """
    rebuild = BasisStore(
        mapping_family=type(store.mapping_family)(),
        index_strategy=type(store.index).strategy,
    )
    rebuild.columnar_min_candidates = store.columnar_min_candidates
    rebuild._verify_remaining = 0
    id_map = {}
    for new_id, basis in enumerate(store.bases):
        id_map[basis.basis_id] = new_id
        rebuild.add(basis.fingerprint, np.asarray(basis.samples))
    return rebuild, id_map


def probe_with_deltas(store, probes):
    """Match each probe, recording per-probe candidates_tested work."""
    out = []
    for probe in probes:
        before = store.stats.candidates_tested
        result = store.match(probe)
        out.append((result, store.stats.candidates_tested - before))
    return out


def assert_differential(store):
    """The lifecycle invariant: store == rebuild-from-survivors."""
    rebuild, id_map = rebuild_from_survivors(store)
    assert len(rebuild) == len(store)
    lived = probe_with_deltas(store, PROBES)
    fresh = probe_with_deltas(rebuild, PROBES)
    for (got, got_work), (want, want_work) in zip(lived, fresh):
        assert got_work == want_work
        assert (got is None) == (want is None)
        if got is None:
            continue
        assert id_map[got.basis.basis_id] == want.basis.basis_id
        assert type(got.mapping) is type(want.mapping)
        assert got.mapping == want.mapping
    # The batch path must agree with itself and with the rebuild.
    via_batch = store.match_batch(PROBES)
    fresh_batch = rebuild.match_batch(PROBES)
    for got, want in zip(via_batch, fresh_batch):
        assert (got is None) == (want is None)
        if got is not None:
            assert id_map[got.basis.basis_id] == want.basis.basis_id
            assert got.mapping == want.mapping


def warm(store, rounds=1):
    for _ in range(rounds):
        for probe in PROBES:
            store.match(probe)


def op_remove_first(store):
    return [store.remove(min(b.basis_id for b in store.bases)).basis_id]


def op_remove_scattered(store):
    ids = sorted(b.basis_id for b in store.bases)
    doomed = [ids[1], ids[-1]]
    for basis_id in doomed:
        store.remove(basis_id)
    return doomed


def op_invalidate_odd(store):
    return store.invalidate_where(lambda b: b.basis_id % 2 == 1)


def op_evict_value(store):
    warm(store)
    return store.evict(EvictionPolicy(max_bases=3))


def op_remove_then_compact(store):
    ids = sorted(b.basis_id for b in store.bases)
    doomed = ids[:2]
    for basis_id in doomed:
        store.remove(basis_id)
    store.compact()
    return doomed


LIFECYCLE_OPS = {
    "remove_first": op_remove_first,
    "remove_scattered": op_remove_scattered,
    "invalidate_odd": op_invalidate_odd,
    "evict_value": op_evict_value,
    "remove_then_compact": op_remove_then_compact,
}


class TestLifecycleDifferential:
    @pytest.mark.parametrize("op_name", sorted(LIFECYCLE_OPS))
    @pytest.mark.parametrize("path", sorted(MATCH_PATHS))
    @pytest.mark.parametrize("strategy", INDEX_STRATEGIES)
    @pytest.mark.parametrize("family_name", sorted(FAMILY_FACTORIES))
    def test_survivors_probe_like_fresh_store(
        self, family_name, strategy, path, op_name
    ):
        store = build_store(family_name, strategy, MIXED, path=path)
        warm(store)
        removed = LIFECYCLE_OPS[op_name](store)
        assert removed
        assert len(store) == len(MIXED) - len(removed)
        assert_differential(store)

    @pytest.mark.parametrize("strategy", INDEX_STRATEGIES)
    def test_first_match_wins_shifts_to_next_duplicate(self, strategy):
        """Removing the bucket head promotes the *next* entry, verbatim."""
        duplicates = [BASE, Fingerprint(BASE.values), _affine(BASE, 1.0, 0.0)]
        store = build_store("linear", strategy, duplicates)
        assert store.match(BASE).basis.basis_id == 0
        store.remove(0)
        assert store.match(BASE).basis.basis_id == 1
        assert_differential(store)
        store.remove(1)
        assert store.match(BASE).basis.basis_id == 2
        assert_differential(store)

    def test_remove_unknown_id_raises_keyerror(self):
        store = build_store("linear", "array", MIXED)
        with pytest.raises(KeyError):
            store.remove(99)
        store.remove(0)
        with pytest.raises(KeyError):
            store.remove(0)  # already gone; ids are never reissued

    def test_removed_ids_are_retired_forever(self):
        store = build_store("linear", "array", MIXED)
        store.remove(2)
        added = store.add(Fingerprint((5.0, 6.0, 7.0, 8.0, 9.0)), SAMPLES)
        assert added.basis_id == len(MIXED)  # next_id grew past the hole
        assert_differential(store)

    def test_lifecycle_then_save_load_keeps_parity(self, tmp_path):
        store = build_store("linear", "normalization", MIXED)
        warm(store)
        store.remove(1)
        store.invalidate_where(lambda b: b.fingerprint.size == 7)
        persist.save_store(store, str(tmp_path / "snap"))
        loaded = persist.load_store(
            str(tmp_path / "snap"),
            like=BasisStore(index_strategy="normalization"),
        )
        loaded.columnar_min_candidates = 0
        loaded._verify_remaining = 0
        assert len(loaded) == len(store)
        assert_differential(loaded)


class TestUnreachability:
    @pytest.mark.parametrize("strategy", INDEX_STRATEGIES)
    def test_removed_ids_unreachable_everywhere(self, strategy):
        store = build_store("linear", strategy, MIXED)
        removed_fps = [store.get(i).fingerprint for i in (0, 3, 5)]
        removed = [store.remove(i).basis_id for i in (0, 3, 5)]
        probes = PROBES + removed_fps
        # Index buckets, scalar and batch flavors.
        for probe in probes:
            assert not set(removed) & set(store.index.candidates(probe))
        for candidates in store.index.candidates_batch(probes):
            assert not set(removed) & set(candidates)
        # Columnar layout: retired ids are filtered by the size check
        # (their _size_of entry is zeroed) and never gathered.
        for basis_id, fingerprint in zip(removed, removed_fps):
            assert store.columnar._size_of[basis_id] == 0
            positions, rows, _ = store.columnar.gather(
                [basis_id], fingerprint.size
            )
            assert positions.size == 0 and rows.size == 0
        # And the match engine itself.
        for probe in probes:
            result = store.match(probe)
            assert result is None or result.basis.basis_id not in removed

    def test_fast_path_disabled_after_removal_even_post_compact(self):
        """A stale id's _row_of entry would alias row 0 on the
        single-block fast path; the holes flag is sticky to prevent it."""
        same_size = [fp for fp in MIXED if fp.size == BASE.size]
        store = build_store("linear", "array", same_size)
        assert len(store.columnar._blocks) == 1
        assert not store.columnar._had_holes
        store.remove(0)
        store.compact()
        assert store.columnar.tombstones == 0
        assert store.columnar._had_holes  # sticky by design
        positions, rows, _ = store.columnar.gather([0], BASE.size)
        assert positions.size == 0
        assert_differential(store)

    def test_tombstones_auto_compact_past_threshold(self):
        same_size = [fp for fp in MIXED if fp.size == BASE.size]
        store = build_store("linear", "array", same_size)
        from repro.core.columnar import COMPACT_TOMBSTONE_FRACTION

        for basis_id in range(len(same_size) - 1):
            store.remove(basis_id)
            # The mirror never lets dead rows dominate: past the
            # threshold it compacts itself instead of scanning them.
            total = sum(b.count for b in store.columnar._blocks.values())
            assert (
                store.columnar.tombstones
                <= COMPACT_TOMBSTONE_FRACTION * total
            )
        block = store.columnar._blocks[BASE.size]
        assert block.count < len(same_size)  # compaction did run
        assert block.count - block.dead == 1  # one live row left
        assert_differential(store)

    def test_emptied_block_is_dropped(self):
        store = build_store("linear", "array", MIXED)
        seven = [b.basis_id for b in store.bases if b.fingerprint.size == 7]
        for basis_id in seven:
            store.remove(basis_id)
        store.compact()
        assert 7 not in store.columnar._blocks
        positions, rows, block = store.columnar.gather(seven, 7)
        assert block is None
        assert_differential(store)


class TestEvictionPolicy:
    def _store_with_hits(self, hits):
        store = build_store("linear", "array", MIXED[: len(hits)])
        for basis, count in zip(store.bases, hits):
            basis.hits = count
        return store

    def test_value_ranking_evicts_least_hit_oldest_first(self):
        store = self._store_with_hits([5, 0, 2, 0])
        policy = EvictionPolicy(max_bases=2, keep="value")
        assert policy.victims(store) == [1, 3]  # never-hit, older first

    def test_recent_ranking_ignores_hits(self):
        store = self._store_with_hits([0, 9, 9, 9])
        policy = EvictionPolicy(max_bases=2, keep="recent")
        assert policy.victims(store) == [0, 1]

    def test_max_bytes_bound(self):
        store = self._store_with_hits([0, 1, 2])
        per_basis = store.get(0).nbytes()
        policy = EvictionPolicy(max_bytes=2 * per_basis)
        assert store.evict(policy) == [0]
        assert sum(b.nbytes() for b in store.bases) <= 2 * per_basis

    def test_hits_are_bumped_by_matching(self):
        store = build_store("linear", "array", MIXED)
        assert all(b.hits == 0 for b in store.bases)
        winner = store.match(BASE).basis
        assert winner.hits == 1
        store.match(_affine(BASE, 2.0, -1.0))
        assert winner.hits == 2
        store.match(Fingerprint((0.3, 0.1, 0.9, 0.2, 0.8)))  # miss
        assert sum(b.hits for b in store.bases) == 2

    def test_policy_validation(self):
        with pytest.raises(LifecycleError, match="ranking"):
            EvictionPolicy(max_bases=1, keep="lru")
        with pytest.raises(LifecycleError, match="non-negative"):
            EvictionPolicy(max_bases=-1)
        with pytest.raises(LifecycleError, match="non-negative"):
            EvictionPolicy(max_bytes=-8)

    def test_no_bounds_is_a_noop(self):
        store = build_store("linear", "array", MIXED)
        assert EvictionPolicy().victims(store) == []

    @pytest.mark.parametrize("strategy", INDEX_STRATEGIES)
    def test_bounded_store_stays_bounded_under_sustained_load(
        self, strategy
    ):
        """The acceptance bound: max_bases=N holds through any number of
        add/probe/evict rounds, and survivors stay differential-clean."""
        policy = EvictionPolicy(max_bases=4)
        store = build_store("linear", strategy, [])
        for round_index in range(20):
            store.add(
                _affine(BASE, 1.0 + round_index, float(round_index)),
                SAMPLES * (round_index + 1),
            )
            store.match(BASE)
            store.evict(policy)
            assert len(store) <= 4
        assert len(store) == 4
        assert_differential(store)


class TestSessionLifecycle:
    def _session(self, bases=MIXED, **kwargs):
        return Session(build_store("linear", "array", bases), **kwargs)

    def test_standing_policy_applies_after_refine(self):
        session = self._session(eviction=EvictionPolicy(max_bases=3))
        assert session.basis_count() == len(MIXED)
        survivor = len(MIXED) - 1  # newest: survives keep="value" ties
        response = session.refine(
            RefineRequest(basis_id=survivor, samples=(1.0, 2.0))
        )
        assert response.basis_id == survivor
        assert session.basis_count() == 3
        # The bound keeps holding, refine after refine.
        session.refine(RefineRequest(basis_id=survivor, samples=(3.0,)))
        assert session.basis_count() == 3

    def test_evict_request_bounds_store(self):
        session = self._session()
        response = session.evict(EvictRequest(max_bases=2))
        assert response.bases == {"default": 2}
        assert len(response.evicted["default"]) == len(MIXED) - 2
        assert session.basis_count() == 2

    def test_evict_request_without_bounds_refused(self):
        with pytest.raises(ApiError, match="max_bases"):
            self._session().evict(EvictRequest())

    def test_compact_request_reports_dropped_rows(self):
        session = self._session()
        session.store().remove(0)
        session.store().remove(2)
        response = session.compact(CompactRequest())
        assert response.rows_dropped == {"default": 2}
        assert response.bases == {"default": len(MIXED) - 2}
        assert session.store().columnar.tombstones == 0

    def test_admin_requests_ride_handle_batch(self):
        """Mixed probe + admin batches answer in order, with the admin
        request applied between the probe runs around it."""
        session = self._session()
        responses = session.handle_batch(
            [
                MatchRequest(fingerprint=BASE.values),
                EvictRequest(max_bases=2),
                MatchRequest(fingerprint=BASE.values),
                CompactRequest(),
            ]
        )
        assert responses[0].matched
        assert responses[1].bases == {"default": 2}
        assert responses[3].bases == {"default": 2}
        # Whether the second probe still matches depends only on the
        # survivors — exactly what a sequential replay would see.
        replay = self._session()
        replay.handle(MatchRequest(fingerprint=BASE.values))
        replay.handle(EvictRequest(max_bases=2))
        sequential = replay.handle(MatchRequest(fingerprint=BASE.values))
        assert responses[2].matched == sequential.matched
        assert responses[2].basis_id == sequential.basis_id


class TestSnapshotVersion2:
    def test_v1_fixture_loads_through_compat_branch(self):
        assert persist.snapshot_info(V1_FIXTURE)["version"] == 1
        loaded = persist.load_store(V1_FIXTURE, mmap=False)
        assert len(loaded) == 5
        # Version-1 snapshots predate reuse counters: restored cold.
        assert [b.hits for b in loaded.bases] == [0, 0, 0, 0, 0]
        assert loaded.stats.as_dict() == {
            "lookups": 5,
            "candidates_tested": 4,
            "matches": 4,
            "bases_created": 5,
        }
        result = loaded.match(BASE)
        assert result is not None and result.basis.basis_id == 0

    def test_v1_resaves_as_v2_with_hits_roundtrip(self, tmp_path):
        loaded = persist.load_store(V1_FIXTURE, mmap=False)
        loaded.match(BASE)  # bump one reuse counter
        persist.save_store(loaded, str(tmp_path / "snap"))
        assert (
            persist.snapshot_info(str(tmp_path / "snap"))["version"]
            == persist.SNAPSHOT_VERSION
            == 2
        )
        reloaded = persist.load_store(str(tmp_path / "snap"), mmap=False)
        assert [b.hits for b in reloaded.bases] == [1, 0, 0, 0, 0]

    def test_dump_compacts_tombstones_away(self, tmp_path):
        store = build_store("linear", "array", MIXED)
        store.remove(1)  # below the auto-compaction threshold
        assert store.columnar.tombstones == 1
        persist.save_store(store, str(tmp_path / "snap"))
        assert store.columnar.tombstones == 0  # compacted by the dump
        loaded = persist.load_store(
            str(tmp_path / "snap"), like=BasisStore(index_strategy="array")
        )
        assert loaded.columnar.tombstones == 0
        assert not loaded.columnar._had_holes  # fast path re-enabled
        loaded.columnar_min_candidates = 0
        loaded._verify_remaining = 0
        assert_differential(loaded)


class TestIntegerToleranceCodec:
    """Integer tolerances used to crash ``dump_state`` (int has no
    ``.hex()``); constructors now coerce to float at the boundary."""

    def test_integer_tolerances_snapshot_bitwise(self, tmp_path):
        store = BasisStore(index_strategy="normalization", rel_tol=1,
                           abs_tol=0)
        store.add(BASE, SAMPLES)
        assert store.rel_tol == 1.0 and isinstance(store.rel_tol, float)
        persist.save_store(store, str(tmp_path / "snap"))
        loaded = persist.load_store(
            str(tmp_path / "snap"),
            like=BasisStore(index_strategy="normalization", rel_tol=1,
                            abs_tol=0),
        )
        assert loaded.rel_tol.hex() == float(1).hex()
        assert loaded.abs_tol.hex() == float(0).hex()

    def test_normalization_index_integer_rel_tol(self):
        index = NormalizationIndex(rel_tol=1)
        index.insert(BASE, 0)
        state = index.dump_state()
        assert state["rel_tol"] == float(1).hex()


class TestInteractiveInvalidation:
    def _drifting_session(self, table):
        def simulation(params, seed):
            rng = DeterministicRng(seed)
            return table["scale"] * rng.normal(params["week"], 1.0)

        return InteractiveSession(
            simulation,
            ParameterSpace([RangeParameter("week", 0.0, 10.0, 1.0)]),
            fingerprint_size=10,
            chunk=10,
            seed_bank=SeedBank(5),
        )

    def test_failed_validation_invalidates_stale_basis(self):
        table = {"scale": 1.0}
        session = self._drifting_session(table)
        session.focus({"week": 2.0})
        session.run(5)
        stale_id = session._state({"week": 2.0}).basis_id
        table["scale"] = 50.0  # the model drifts under the session
        rebound = []
        for _ in range(8):
            report = session.tick()
            if report.task == TASK_VALIDATION:
                rebound.append(report.rebound)
        assert any(rebound)
        # The stale basis is gone from the store — not just unbound.
        with pytest.raises(KeyError):
            session.store.get(stale_id)
        assert session.estimate({"week": 2.0}) is not None

    def test_invalidation_unbinds_every_sharing_point(self):
        session = self._drifting_session({"scale": 1.0})
        session.focus({"week": 2.0})
        session.focus({"week": 7.0})
        assert len(session.store) == 1  # linear family: one shared basis
        state = session._state({"week": 2.0})
        other = session._state({"week": 7.0})
        stale_id = state.basis_id
        assert other.basis_id == stale_id
        session._rebind_from_scratch(state, invalidate=True)
        with pytest.raises(KeyError):
            session.store.get(stale_id)
        assert other.basis_id != stale_id
        assert other.mapping is None or other.basis_id is not None
