"""Workload definitions for every evaluation experiment (paper section 6).

Each figure's workload — the black box, its parameter space, and sampling
parameters — lives here so benchmarks, harness scripts, and tests share one
definition.  Defaults are scaled down from the paper's sizes (which target a
2011 C#/Ruby stack running for minutes); ``scale`` knobs let the harness run
paper-sized sweeps when wall-clock budget allows.  The paper's constants are
kept where stated: 1000 sample instances per point, fingerprint size 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.blackbox.base import BlackBox, Params
from repro.blackbox.capacity import CapacityModel
from repro.blackbox.demand import DemandModel
from repro.blackbox.markov_branch import MarkovBranchModel
from repro.blackbox.markov_step import MarkovStepModel
from repro.blackbox.overload import OverloadModel
from repro.blackbox.synth_basis import SynthBasisModel
from repro.blackbox.user_selection import UserSelectionModel

PAPER_SAMPLES_PER_POINT = 1000
PAPER_FINGERPRINT_SIZE = 10


@dataclass
class SweepWorkload:
    """A black box plus the parameter space the paper sweeps it over."""

    name: str
    box: BlackBox
    points: List[Dict[str, float]]
    samples_per_point: int = PAPER_SAMPLES_PER_POINT
    fingerprint_size: int = PAPER_FINGERPRINT_SIZE

    def simulation(self) -> Callable[[Params, int], float]:
        # The box itself: callable as a scalar ``(params, seed)`` simulation
        # and batch-capable via ``sample_batch`` (the explorers detect it).
        return self.box


def demand_workload(
    weeks: int = 52, features: Tuple[float, ...] = (12.0, 36.0, 44.0)
) -> SweepWorkload:
    """Demand over (week, feature release): ~5000 points at paper scale
    comes from a finer week grid; shape is identical at any density."""
    points = [
        {"current_week": float(week), "feature_release": float(feature)}
        for week in range(weeks + 1)
        for feature in features
    ]
    return SweepWorkload("Demand", DemandModel(), points)


def capacity_workload(
    weeks: int = 52, purchase_step: int = 4, structure_size: float = 2.0
) -> SweepWorkload:
    """Capacity over (week, purchase1, purchase2): ~8000 points at paper
    scale (52 × ~13 × ~13)."""
    purchase_weeks = list(range(0, weeks + 1, purchase_step))
    points = [
        {
            "current_week": float(week),
            "purchase1": float(p1),
            "purchase2": float(p2),
        }
        for week in range(weeks + 1)
        for p1 in purchase_weeks
        for p2 in purchase_weeks
    ]
    return SweepWorkload(
        "Capacity",
        CapacityModel(structure_size=structure_size),
        points,
    )


def overload_workload(
    weeks: int = 52, purchase_step: int = 4
) -> SweepWorkload:
    """Overload over (week, purchase1, purchase2).

    Capacity constants are tightened (base 10, +10 per purchase) so demand
    genuinely races capacity across much of the space: the interesting case
    where the boolean output's stochastic boundary regions defeat remapping
    and hold the speedup near the paper's ~2x (section 6.2).
    """
    purchase_weeks = list(range(0, weeks + 1, purchase_step))
    points = [
        {
            "current_week": float(week),
            "purchase1": float(p1),
            "purchase2": float(p2),
        }
        for week in range(weeks + 1)
        for p1 in purchase_weeks
        for p2 in purchase_weeks
    ]
    box = OverloadModel(
        capacity=CapacityModel(base_capacity=10.0, purchase_volume=10.0)
    )
    return SweepWorkload("Overload", box, points)


def user_selection_workload(
    weeks: int = 12, user_count: int = 500
) -> SweepWorkload:
    points = [{"current_week": float(week)} for week in range(weeks + 1)]
    return SweepWorkload(
        "UserSelect",
        UserSelectionModel(user_count=user_count),
        points,
    )


def synth_basis_workload(
    basis_count: int, point_count: int, work_per_sample: int = 1
) -> SweepWorkload:
    """Figures 10/11: a sweep engineered to create exactly ``basis_count``
    basis distributions across ``point_count`` points."""
    box = SynthBasisModel(
        basis_count=basis_count, work_per_sample=work_per_sample
    )
    # Visit residues round-robin so every basis is created early, then reused.
    points = [{"point": float(i)} for i in range(point_count)]
    return SweepWorkload(
        f"SynthBasis(b={basis_count})", box, points
    )


def markov_branch_model(branching: float) -> MarkovBranchModel:
    """Figure 12's synthetic diverging chain."""
    return MarkovBranchModel(branching=branching)


def markov_step_model(
    release_threshold: float = 30.0,
) -> MarkovStepModel:
    """Figure 8's MarkovStep process (Demand with a release dependency)."""
    return MarkovStepModel(release_threshold=release_threshold)


FIG8_WORKLOADS: Tuple[str, ...] = (
    "Usage",
    "Capacity",
    "Overload",
    "MarkovStep",
)


def fig8_workload(name: str, scale: float = 1.0) -> SweepWorkload:
    """Figure 8 sweeps by paper series name ('Usage' is UserSelection)."""
    weeks = max(4, int(52 * min(scale, 1.0)))
    if name == "Usage":
        return user_selection_workload(
            weeks=max(4, int(12 * min(scale, 1.0))),
            user_count=max(50, int(500 * scale)),
        )
    if name == "Capacity":
        return capacity_workload(weeks=weeks)
    if name == "Overload":
        return overload_workload(weeks=weeks)
    raise ValueError(f"unknown Figure 8 workload {name!r}")
