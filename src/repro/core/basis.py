"""Basis distributions and the FindMatch store (paper section 3.1, Alg 3).

During execution Jigsaw incrementally maintains a set of *basis
distributions* — (fingerprint, output metrics) pairs for parameter points
that were fully simulated.  A new point first computes its fingerprint; if a
stored basis maps onto it, the expensive remaining Monte Carlo rounds are
skipped and the basis's metrics are remapped instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.estimator import Estimator, MetricSet
from repro.core.fingerprint import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    Fingerprint,
)
from repro.core.index import FingerprintIndex, make_index
from repro.core.mapping import (
    AffineMapping,
    LinearMappingFamily,
    Mapping,
    MappingFamily,
)


@dataclass
class BasisDistribution:
    """A fully simulated distribution available for reuse.

    ``samples`` holds the raw Monte Carlo outputs (fingerprint rounds first),
    enabling sample-level reuse under non-affine mappings and sample
    recycling in the interactive engine.
    """

    basis_id: int
    fingerprint: Fingerprint
    samples: np.ndarray
    metrics: MetricSet

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=float)


@dataclass
class StoreStats:
    """Work counters for basis matching (benchmarks read these)."""

    lookups: int = 0
    candidates_tested: int = 0
    matches: int = 0
    bases_created: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "lookups": self.lookups,
            "candidates_tested": self.candidates_tested,
            "matches": self.matches,
            "bases_created": self.bases_created,
        }


class BasisStore:
    """The set of basis distributions plus its fingerprint index.

    Implements the matching half of paper Algorithm 3 (FindMatch): probe the
    index for candidates, run the family's FindMapping on each, and return
    the first basis with a valid mapping.
    """

    def __init__(
        self,
        mapping_family: Optional[MappingFamily] = None,
        index: Optional[FingerprintIndex] = None,
        index_strategy: str = "normalization",
        estimator: Optional[Estimator] = None,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
    ):
        self.mapping_family = mapping_family or LinearMappingFamily()
        if index is None:
            if (
                index_strategy == "normalization"
                and not self.mapping_family.supports_normal_form
            ):
                # Normalization is meaningless for families without a normal
                # form; fall back to the always-correct scan.
                index_strategy = "array"
            index = make_index(index_strategy)
        self.index = index
        self.estimator = estimator or Estimator()
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol
        self.stats = StoreStats()
        self._bases: Dict[int, BasisDistribution] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._bases)

    @property
    def bases(self) -> Tuple[BasisDistribution, ...]:
        return tuple(self._bases[i] for i in sorted(self._bases))

    def get(self, basis_id: int) -> BasisDistribution:
        return self._bases[basis_id]

    def match(
        self, fingerprint: Fingerprint
    ) -> Optional[Tuple[BasisDistribution, Mapping]]:
        """Find a stored basis and mapping M with M(basis.fp) == fingerprint.

        The mapping direction follows the reuse direction: applying M to the
        basis's samples/metrics yields the probe point's.
        """
        self.stats.lookups += 1
        for basis_id in self.index.candidates(fingerprint):
            basis = self._bases[basis_id]
            self.stats.candidates_tested += 1
            mapping = self.mapping_family.find(
                basis.fingerprint,
                fingerprint,
                rel_tol=self.rel_tol,
                abs_tol=self.abs_tol,
            )
            if mapping is not None:
                self.stats.matches += 1
                return basis, mapping
        return None

    def add(
        self,
        fingerprint: Fingerprint,
        samples: np.ndarray,
        metrics: Optional[MetricSet] = None,
    ) -> BasisDistribution:
        """Store a fully simulated distribution as a new basis."""
        if metrics is None:
            metrics = self.estimator.estimate(samples)
        basis = BasisDistribution(
            basis_id=self._next_id,
            fingerprint=fingerprint,
            samples=np.asarray(samples, dtype=float),
            metrics=metrics,
        )
        self._bases[basis.basis_id] = basis
        self.index.insert(fingerprint, basis.basis_id)
        self._next_id += 1
        self.stats.bases_created += 1
        return basis

    def merge(
        self,
        other: "BasisStore",
        reprobe: bool = True,
    ) -> Dict[int, Tuple[int, Optional[Mapping]]]:
        """Fold another store's bases into this one (sharded-sweep merge).

        With ``reprobe=True`` (default), each incoming basis — in creation
        order — is re-probed against this store's index: if its fingerprint
        already maps onto a stored basis, it *collapses* into that mapping
        instead of being inserted, so cross-shard duplicate simulation work
        shrinks to a mapping entry.  This is safe for exactly the reason
        index false negatives are (paper section 3.2): a duplicate basis
        costs storage, never correctness, so collapsing is pure win and
        keeping a duplicate (when the probe misses) is merely unfortunate.

        With ``reprobe=False`` every basis is adopted verbatim through the
        bulk :meth:`FingerprintIndex.merge` path — no FindMapping calls, no
        collapsing — which is the right mode when the shards are known to
        partition a space with no cross-shard similarity.

        Returns ``{other_basis_id: (basis_id_here, mapping)}`` where
        ``mapping`` is the collapse mapping (apply it to the absorbed
        basis's samples/metrics to recover the incoming ones) or ``None``
        for bases adopted verbatim.
        """
        translation: Dict[int, Tuple[int, Optional[Mapping]]] = {}
        if not reprobe:
            id_map: Dict[int, int] = {}
            for basis in other.bases:
                adopted = BasisDistribution(
                    basis_id=self._next_id,
                    fingerprint=basis.fingerprint,
                    samples=basis.samples,
                    metrics=basis.metrics,
                )
                self._bases[adopted.basis_id] = adopted
                self._next_id += 1
                self.stats.bases_created += 1
                id_map[basis.basis_id] = adopted.basis_id
                translation[basis.basis_id] = (adopted.basis_id, None)
            self.index.merge(other.index, id_map)
            return translation
        for basis in other.bases:
            matched = self.match(basis.fingerprint)
            if matched is not None:
                target, mapping = matched
                translation[basis.basis_id] = (target.basis_id, mapping)
            else:
                adopted = self.add(
                    basis.fingerprint, basis.samples, metrics=basis.metrics
                )
                translation[basis.basis_id] = (adopted.basis_id, None)
        return translation

    def extend_basis(
        self, basis_id: int, new_samples: np.ndarray
    ) -> BasisDistribution:
        """Append refinement samples to a basis and refresh its metrics.

        Used by the interactive engine (section 5): new samples generated for
        a point of interest are recycled into its basis through M⁻¹, making
        every correlated point's estimate more accurate at once.
        """
        basis = self._bases[basis_id]
        basis.samples = np.concatenate(
            [basis.samples, np.asarray(new_samples, dtype=float)]
        )
        basis.metrics = self.estimator.estimate(basis.samples)
        return basis

    def metrics_for(
        self, basis: BasisDistribution, mapping: Mapping
    ) -> MetricSet:
        """Metrics of the mapped distribution: Mest in closed form when the
        mapping is affine, else recomputed from mapped samples."""
        if isinstance(mapping, AffineMapping):
            return basis.metrics.remap(mapping)
        return self.estimator.estimate(mapping.apply_array(basis.samples))
