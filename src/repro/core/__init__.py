"""Jigsaw's core contribution: fingerprints, mappings, reuse, and jumps."""

from repro.core.adaptive import (
    AdaptiveBudget,
    fixed_budget_samples,
    grow_samples,
    saved_fraction,
)
from repro.core.basis import (
    BasisDistribution,
    BasisStore,
    MatchResult,
    StoreStats,
)
from repro.core.columnar import CandidateKeys, ColumnarStore
from repro.core.estimator import (
    Estimator,
    Histogram,
    MetricSet,
    merge_metric_sets,
)
from repro.core.explorer import (
    ExplorationResult,
    ExplorerStats,
    NaiveExplorationResult,
    NaiveExplorer,
    ParameterExplorer,
    PointResult,
)
from repro.core.parallel import (
    ParallelExplorer,
    ParallelStats,
    default_worker_count,
)
from repro.core.persist import (
    SNAPSHOT_VERSION,
    load_store,
    load_stores,
    save_store,
    save_stores,
    snapshot_info,
)
from repro.core.fingerprint import (
    Fingerprint,
    batch_normal_forms,
    batch_sid_orders,
    compute_fingerprint,
    fingerprint_from_values,
)
from repro.core.index import (
    ArrayIndex,
    FingerprintIndex,
    NormalizationIndex,
    SortedSIDIndex,
    make_index,
)
from repro.core.mapping import (
    AffineMapping,
    IdentityMappingFamily,
    LinearMappingFamily,
    Mapping,
    MappingFamily,
    MonotoneMappingFamily,
    PiecewiseLinearMapping,
    ScaleMappingFamily,
    ShiftMappingFamily,
    find_linear_mapping,
)
from repro.core.markov import (
    FrozenStateEstimator,
    JumpRecord,
    MarkovJumpRunner,
    MarkovRunResult,
    NaiveMarkovRunner,
)
from repro.core.search import (
    ExhaustiveSearch,
    HillClimbSearch,
    SearchResult,
    SearchTrace,
)
from repro.core.optimizer import (
    Constraint,
    GroupOutcome,
    Objective,
    OptimizeAnswer,
    Selector,
)
from repro.core.seeds import (
    DEFAULT_SEED_BANK,
    SeedBank,
    SeedSlice,
    derive_seed,
)
from repro.core.symbolic import MappedVariable, SampleVariable

__all__ = [
    "AdaptiveBudget",
    "fixed_budget_samples",
    "grow_samples",
    "saved_fraction",
    "BasisDistribution",
    "BasisStore",
    "MatchResult",
    "StoreStats",
    "CandidateKeys",
    "ColumnarStore",
    "Estimator",
    "Histogram",
    "MetricSet",
    "ExhaustiveSearch",
    "HillClimbSearch",
    "SearchResult",
    "SearchTrace",
    "merge_metric_sets",
    "ExplorationResult",
    "ExplorerStats",
    "NaiveExplorationResult",
    "NaiveExplorer",
    "ParameterExplorer",
    "ParallelExplorer",
    "ParallelStats",
    "default_worker_count",
    "SNAPSHOT_VERSION",
    "load_store",
    "load_stores",
    "save_store",
    "save_stores",
    "snapshot_info",
    "PointResult",
    "Fingerprint",
    "batch_normal_forms",
    "batch_sid_orders",
    "compute_fingerprint",
    "fingerprint_from_values",
    "ArrayIndex",
    "FingerprintIndex",
    "NormalizationIndex",
    "SortedSIDIndex",
    "make_index",
    "AffineMapping",
    "IdentityMappingFamily",
    "LinearMappingFamily",
    "Mapping",
    "MappingFamily",
    "MonotoneMappingFamily",
    "PiecewiseLinearMapping",
    "ScaleMappingFamily",
    "ShiftMappingFamily",
    "find_linear_mapping",
    "FrozenStateEstimator",
    "JumpRecord",
    "MarkovJumpRunner",
    "MarkovRunResult",
    "NaiveMarkovRunner",
    "Constraint",
    "GroupOutcome",
    "Objective",
    "OptimizeAnswer",
    "Selector",
    "DEFAULT_SEED_BANK",
    "SeedBank",
    "SeedSlice",
    "derive_seed",
    "MappedVariable",
    "SampleVariable",
]
