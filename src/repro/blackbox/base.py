"""Stochastic black-box function protocol (paper sections 2.1 and 3.1).

A *black box* (the paper's simplified notion of an MCDB VG-Function) is a
stochastic function of a parameter point that produces one scalar sample per
invocation.  Jigsaw only ever interacts with black boxes by sampling, and it
makes them deterministic by supplying the pseudorandom seed explicitly:
``sample(params, seed)`` must be a pure function of ``(params, seed)``.

Markov-process models (section 4) additionally carry per-instance state; they
implement :class:`MarkovModel`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

Params = Mapping[str, float]
ParamKey = Tuple[Tuple[str, float], ...]

Number = Union[int, float]


def param_key(params: Params) -> ParamKey:
    """Canonical hashable form of a parameter point (sorted name/value pairs)."""
    return tuple(sorted((str(k), float(v)) for k, v in params.items()))


class BlackBox(ABC):
    """A parameterized stochastic black-box function.

    Subclasses implement :meth:`_sample`; the public :meth:`sample` wrapper
    validates required parameters and counts invocations so benchmark
    harnesses can report machine-independent work.
    """

    #: Human-readable model name, e.g. ``"Demand"``.
    name: str = "BlackBox"

    #: Names of parameters the model requires in each ``params`` mapping.
    parameter_names: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self._invocations = 0

    @property
    def invocations(self) -> int:
        """Total number of samples drawn from this box since construction."""
        return self._invocations

    def reset_invocations(self) -> None:
        self._invocations = 0

    def component_boxes(self) -> Tuple["BlackBox", ...]:
        """Direct child boxes this box samples from when it is sampled.

        Composite boxes must override this so work accounting (invocation
        counters) can be snapshotted and rolled back transitively, e.g.
        when a batched query evaluation falls back to the scalar path.
        """
        return ()

    def _require_params(self, params: Params) -> None:
        """Validate required parameters once per point (not once per sample)."""
        for name in self.parameter_names:
            if name not in params:
                raise KeyError(
                    f"{self.name} requires parameter {name!r}; "
                    f"got {sorted(params)}"
                )

    def sample(self, params: Params, seed: int) -> float:
        """Draw one sample at parameter point ``params`` using ``seed``.

        Deterministic: identical ``(params, seed)`` always yields the same
        value.  Raises ``KeyError`` if a required parameter is missing.
        """
        self._require_params(params)
        self._invocations += 1
        return float(self._sample(params, seed))

    def sample_batch(
        self, params: Params, seeds: Union[Sequence[int], np.ndarray]
    ) -> np.ndarray:
        """Draw one sample per seed at a single parameter point.

        Entry ``k`` is bit-identical to ``sample(params, seeds[k])``; the
        built-in boxes override :meth:`_sample_batch` to produce the whole
        vector with array arithmetic over shared standard draws.  Parameters
        are validated once for the entire batch.
        """
        self._require_params(params)
        if (
            isinstance(seeds, np.ndarray)
            and seeds.dtype == np.uint64
            and seeds.ndim == 1
        ):
            seed_array = seeds
        else:
            seed_array = np.atleast_1d(np.asarray(seeds, dtype=np.uint64))
        values = self._sample_batch(params, seed_array)
        if values is None:
            values = np.array(
                [float(self._sample(params, int(seed))) for seed in seed_array],
                dtype=np.float64,
            )
        else:
            values = np.asarray(values, dtype=np.float64)
        self._invocations += int(seed_array.shape[0])
        return values

    @abstractmethod
    def _sample(self, params: Params, seed: int) -> float:
        """Model-specific sampling logic."""

    def _sample_batch(
        self, params: Params, seeds: np.ndarray
    ) -> Optional[np.ndarray]:
        """Vectorized sampling hook; return None to use the scalar loop.

        Overrides must be bit-identical to the scalar path: build each
        variate from the same standard draws with the same location-scale
        arithmetic, in the same order.
        """
        return None

    def __call__(self, params: Params, seed: int) -> float:
        return self.sample(params, seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class FunctionBlackBox(BlackBox):
    """Adapter turning a plain ``f(params, seed) -> float`` into a BlackBox.

    If ``func`` samples other registered boxes, pass them as
    ``component_boxes`` so their invocation counters participate in
    transitive snapshot/rollback (see :meth:`BlackBox.component_boxes`).
    """

    def __init__(
        self,
        func,
        name: str = "",
        parameter_names: Tuple[str, ...] = (),
        component_boxes: Tuple[BlackBox, ...] = (),
    ):
        super().__init__()
        self._func = func
        self.name = name or getattr(func, "__name__", "FunctionBlackBox")
        self.parameter_names = parameter_names
        self._component_boxes = tuple(component_boxes)

    def component_boxes(self) -> Tuple[BlackBox, ...]:
        return self._component_boxes

    def _sample(self, params: Params, seed: int) -> float:
        return self._func(params, seed)


class MarkovModel(ABC):
    """A per-instance Markov process (paper section 4).

    The process evolves scalar per-instance state through discrete steps; the
    chain's randomness at (instance, step) comes from an externally supplied
    seed, keeping every trajectory reproducible.  ``output`` projects a state
    to the observable value that fingerprints compare.
    """

    name: str = "MarkovModel"

    def __init__(self) -> None:
        self._step_invocations = 0

    @property
    def step_invocations(self) -> int:
        """Number of single-instance step evaluations performed."""
        return self._step_invocations

    def reset_invocations(self) -> None:
        self._step_invocations = 0

    @abstractmethod
    def initial_state(self) -> float:
        """State every instance starts from at step 0."""

    def step(self, state: float, step_index: int, seed: int) -> float:
        """Advance one instance one step; deterministic in all arguments."""
        self._step_invocations += 1
        return float(self._step(state, step_index, seed))

    def step_batch(
        self,
        states: np.ndarray,
        step_index: int,
        seeds: Union[Sequence[int], np.ndarray],
        draws: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance many instances through one step as arrays.

        Entry ``i`` is bit-identical to ``step(states[i], step_index,
        seeds[i])``.  ``draws`` optionally carries standard draws
        precomputed by :meth:`plan_step_draws` for a block of steps, letting
        runners amortize stream seeding across steps.
        """
        state_array = np.asarray(states, dtype=np.float64)
        if (
            isinstance(seeds, np.ndarray)
            and seeds.dtype == np.uint64
            and seeds.ndim == 1
        ):
            seed_array = seeds
        else:
            seed_array = np.atleast_1d(np.asarray(seeds, dtype=np.uint64))
        if state_array.shape[0] != seed_array.shape[0]:
            raise ValueError("states and seeds must have equal length")
        advanced = self._step_batch(state_array, step_index, seed_array, draws)
        if advanced is None:
            advanced = np.array(
                [
                    float(self._step(float(state), step_index, int(seed)))
                    for state, seed in zip(state_array, seed_array)
                ],
                dtype=np.float64,
            )
        else:
            advanced = np.asarray(advanced, dtype=np.float64)
        self._step_invocations += int(state_array.shape[0])
        return advanced

    @abstractmethod
    def _step(self, state: float, step_index: int, seed: int) -> float:
        """Model-specific transition logic."""

    def _step_batch(
        self,
        states: np.ndarray,
        step_index: int,
        seeds: np.ndarray,
        draws: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        """Vectorized transition hook; return None to use the scalar loop."""
        return None

    def run_block(
        self,
        states: np.ndarray,
        start_step: int,
        seed_matrix: np.ndarray,
        draws: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance all instances through a block of steps in one call.

        Returns the ``(steps, instances)`` trajectory; row ``t`` holds the
        states after step ``start_step + t``, chained exactly like repeated
        :meth:`step_batch` calls (bit-identical results, one Python call for
        the whole block instead of one per step).
        """
        current = np.asarray(states, dtype=np.float64)
        seed_matrix = np.asarray(seed_matrix, dtype=np.uint64)
        steps = int(seed_matrix.shape[0])
        trajectory = np.empty((steps, current.shape[0]), dtype=np.float64)
        for offset in range(steps):
            step_index = start_step + offset
            advanced = self._step_batch(
                current,
                step_index,
                seed_matrix[offset],
                None if draws is None else draws[offset],
            )
            if advanced is None:
                advanced = np.array(
                    [
                        float(self._step(float(state), step_index, int(seed)))
                        for state, seed in zip(current, seed_matrix[offset])
                    ],
                    dtype=np.float64,
                )
            else:
                advanced = np.asarray(advanced, dtype=np.float64)
            trajectory[offset] = advanced
            current = trajectory[offset]
        self._step_invocations += steps * int(current.shape[0])
        return trajectory

    def plan_step_draws(
        self, seed_matrix: np.ndarray
    ) -> Optional[np.ndarray]:
        """Precompute standard draws for a (steps, instances) seed block.

        Runners pass row ``t`` of the result as ``step_batch``'s ``draws``
        for the block's t-th step.  Returning None (the default) makes
        :meth:`step_batch` derive its own draws per step.
        """
        return None

    def output(self, state: float, step_index: int) -> float:
        """Observable value of a state (defaults to the state itself)."""
        return state

    def output_batch(
        self, states: np.ndarray, step_index: int
    ) -> np.ndarray:
        """Vectorized :meth:`output` (fingerprint construction path)."""
        state_array = np.asarray(states, dtype=np.float64)
        if type(self).output is MarkovModel.output:
            return state_array.copy()
        return np.array(
            [float(self.output(float(state), step_index)) for state in state_array],
            dtype=np.float64,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class BlackBoxRegistry:
    """Name → black box lookup used by the query-language binder."""

    def __init__(self) -> None:
        self._boxes: Dict[str, BlackBox] = {}

    def register(self, box: BlackBox, name: Optional[str] = None) -> None:
        key = (name or box.name).lower()
        if key in self._boxes:
            raise ValueError(f"black box {key!r} already registered")
        self._boxes[key] = box

    def lookup(self, name: str) -> BlackBox:
        try:
            return self._boxes[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._boxes)) or "(none)"
            raise KeyError(
                f"unknown black box {name!r}; registered: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._boxes

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._boxes))
