"""Shared benchmark configuration.

Benchmarks mirror the paper's evaluation (section 6) at a laptop-friendly
scale: the *ratios* between variants are the reproduced quantity, so sizes
are chosen to keep each benchmark's work well above timer noise while the
whole suite stays in minutes.  ``benchmarks/run_all.py`` regenerates the
full paper-style tables and series.
"""


def pytest_benchmark_update_machine_info(config, machine_info):
    machine_info["note"] = (
        "Jigsaw reproduction; compare ratios across variants, not absolute "
        "times"
    )
