"""Deterministic fault injection for the shard-supervision layer.

The supervision engine (:mod:`repro.core.supervise`) consults the *active
fault plan* at two seams:

* **Result collection** — after a shard attempt produces its value (in a
  fork-pool worker or in-process), the supervisor calls
  :meth:`FaultPlan.intercept` with the shard index and 1-based attempt
  number.  A matching fault then raises:

  - ``crash``      → :class:`InjectedCrash`, classified exactly like a
    worker that died before shipping its result (broken process pool);
  - ``hang``       → :class:`InjectedHang`, classified like a worker that
    never responds: the attempt is parked with no completion and only its
    supervision deadline can end it;
  - ``interrupt``  → :class:`KeyboardInterrupt`, as if the user pressed
    Ctrl-C while the supervisor was collecting that shard;
  - ``error``      → an arbitrary application exception (never retried —
    deterministic application errors propagate, matching unfaulted
    semantics).

* **Checkpoint writes** — after :class:`repro.core.persist.SweepCheckpoint`
  persists a shard record, it calls :func:`checkpoint_written`; a plan
  built with ``corrupt_checkpoint_after=N`` flips one byte in the
  checkpoint's first array file after the ``N``-th write, so resume paths
  can prove they detect CRC damage and recompute instead of loading
  garbage.

Faults are addressed by ``(shard_index, attempt)`` and trigger on every
supervised run that reaches that address unless limited with ``times``.
Because the interception happens on the supervisor (parent) side, plans
work identically for in-process execution and real fork pools — no real
signals, no real clocks, and the shard's deterministic work is simply
discarded and recomputed, which is precisely the recovery path under test.

The plan itself never changes *what* a sweep computes: supervision
recomputes every faulted shard, and the replay-merge output stays
bit-identical to an undisturbed serial run — the chaos suite
(``tests/integration/test_fault_tolerance.py``) pins exactly that.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

FAULT_KINDS = ("crash", "hang", "error", "interrupt")


class InjectedCrash(Exception):
    """Simulates a worker that died before shipping its shard result."""


class InjectedHang(Exception):
    """Simulates a worker that never responds (consumed by the supervisor:
    the attempt is parked until its deadline expires — it never surfaces
    to callers)."""


@dataclass(frozen=True)
class Fault:
    """One injectable fault.

    ``kind`` is one of :data:`FAULT_KINDS`; ``times`` bounds how many
    times the fault triggers (``None`` = every time its address is
    reached); ``error`` carries the exception instance for ``error``
    faults.
    """

    kind: str
    times: Optional[int] = None
    error: Optional[BaseException] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError("times must be positive (or None for unlimited)")
        if self.kind == "error" and self.error is None:
            raise ValueError("error faults need an exception instance")


FaultSpec = Union[Fault, str, BaseException]


def _coerce(spec: FaultSpec) -> Fault:
    if isinstance(spec, Fault):
        return spec
    if isinstance(spec, str):
        return Fault(spec)
    if isinstance(spec, BaseException):
        return Fault("error", error=spec)
    raise TypeError(f"cannot interpret fault spec {spec!r}")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults, addressed by (shard, attempt).

    ``plan`` maps ``(shard_index, attempt)`` to a fault spec — a
    :class:`Fault`, a kind string (``"crash"``/``"hang"``/...), or an
    exception instance (an ``error`` fault).  ``triggered`` records every
    fault that actually fired, in order, for test assertions.
    """

    plan: Mapping[Tuple[int, int], FaultSpec] = field(default_factory=dict)
    corrupt_checkpoint_after: Optional[int] = None
    triggered: List[Tuple[int, int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._faults: Dict[Tuple[int, int], Fault] = {
            (int(index), int(attempt)): _coerce(spec)
            for (index, attempt), spec in dict(self.plan).items()
        }
        self._fired: Dict[Tuple[int, int], int] = {}
        self.checkpoints_written = 0
        self.checkpoints_corrupted = 0

    @classmethod
    def fail_n_then_succeed(
        cls, shard_index: int, failures: int, kind: str = "crash"
    ) -> "FaultPlan":
        """Fail attempts ``1..failures`` of one shard, then succeed."""
        return cls(
            {
                (shard_index, attempt): Fault(kind)
                for attempt in range(1, failures + 1)
            }
        )

    def intercept(self, shard_index: int, attempt: int) -> None:
        """Raise the scheduled fault for this address, if any.

        Called by the supervisor after a shard attempt produced its value
        and before the value is accepted — so a ``crash`` fault discards
        genuinely computed work, exactly like a real worker death between
        computation and result shipping.
        """
        key = (int(shard_index), int(attempt))
        fault = self._faults.get(key)
        if fault is None:
            return
        count = self._fired.get(key, 0)
        if fault.times is not None and count >= fault.times:
            return
        self._fired[key] = count + 1
        self.triggered.append((key[0], key[1], fault.kind))
        if fault.kind == "crash":
            raise InjectedCrash(
                f"injected crash: shard {key[0]} attempt {key[1]}"
            )
        if fault.kind == "hang":
            raise InjectedHang(
                f"injected hang: shard {key[0]} attempt {key[1]}"
            )
        if fault.kind == "interrupt":
            raise KeyboardInterrupt
        assert fault.error is not None  # guaranteed by Fault validation
        raise fault.error

    def checkpoint_written(self, path: str) -> None:
        """Checkpoint-write hook: corrupt the snapshot when scheduled."""
        self.checkpoints_written += 1
        if (
            self.corrupt_checkpoint_after is not None
            and self.checkpoints_written == self.corrupt_checkpoint_after
        ):
            corrupt_array_file(path)
            self.checkpoints_corrupted += 1


#: The active plan; installed with :func:`use_faults`, read by the
#: supervisor through :func:`active_plan`.  Parent-process state only —
#: interception happens on the supervisor side, never inside workers.
_ACTIVE: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The currently installed fault plan (None outside fault tests)."""
    return _ACTIVE


@contextmanager
def use_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped installation of a fault plan (restores the previous one)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def checkpoint_written(path: str) -> None:
    """Notify the active plan (if any) that a checkpoint was persisted."""
    if _ACTIVE is not None:
        _ACTIVE.checkpoint_written(path)


def corrupt_array_file(snapshot_path: str) -> str:
    """Flip one byte in a snapshot directory's first ``.npy`` file.

    Damages the array body (past the .npy header) so the snapshot's CRC
    guard must catch it; returns the corrupted file's path.
    """
    names = sorted(
        name
        for name in os.listdir(snapshot_path)
        if name.endswith(".npy")
    )
    if not names:
        raise FileNotFoundError(
            f"no array files to corrupt under {snapshot_path!r}"
        )
    target = os.path.join(snapshot_path, names[0])
    with open(target, "r+b") as handle:
        raw = handle.read()
        position = min(len(raw) - 1, 128)
        handle.seek(position)
        handle.write(bytes([raw[position] ^ 0xFF]))
    return target
