"""The serving daemon end to end: parity, batching, drain, signals.

The acceptance contract of the serve tentpole:

* **Parity** — a serial client stream against the daemon returns
  *bitwise* the responses an in-process ``Session.open`` on the same
  snapshot returns for the same requests (mappings, metrics, per-probe
  counters, mid-stream stats included);
* **Concurrency** — under concurrent clients, every probe/refine
  response is still bitwise the in-process answer, and the final
  deterministic counters equal the serial run's (mid-stream stats
  snapshots legitimately depend on interleaving and are exempt);
* **Drain** — requests admitted before shutdown are all answered;
  SIGTERM exits 0 and flushes ``--save-store`` atomically; Ctrl-C
  (SIGINT) exits 130, preserving the CLI interrupt contract.
"""

import os
import signal
import subprocess
import sys

import pytest

from repro.api import (
    ErrorResponse,
    EstimateRequest,
    MatchRequest,
    Session,
    ShutdownRequest,
    StatsRequest,
)
from repro.serve import (
    BasisServer,
    ServeClient,
    build_fixture_session,
    build_request_stream,
    expected_responses,
    run_open_loop,
)

REPO_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


@pytest.fixture
def snapshot(tmp_path):
    path = str(tmp_path / "snap")
    build_fixture_session(bases=10, seed=99).save(path)
    return path


@pytest.fixture
def server(snapshot):
    instance = BasisServer(Session.open(snapshot)).start()
    yield instance
    instance.stop()


class TestSerialParity:
    """The acceptance parity test: wire answers == in-process answers."""

    def test_serial_stream_is_bitwise_in_process(self, snapshot, server):
        reference = Session.open(snapshot)
        requests = build_request_stream(reference, 150, seed=5)
        want = expected_responses(reference, requests)
        host, port = server.address
        with ServeClient(host, port) as client:
            got = [client.request(request) for request in requests]
        # Dataclass equality is field-by-field; floats crossed the wire
        # as hex, so == here is bitwise for every mapping parameter,
        # metric, and counter — mid-stream stats included (serial
        # stream, so the counter sequence is the in-process one).
        assert got == want

    def test_convenience_methods_match_session(self, snapshot, server):
        reference = Session.open(snapshot)
        base = reference.store().bases[0]
        probe = tuple(2.0 * v + 1.0 for v in base.fingerprint.values)
        host, port = server.address
        with ServeClient(host, port) as client:
            wire = client.estimate(probe)
        in_process = reference.estimate(
            EstimateRequest(fingerprint=probe)
        )
        assert wire.basis_id == in_process.basis_id
        assert wire.mapping == in_process.mapping
        assert wire.metrics == in_process.metrics


class TestConcurrentParity:
    def test_open_loop_probes_are_bitwise_with_equal_counters(
        self, snapshot, server
    ):
        reference = Session.open(snapshot)
        requests = build_request_stream(reference, 300, seed=11)
        want = expected_responses(Session.open(snapshot), requests)
        host, port = server.address
        result = run_open_loop(
            host, port, requests, rate=3000.0, concurrency=4, seed=2
        )
        by_id = {
            response.request_id: response
            for response in result.responses
            if response.request_id is not None
        }
        stats_positions = {
            request.request_id
            for request in requests
            if isinstance(request, StatsRequest)
        }
        for expected in want:
            if expected.request_id in stats_positions:
                continue  # point-in-time snapshots; checked at the end
            assert by_id[expected.request_id] == expected
        # Final counters: ask the daemon after the run completes.
        with ServeClient(host, port) as client:
            final = client.stats()
        serial = Session.open(snapshot)
        for request in requests:
            serial.handle(request)
        assert final.counters == serial.stats().counters
        assert final.bases == serial.stats().bases

    def test_errors_do_not_poison_the_stream(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            bad = client.request(
                MatchRequest(fingerprint=(1.0,), store="nope")
            )
            assert isinstance(bad, ErrorResponse)
            assert bad.code == "ApiError"
            # The connection keeps serving after an error response.
            follow_up = client.stats()
            assert follow_up.bases == {"default": 10}


class TestDrain:
    def test_shutdown_request_drains_and_answers_everything(
        self, snapshot
    ):
        server = BasisServer(Session.open(snapshot)).start()
        host, port = server.address
        reference = Session.open(snapshot)
        requests = build_request_stream(reference, 40, seed=3)
        with ServeClient(host, port) as client:
            for request in requests:
                client.send(request)
            # Pipelined behind everything else; answered in order, so
            # every admitted request is served before the ack arrives.
            client.send(ShutdownRequest(request_id=999))
            responses = [client.recv() for _ in range(len(requests) + 1)]
        ack = responses[-1]
        assert ack.kind == "shutdown"
        assert ack.request_id == 999
        server.shutdown_requested.wait(timeout=10)
        server.stop()
        assert server.requests_served == len(requests) + 1

    def test_stop_without_drain_still_saves(self, snapshot, tmp_path):
        out = str(tmp_path / "flushed")
        server = BasisServer(
            Session.open(snapshot), save_path=out
        ).start()
        server.stop(drain=False)
        assert Session.open(out).basis_count() == 10


def _boot_daemon(snapshot, tmp_path, extra_args=()):
    """Start ``python -m repro serve`` and parse its SERVE_READY line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--store",
            snapshot,
            "--port",
            "0",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = process.stdout.readline().strip()
    assert line.startswith("SERVE_READY "), (
        line,
        process.stderr.read() if process.poll() is not None else "",
    )
    fields = dict(
        part.split("=", 1) for part in line.split()[1:]
    )
    return process, fields["host"], int(fields["port"]), fields


class TestSignals:
    def test_sigterm_drains_flushes_and_exits_0(self, snapshot, tmp_path):
        out = str(tmp_path / "flushed")
        process, host, port, _ = _boot_daemon(
            snapshot, tmp_path, ("--save-store", out)
        )
        try:
            reference = Session.open(snapshot)
            requests = build_request_stream(reference, 30, seed=21)
            with ServeClient(host, port) as client:
                for request in requests:
                    client.send(request)
                process.send_signal(signal.SIGTERM)
                # Everything already sent must still be answered.
                responses = [client.recv() for _ in requests]
            assert len(responses) == len(requests)
            code = process.wait(timeout=30)
            assert code == 0
            # The drain flushed the (refined) stores atomically.
            flushed = Session.open(out)
            assert flushed.basis_count() == 10
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

    def test_sigint_exits_130(self, snapshot, tmp_path):
        process, host, port, _ = _boot_daemon(snapshot, tmp_path)
        try:
            with ServeClient(host, port) as client:
                assert client.stats().bases == {"default": 10}
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30) == 130
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

    def test_ready_line_reports_basis_count(self, snapshot, tmp_path):
        process, host, port, fields = _boot_daemon(snapshot, tmp_path)
        try:
            assert fields["bases"] == "10"
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
