"""Pluggable compute backends for the sampling and matching kernels.

The reproduction has exactly two dense hot paths — the standard-draw
matrices behind batch sampling (:mod:`repro.blackbox.fastrng`) and the
per-size fingerprint matrices behind columnar FindMatch
(:mod:`repro.core.mapping` / :mod:`repro.core.fingerprint`) — and both
are the shapes JIT/GPU accelerators want.  This module is the seam that
lets an accelerated implementation slide under them without ever
touching the bitwise contract every CI gate pins:

* :class:`ComputeBackend` names the four kernels (``draw_block``,
  ``affine_validate``, ``sid_orders``, ``normal_forms``) and wraps every
  non-reference implementation in first-N self-verification against the
  numpy reference — the same cross-check/degrade discipline as
  ``VERIFY_LOOKUPS`` in :mod:`repro.core.basis` and the fastrng
  stream-replay self-test, but *instance-scoped*: one lying backend
  degrades itself (with a ``RuntimeWarning``, exactly once per kernel),
  never the process, and ``describe()`` makes the degrade visible.
* A tiny registry maps names to factories.  ``numpy`` is always
  registered and always available; ``numba`` is registered but only
  available when the optional dependency imports
  (:mod:`repro.core._backend_numba`).  A ``cupy`` device backend would
  register the same way — the kernel signatures are plain arrays in,
  plain arrays out, so a device implementation only has to move data.
* Selection is explicit and typed: :func:`create_backend` refuses
  unknown or unavailable names with :class:`~repro.errors.BackendError`
  instead of silently running numpy.

Degrade semantics: a degraded kernel answers through the numpy
reference from the first detected disagreement onward, so callers
always get reference bits — an accelerator pays with speed, never with
changed answers.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, NamedTuple, Optional, Tuple, Union

import numpy as np

from repro.errors import BackendError

#: Calls per (instance, kernel) cross-checked against the numpy
#: reference before an accelerated implementation is trusted outright.
#: Mirrors ``repro.core.basis.VERIFY_LOOKUPS``.
VERIFY_CALLS = 4

KERNELS = ("draw_block", "affine_validate", "sid_orders", "normal_forms")


# ---------------------------------------------------------------------------
# Numpy reference kernels.  These are the semantics every backend must
# reproduce bitwise; accelerated implementations are verified against
# them and degraded to them on any disagreement.


def _reference_draw_block(
    seeds: np.ndarray, kinds: Tuple[str, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    """Accept-path standard draws; see ``fastrng._vector_draw_block``."""
    from repro.blackbox import fastrng

    return fastrng._vector_draw_block(seeds, kinds)


def _reference_affine_validate(
    sources: np.ndarray,
    alpha: np.ndarray,
    beta: np.ndarray,
    target: np.ndarray,
    tol: float,
) -> np.ndarray:
    """Row-wise affine validation; see ``mapping._rows_affine_valid``."""
    deviation = np.abs(alpha[:, None] * sources + beta[:, None] - target)
    return (deviation <= tol).all(axis=1)


def _reference_sid_orders(matrix: np.ndarray) -> np.ndarray:
    """Row-wise stable argsort (the SID-order key kernel)."""
    return np.argsort(matrix, axis=1, kind="stable")


def _reference_normal_forms(matrix: np.ndarray, rel_tol: float):
    """Normal-form key components; see ``fingerprint._normal_forms_matrix``."""
    from repro.core.fingerprint import _normal_forms_matrix

    return _normal_forms_matrix(matrix, rel_tol)


_REFERENCE = {
    "draw_block": _reference_draw_block,
    "affine_validate": _reference_affine_validate,
    "sid_orders": _reference_sid_orders,
    "normal_forms": _reference_normal_forms,
}


def _results_equal(left, right) -> bool:
    """Bitwise equality over arrays and (nested) tuples of arrays."""
    if isinstance(left, tuple) or isinstance(right, tuple):
        if not (isinstance(left, tuple) and isinstance(right, tuple)):
            return False
        if len(left) != len(right):
            return False
        return all(_results_equal(a, b) for a, b in zip(left, right))
    left = np.asarray(left)
    right = np.asarray(right)
    return left.shape == right.shape and bool(np.array_equal(left, right))


class ComputeBackend:
    """Base class: kernel hooks plus instance-scoped self-verification.

    Subclasses override the ``_<kernel>`` hooks they accelerate and
    inherit the numpy reference for the rest.  Overridden kernels are
    cross-checked against the reference for their first
    :data:`VERIFY_CALLS` calls on *this instance*; a disagreement emits
    one ``RuntimeWarning`` and permanently degrades that kernel (on
    this instance only) to the reference implementation.

    The instance also carries the fastrng fast-path self-test state
    (``_fast_path_ok`` / ``_fast_path_warned``) that used to live in a
    module global — see :func:`repro.blackbox.fastrng.fast_path_status`.
    """

    name = "abstract"
    #: The reference backend never verifies against itself; its
    #: correctness story is the existing scalar cross-checks.
    is_reference = False

    def __init__(self) -> None:
        self._degraded: Dict[str, bool] = {}
        self._verify_remaining: Dict[str, int] = {}
        for kernel in KERNELS:
            overridden = getattr(type(self), "_" + kernel) is not getattr(
                ComputeBackend, "_" + kernel
            )
            self._verify_remaining[kernel] = (
                VERIFY_CALLS if overridden and not self.is_reference else 0
            )
        #: fastrng stream-replay self-test outcome for this instance:
        #: None = not yet run, True/False afterwards.
        self._fast_path_ok: Optional[bool] = None
        self._fast_path_warned = False

    # -- kernel hooks (override these) --------------------------------------

    def _draw_block(self, seeds, kinds):
        return _reference_draw_block(seeds, kinds)

    def _affine_validate(self, sources, alpha, beta, target, tol):
        return _reference_affine_validate(sources, alpha, beta, target, tol)

    def _sid_orders(self, matrix):
        return _reference_sid_orders(matrix)

    def _normal_forms(self, matrix, rel_tol):
        return _reference_normal_forms(matrix, rel_tol)

    # -- verified public kernels --------------------------------------------

    def draw_block(
        self, seeds: np.ndarray, kinds: Tuple[str, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Accept-path standard draws ``(out, ok)`` for a seed block.

        ``out`` is the ``(len(seeds), len(kinds))`` draw matrix under the
        single-raw-output-per-draw assumption; ``ok`` flags the lanes for
        which that assumption held (the caller patches the rest through
        the scalar generator).
        """
        return self._checked("draw_block", (seeds, kinds))

    def affine_validate(
        self,
        sources: np.ndarray,
        alpha: np.ndarray,
        beta: np.ndarray,
        target: np.ndarray,
        tol: float,
    ) -> np.ndarray:
        """Row-wise ``|alpha*source + beta - target| <= tol`` accept mask."""
        return self._checked(
            "affine_validate", (sources, alpha, beta, target, tol)
        )

    def sid_orders(self, matrix: np.ndarray) -> np.ndarray:
        """Row-wise stable argsort (ascending SID-order keys)."""
        return self._checked("sid_orders", (matrix,))

    def normal_forms(self, matrix: np.ndarray, rel_tol: float):
        """Normal-form components ``(has_pair, position, forward,
        reflected)`` for a stack of same-size fingerprints."""
        return self._checked("normal_forms", (matrix, rel_tol))

    # -- verification machinery ---------------------------------------------

    def _checked(self, kernel: str, args: tuple):
        if self._degraded.get(kernel):
            return _REFERENCE[kernel](*args)
        result = getattr(self, "_" + kernel)(*args)
        remaining = self._verify_remaining[kernel]
        if remaining > 0:
            self._verify_remaining[kernel] = remaining - 1
            expected = _REFERENCE[kernel](*args)
            if not _results_equal(result, expected):
                self._degrade(kernel)
                return expected
        return result

    def _degrade(self, kernel: str) -> None:
        """Permanently route one kernel through the reference (warn once)."""
        if not self._degraded.get(kernel):
            self._degraded[kernel] = True
            warnings.warn(
                f"compute backend {self.name!r} kernel {kernel!r} disagreed "
                f"with the numpy reference; degrading this backend instance "
                f"to the reference implementation for {kernel!r}",
                RuntimeWarning,
            )

    def degraded_kernels(self) -> Tuple[str, ...]:
        """Kernels this instance has degraded to the reference, sorted."""
        return tuple(sorted(self._degraded))

    def reset_verification(self) -> None:
        """Re-arm self-verification and the fast-path self-test.

        Test-only: production code never un-degrades a backend.
        """
        self._degraded.clear()
        for kernel in KERNELS:
            overridden = getattr(type(self), "_" + kernel) is not getattr(
                ComputeBackend, "_" + kernel
            )
            self._verify_remaining[kernel] = (
                VERIFY_CALLS if overridden and not self.is_reference else 0
            )
        self._fast_path_ok = None
        self._fast_path_warned = False

    def describe(self) -> str:
        """Human/store-info descriptor, e.g. ``numba[degraded:draw_block]``.

        A clean backend is just its name; degraded kernels and a failed
        fastrng fast-path self-test are appended so a silently-degraded
        run is visible in ``repro store info`` and ``StatsResponse``.
        """
        tags = []
        if self._degraded:
            tags.append("degraded:" + ",".join(sorted(self._degraded)))
        if self._fast_path_ok is False:
            tags.append("scalar-draws")
        if tags:
            return f"{self.name}[{';'.join(tags)}]"
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class NumpyBackend(ComputeBackend):
    """The always-on default: the existing vectorized numpy kernels."""

    name = "numpy"
    is_reference = True


class NumbaBackend(ComputeBackend):
    """Optional JIT path over the integer/float kernels numba compiles
    bitwise-faithfully (no fastmath, so no FMA contraction; uint64
    arithmetic wraps exactly as numpy's).

    Only ``draw_block`` and ``affine_validate`` are overridden: the
    PCG64 stream replay and the dense affine validation are pure
    integer/multiply-add loops, while stable argsort and decimal
    rounding (the key kernels) have numpy-internal semantics a JIT
    cannot be trusted to reproduce bit-for-bit — those inherit the
    reference.  Self-verification covers the overrides regardless.
    """

    name = "numba"

    def _draw_block(self, seeds, kinds):
        from repro.core import _backend_numba

        return _backend_numba.draw_block(seeds, kinds)

    def _affine_validate(self, sources, alpha, beta, target, tol):
        from repro.core import _backend_numba

        return _backend_numba.affine_validate(
            sources, alpha, beta, target, tol
        )


# ---------------------------------------------------------------------------
# Registry


class _BackendSpec(NamedTuple):
    factory: Callable[[], ComputeBackend]
    available: Callable[[], bool]
    requires: str


_REGISTRY: Dict[str, _BackendSpec] = {}


def register_backend(
    name: str,
    factory: Callable[[], ComputeBackend],
    available: Optional[Callable[[], bool]] = None,
    requires: str = "",
) -> None:
    """Register a backend factory under a selection name.

    ``available`` is probed at selection time (so registration itself
    never imports an optional dependency); ``requires`` names the
    missing package for the :class:`BackendError` message.
    """
    _REGISTRY[name] = _BackendSpec(
        factory=factory,
        available=available or (lambda: True),
        requires=requires,
    )


def backend_names() -> Tuple[str, ...]:
    """Every registered backend name, registration order."""
    return tuple(_REGISTRY)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its dependencies import."""
    spec = _REGISTRY.get(name)
    if spec is None:
        return False
    try:
        return bool(spec.available())
    except Exception:
        return False


def create_backend(name: str) -> ComputeBackend:
    """Build a fresh backend instance by name (typed refusal, never a
    silent numpy fallback)."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise BackendError(
            f"unknown compute backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}"
        )
    if not backend_available(name):
        suffix = (
            f" (requires {spec.requires!r}, which is not importable)"
            if spec.requires
            else ""
        )
        raise BackendError(
            f"compute backend {name!r} is not available on this host{suffix}"
        )
    return spec.factory()


def _numba_available() -> bool:
    from repro.core import _backend_numba

    return _backend_numba.available()


register_backend("numpy", NumpyBackend)
register_backend(
    "numba", NumbaBackend, available=_numba_available, requires="numba"
)


# ---------------------------------------------------------------------------
# Process-active backend

_ACTIVE: Optional[ComputeBackend] = None

BackendArg = Union[None, str, ComputeBackend]


def active_backend() -> ComputeBackend:
    """The process-wide default backend (numpy until selected otherwise)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = NumpyBackend()
    return _ACTIVE


def use_backend(backend: Union[str, ComputeBackend]) -> ComputeBackend:
    """Select the process-wide default backend; returns the instance.

    Forked sweep workers inherit the selection (module state survives
    fork) and :func:`repro.blackbox.draws.initialize_worker` re-selects
    it explicitly, so shards run the same backend as their parent.
    """
    global _ACTIVE
    if isinstance(backend, str):
        backend = create_backend(backend)
    elif not isinstance(backend, ComputeBackend):
        raise BackendError(
            f"expected a backend name or ComputeBackend instance, got "
            f"{type(backend).__name__}"
        )
    _ACTIVE = backend
    return backend


def resolve_backend(backend: BackendArg = None) -> ComputeBackend:
    """Coerce a backend argument to an instance.

    ``None`` resolves to the process-active backend; a name builds a
    *fresh* instance (so a store constructed with ``backend="numba"``
    gets store-scoped verification/degrade state); an instance passes
    through.
    """
    if backend is None:
        return active_backend()
    if isinstance(backend, ComputeBackend):
        return backend
    if isinstance(backend, str):
        return create_backend(backend)
    raise BackendError(
        f"expected a backend name or ComputeBackend instance, got "
        f"{type(backend).__name__}"
    )
