"""Unit tests for the query-language parser."""

import pytest

from repro.errors import ParseError
from repro.lang.ast import (
    BinaryNode,
    CallNode,
    CaseNode,
    ChainSpec,
    Identifier,
    NumberLit,
    ParamNode,
    RangeSpec,
    SetSpec,
    UnaryNode,
)
from repro.lang.parser import parse_expression, parse_script


class TestDeclare:
    def test_range(self):
        script = parse_script(
            "DECLARE PARAMETER @week AS RANGE 0 TO 52 STEP BY 4;"
        )
        declare = script.declares()[0]
        assert declare.name == "week"
        assert declare.spec == RangeSpec(0.0, 52.0, 4.0)

    def test_negative_range_bounds(self):
        script = parse_script(
            "DECLARE PARAMETER @x AS RANGE -10 TO -2 STEP BY 2;"
        )
        assert script.declares()[0].spec == RangeSpec(-10.0, -2.0, 2.0)

    def test_set(self):
        script = parse_script("DECLARE PARAMETER @f AS SET (12, 36, 44);")
        assert script.declares()[0].spec == SetSpec((12.0, 36.0, 44.0))

    def test_chain(self):
        script = parse_script(
            "DECLARE PARAMETER @release AS CHAIN release_week "
            "FROM @current_week : @current_week - 1 INITIAL VALUE 52;"
        )
        spec = script.declares()[0].spec
        assert isinstance(spec, ChainSpec)
        assert spec.source_column == "release_week"
        assert spec.driver == "current_week"
        assert spec.initial_value == 52.0

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_script("DECLARE PARAMETER @x AS RANGE 0 TO 1 STEP BY 1")

    def test_bad_spec(self):
        with pytest.raises(ParseError):
            parse_script("DECLARE PARAMETER @x AS GRID 1 2 3;")


class TestSelect:
    def test_aliases(self):
        script = parse_script("SELECT 1 AS one, two INTO results;")
        select = script.selects()[0]
        assert select.items[0].alias == "one"
        # A bare identifier aliases to itself.
        assert select.items[1].alias == "two"
        assert select.into == "results"

    def test_unaliased_expression(self):
        script = parse_script("SELECT 1 + 2;")
        assert script.selects()[0].items[0].alias is None

    def test_nested_from(self):
        script = parse_script(
            "SELECT a FROM (SELECT 1 AS a) INTO results;"
        )
        select = script.selects()[0]
        assert select.subquery is not None
        assert select.subquery.items[0].alias == "a"

    def test_figure1_select(self):
        script = parse_script(
            """
            SELECT DemandModel(@current_week, @feature_release) AS demand,
                   CapacityModel(@current_week, @purchase1, @purchase2)
                       AS capacity,
                   CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
            INTO results;
            """
        )
        select = script.selects()[0]
        assert [i.alias for i in select.items] == [
            "demand",
            "capacity",
            "overload",
        ]
        assert isinstance(select.items[2].expression, CaseNode)


class TestOptimize:
    def test_figure1_optimize(self):
        script = parse_script(
            """
            OPTIMIZE SELECT @feature_release, @purchase1, @purchase2
            FROM results
            WHERE MAX(EXPECT overload) < 0.01
            GROUP BY feature_release, purchase1, purchase2
            FOR MAX @purchase1, MAX @purchase2;
            """
        )
        optimize = script.optimizes()[0]
        assert optimize.select_params == (
            "feature_release",
            "purchase1",
            "purchase2",
        )
        assert optimize.source_table == "results"
        constraint = optimize.constraints[0]
        assert (constraint.aggregate, constraint.metric) == ("max", "expect")
        assert (constraint.column, constraint.op) == ("overload", "<")
        assert constraint.threshold == 0.01
        assert [o.direction for o in optimize.objectives] == ["max", "max"]

    def test_multiple_constraints(self):
        script = parse_script(
            """
            OPTIMIZE SELECT @p FROM results
            WHERE MAX(EXPECT overload) < 0.01
              AND MIN(STDDEV demand) >= 0.5
            GROUP BY p FOR MIN @p;
            """
        )
        assert len(script.optimizes()[0].constraints) == 2

    def test_no_where_clause(self):
        script = parse_script(
            "OPTIMIZE SELECT @p FROM results GROUP BY p FOR MAX @p;"
        )
        assert script.optimizes()[0].constraints == ()

    def test_bad_metric(self):
        with pytest.raises(ParseError):
            parse_script(
                "OPTIMIZE SELECT @p FROM r WHERE MAX(SKEW x) < 1 "
                "GROUP BY p FOR MAX @p;"
            )

    def test_missing_objective(self):
        with pytest.raises(ParseError):
            parse_script("OPTIMIZE SELECT @p FROM r GROUP BY p FOR;")


class TestGraph:
    def test_figure2_graph(self):
        script = parse_script(
            """
            GRAPH OVER @current_week
            EXPECT overload WITH bold red,
            EXPECT capacity WITH blue y2,
            EXPECT_STDDEV demand WITH orange y2;
            """
        )
        graph = script.graphs()[0]
        assert graph.x_parameter == "current_week"
        assert len(graph.series) == 3
        assert graph.series[0].metric == "expect"
        assert graph.series[0].style == ("bold", "red")
        assert graph.series[2].metric == "expect_stddev"

    def test_series_without_style(self):
        script = parse_script("GRAPH OVER @p EXPECT x;")
        assert script.graphs()[0].series[0].style == ()


class TestExpressions:
    def test_precedence_multiplication_over_addition(self):
        expression = parse_expression("1 + 2 * 3")
        assert isinstance(expression, BinaryNode)
        assert expression.op == "+"
        assert isinstance(expression.right, BinaryNode)
        assert expression.right.op == "*"

    def test_parentheses_override(self):
        expression = parse_expression("(1 + 2) * 3")
        assert expression.op == "*"

    def test_comparison_binds_looser_than_arithmetic(self):
        expression = parse_expression("a + 1 < b * 2")
        assert expression.op == "<"

    def test_logical_operators(self):
        expression = parse_expression("a < 1 and b > 2 or not c = 3")
        assert expression.op == "or"

    def test_unary_minus(self):
        expression = parse_expression("-x + 1")
        assert isinstance(expression.left, UnaryNode)

    def test_call_with_params(self):
        expression = parse_expression("Model(@a, b, 1.5)")
        assert isinstance(expression, CallNode)
        assert isinstance(expression.arguments[0], ParamNode)
        assert isinstance(expression.arguments[1], Identifier)
        assert isinstance(expression.arguments[2], NumberLit)

    def test_call_no_arguments(self):
        expression = parse_expression("Model()")
        assert expression.arguments == ()

    def test_case_expression(self):
        expression = parse_expression(
            "CASE WHEN a < b THEN 1 ELSE 0 END"
        )
        assert isinstance(expression, CaseNode)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra")

    def test_unclosed_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("(1 + 2")

    def test_empty_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_script("42;")


class TestScriptShape:
    def test_full_figure1_script(self):
        script = parse_script(
            """
            -- DEFINITION --
            DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
            DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
            DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
            DECLARE PARAMETER @feature_release AS SET (12,36,44);
            SELECT DemandModel(@current_week, @feature_release) AS demand,
                   CapacityModel(@current_week, @purchase1, @purchase2)
                       AS capacity,
                   CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
            INTO results;
            -- BATCH MODE --
            OPTIMIZE SELECT @feature_release, @purchase1, @purchase2
            FROM results
            WHERE MAX(EXPECT overload) < 0.01
            GROUP BY feature_release, purchase1, purchase2
            FOR MAX @purchase1, MAX @purchase2;
            """
        )
        assert len(script.declares()) == 4
        assert len(script.selects()) == 1
        assert len(script.optimizes()) == 1
