"""Smoke + shape tests for the figure-reproduction runners.

These drive the same code paths as ``benchmarks/run_all.py`` at tiny sizes
so a plain ``pytest tests/`` run validates every experiment harness without
benchmark-scale wall clock.

Two deterministic layers replace what used to be wall-clock assertions:

* **Golden-figure regression** — each figure's deterministic data points
  (``FigureResult.data``) are compared *exactly* against the committed
  files under ``benchmarks/golden/`` (refresh procedure:
  ``benchmarks/refresh_golden.py``; see ROADMAP subsystem notes).
* **Work-counter shapes** — cost claims ("the array scan gets slower with
  more bases") are asserted on the deterministic cost drivers
  (candidates tested per lookup) rather than on milliseconds, and the
  timing *plumbing* is exercised under an injected
  :class:`repro.util.timing.FakeClock`, making every assertion exact.
"""

import importlib.util
import json
import os

import pytest

from repro.bench.figures import (
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
)
from repro.bench.workloads import capacity_workload, synth_basis_workload
from repro.core import BasisStore, ParameterExplorer
from repro.util.timing import FakeClock, use_clock

_BENCHMARKS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
)


def _load_refresh_golden():
    """The golden refresh/check script, shared so the runner registry and
    measurement logic cannot drift between CI's check and this suite."""
    spec = importlib.util.spec_from_file_location(
        "_refresh_golden_under_test",
        os.path.join(_BENCHMARKS_DIR, "refresh_golden.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


refresh_golden = _load_refresh_golden()


class TestFig7:
    def test_table_renders_and_shapes(self):
        text = run_fig7("quick")
        assert "Figure 7" in text
        lines = [l for l in text.splitlines() if l and not l.startswith("-")]
        assert any(l.startswith("Demand") for l in lines)
        assert any(l.startswith("UserSelect") for l in lines)
        # Last column is the online/offline ratio: >1 for Demand, <1 for
        # UserSelect.
        demand_ratio = float(
            next(l for l in lines if l.startswith("Demand")).split()[-1]
        )
        users_ratio = float(
            next(l for l in lines if l.startswith("UserSelect")).split()[-1]
        )
        assert demand_ratio > 1.0
        assert users_ratio < 1.0

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            run_fig7("huge")


class TestFig8:
    def test_jigsaw_beats_full_on_every_workload(self):
        """Jigsaw does strictly less work than full evaluation on every
        workload — asserted on the deterministic cost drivers (samples
        drawn; jumps taken for the Markov chain), not on wall-clock
        ordering, which scheduler noise can invert at quick scale."""
        result = run_fig8("quick")
        assert set(result.data) == {
            "Usage", "Capacity", "Overload", "MarkovStep"
        }
        for label, entry in result.data.items():
            if label == "MarkovStep":
                # The jump engine skipped work: jumps replace full steps.
                assert entry["jumps"] > 0
                assert entry["full_steps"] > 0
            else:
                assert entry["jigsaw_samples"] < entry["naive_samples"], (
                    label
                )
                assert entry["reuse_fraction"] > 0.0, label

    def test_series_cover_all_workloads_under_fake_clock(self):
        """The timing series themselves, deterministic: one tick per
        timed region, so both series exist, align, and carry the exact
        per-read tick — no scheduler noise term."""
        with use_clock(FakeClock(tick=0.125)):
            result = run_fig8("quick")
        full = dict(result.series_named("Full Evaluation").points)
        jigsaw = dict(result.series_named("Jigsaw").points)
        assert set(full) == set(jigsaw) == {0.0, 1.0, 2.0, 3.0}
        assert all(seconds == 0.125 for seconds in full.values())
        assert all(seconds == 0.125 for seconds in jigsaw.values())

    def test_to_text_includes_notes(self):
        text = run_fig8("quick").to_text()
        assert "speedup" in text
        assert "MarkovStep" in text


class TestFig9:
    def test_bases_grow_with_structure(self):
        result = run_fig9("quick", structure_sizes=(0.0, 8.0))
        notes = "\n".join(result.notes)
        assert "structure=0.0: 1 bases" in notes
        assert len(result.series) == 3
        for series in result.series:
            assert len(series.points) == 2

    def test_cost_rises_with_structure(self):
        """More structure -> more bases -> more candidates per lookup.

        Milliseconds per point on a loaded host can transiently invert,
        so the cost claim is asserted on its deterministic driver: the
        array scan's candidates-tested count per lookup grows with the
        structure size.  (Formerly a best-of-3 wall-clock retry loop.)
        """
        per_lookup = {}
        for structure in (0.0, 12.0):
            workload = capacity_workload(
                weeks=26, purchase_step=8, structure_size=structure
            )
            workload.samples_per_point = 120
            store = BasisStore(index_strategy="array")
            ParameterExplorer(
                workload.simulation(),
                samples_per_point=120,
                fingerprint_size=workload.fingerprint_size,
                basis_store=store,
            ).run(workload.points)
            assert store.stats.lookups > 0
            per_lookup[structure] = (
                store.stats.candidates_tested / store.stats.lookups
            )
        assert per_lookup[12.0] > per_lookup[0.0]

    def test_fig9_timing_deterministic_under_fake_clock(self):
        """With the injected clock every sweep spans exactly one tick, so
        all three strategies report the *identical* ms/point value — an
        exact-equality assertion with no scheduler noise term at all.
        (The tick is a power of two so the clock's accumulation stays
        exact in binary floating point.)"""
        with use_clock(FakeClock(tick=0.25)):
            result = run_fig9("quick", structure_sizes=(0.0, 8.0))
        reference = dict(result.series[0].points)
        assert all(value > 0 for value in reference.values())
        for series in result.series[1:]:
            assert dict(series.points) == reference, series.name


class TestFig10And11:
    def test_fig10_relative_to_array(self):
        """Normalization beats the array scan at 40 bases — asserted on
        the deterministic cost driver (candidates tested per lookup)
        instead of single-digit-millisecond timing ratios that scheduler
        noise can spike.  (Formerly a best-of-3 wall-clock retry loop.)
        """
        tested = {}
        for strategy in ("array", "normalization"):
            workload = synth_basis_workload(40, 200)
            workload.samples_per_point = 60
            store = BasisStore(index_strategy=strategy)
            ParameterExplorer(
                workload.simulation(),
                samples_per_point=60,
                fingerprint_size=workload.fingerprint_size,
                basis_store=store,
            ).run(workload.points)
            assert store.stats.lookups == 200
            tested[strategy] = store.stats.candidates_tested
        # The array scan tests every stored basis per probe; the
        # normalization index prunes to the probe's bucket.
        assert tested["normalization"] < tested["array"] / 2

    def test_fig10_ratios_exact_under_fake_clock(self):
        """The relative-to-array arithmetic itself, with timing noise
        removed: every sweep spans one tick, so every ratio is exactly
        1.0 — and the Array reference column is exactly 1.0 by
        construction."""
        with use_clock(FakeClock(tick=0.5)):
            result = run_fig10("quick", basis_counts=(5, 40))
        for series in result.series:
            for _, ratio in series.points:
                assert ratio == 1.0, series.name

    def test_fig11_series_cover_counts(self):
        result = run_fig11("quick", basis_counts=(10, 30))
        for series in result.series:
            assert sorted(series.xs) == [10, 30]
            assert all(y > 0 for y in series.ys)


class TestFig12:
    def test_advantage_decays_with_branching(self):
        result = run_fig12("quick", branchings=(1e-3, 0.1))
        naive = dict(result.series_named("Naive").points)
        jigsaw = dict(result.series_named("Jigsaw").points)
        ratio_low = naive[1e-3] / jigsaw[1e-3]
        ratio_high = naive[0.1] / jigsaw[0.1]
        assert ratio_low > ratio_high
        assert ratio_low > 3.0


class TestHarnessTable:
    def test_missing_series_lookup(self):
        result = run_fig12("quick", branchings=(1e-2,))
        with pytest.raises(KeyError):
            result.series_named("NoSuchSeries")


class TestGoldenFigures:
    """Exact-compare smoke-scale figure *data points* against the files
    committed under ``benchmarks/golden/``.

    This pins the actual estimates (mean expectations, reuse decisions,
    jump counts) — not just the aggregate counters the bench gate
    watches — so a change that shifts what the figures *report* fails
    even when the work accounting happens to be unchanged.  Refresh via
    ``PYTHONPATH=src python benchmarks/refresh_golden.py`` and commit the
    diff with an explanation.
    """

    @staticmethod
    def _golden(figure):
        with open(refresh_golden.golden_path(figure)) as handle:
            return json.load(handle)

    @pytest.mark.parametrize(
        "figure", sorted(refresh_golden.RUNNERS)
    )
    def test_data_points_match_golden_exactly(self, figure):
        golden = self._golden(figure)
        assert golden["scale"] == refresh_golden.SCALE == "smoke"
        # measure() is the same code CI's --check runs, so the registry
        # and measurement logic cannot drift between the two gates.  One
        # json round-trip normalizes float formatting on our side; the
        # values themselves must then match bit-for-bit.
        measured = json.loads(json.dumps(refresh_golden.measure(figure)))
        assert measured["data"] == golden["data"]

    def test_golden_files_carry_real_data_points(self):
        """Every golden file pins actual per-x data, not empty shells."""
        for figure in refresh_golden.RUNNERS:
            golden = self._golden(figure)
            assert golden["data"], figure
            for key, entry in golden["data"].items():
                assert entry, (figure, key)
                assert all(
                    isinstance(value, (int, float))
                    for value in entry.values()
                ), (figure, key)
