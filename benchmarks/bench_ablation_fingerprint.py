"""Ablation: fingerprint size m (the design constant the paper fixes at 10).

Two effects trade off against each other:

* **cost** — every parameter point pays m simulation rounds whether or not
  it reuses, so sweep cost grows ~linearly in m once reuse dominates;
* **accuracy / discrimination** — larger m separates near-miss
  distributions (boolean outputs resolve probabilities to ~1/m) and, for
  Markov jumps, reduces the chance that all observed instances miss a
  discontinuity (error decays geometrically in m).

DESIGN.md calls this out as the reproduction's main tunable; the paper's
§6.2 accuracy remark ("a fingerprint length of 10 is sufficient for the
models we consider") is exactly a point on this curve.
"""

import pytest

from repro.bench.workloads import capacity_workload
from repro.blackbox.markov_step import MarkovStepModel
from repro.core.explorer import ParameterExplorer
from repro.core.markov import MarkovJumpRunner, NaiveMarkovRunner
from repro.core.seeds import SeedBank

SAMPLES = 60
FINGERPRINT_SIZES = (5, 10, 20)


@pytest.mark.parametrize("m", FINGERPRINT_SIZES, ids=lambda m: f"m={m}")
def test_sweep_cost_vs_m(benchmark, m):
    workload = capacity_workload(weeks=12, purchase_step=6)

    def run():
        explorer = ParameterExplorer(
            workload.simulation(),
            samples_per_point=SAMPLES,
            fingerprint_size=m,
        )
        return explorer.run(workload.points)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["bases"] = result.stats.bases_created
    benchmark.extra_info["samples"] = result.stats.samples_drawn


@pytest.mark.parametrize("m", FINGERPRINT_SIZES, ids=lambda m: f"m={m}")
def test_markov_jump_cost_vs_m(benchmark, m):
    def run():
        model = MarkovStepModel(release_threshold=20.0)
        runner = MarkovJumpRunner(
            model, instance_count=120, fingerprint_size=m
        )
        return runner.run(60)

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_sweep_cost_grows_with_m():
    """Once reuse dominates, per-sweep sample count is ~linear in m."""
    workload = capacity_workload(weeks=12, purchase_step=6)
    samples_by_m = {}
    for m in (5, 20):
        explorer = ParameterExplorer(
            workload.simulation(),
            samples_per_point=SAMPLES,
            fingerprint_size=m,
        )
        samples_by_m[m] = explorer.run(workload.points).stats.samples_drawn
    assert samples_by_m[20] > samples_by_m[5]


def test_markov_accuracy_improves_with_m():
    """The geometric-in-m error decay measured on the MarkovStep chain."""
    bank = SeedBank(6)
    naive = NaiveMarkovRunner(
        MarkovStepModel(release_threshold=20.0),
        instance_count=120,
        seed_bank=bank,
    ).run(60)
    errors = {}
    for m in (5, 25):
        jump = MarkovJumpRunner(
            MarkovStepModel(release_threshold=20.0),
            instance_count=120,
            fingerprint_size=m,
            seed_bank=bank,
        ).run(60)
        errors[m] = abs(jump.states.mean() - naive.states.mean())
    assert errors[25] <= errors[5] + 1e-9
    assert errors[25] < 1.0
