#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation as text.

Usage::

    python benchmarks/run_all.py [--scale quick|paper] [--out results.txt]
                                 [--bench-out BENCH_run_all.json]

``quick`` (default) runs laptop-sized sweeps in seconds on the batch
sampling engine; ``paper`` runs the paper-sized configurations (1000
samples/point over the full parameter spaces).  Either way the *shapes* —
who wins, by roughly what factor, where crossovers fall — are the
reproduced quantity; absolute times depend on the host.

Alongside the text report, a machine-readable ``BENCH_run_all.json`` is
written with per-figure wall-clock seconds and work counters (samples
drawn, reuse fraction) so future changes have a perf trajectory to regress
against.
"""

import argparse
import json
import os
import platform
import sys
import time

from repro.bench.figures import (
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default="quick",
        help="workload sizes: quick (seconds) or paper (minutes)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--bench-out",
        default=os.path.join(_REPO_ROOT, "BENCH_run_all.json"),
        help="machine-readable per-figure timings (empty string disables)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="run a single experiment, e.g. --only fig9",
    )
    args = parser.parse_args(argv)

    runners = {
        "fig7": lambda: run_fig7(args.scale),
        "fig8": lambda: run_fig8(args.scale),
        "fig9": lambda: run_fig9(args.scale),
        "fig10": lambda: run_fig10(args.scale),
        "fig11": lambda: run_fig11(args.scale),
        "fig12": lambda: run_fig12(args.scale),
    }
    if args.only is not None:
        if args.only not in runners:
            parser.error(
                f"unknown experiment {args.only!r}; choose from "
                f"{sorted(runners)}"
            )
        runners = {args.only: runners[args.only]}

    sections = []
    bench = {
        "scale": args.scale,
        "python": platform.python_version(),
        "figures": {},
    }
    total_seconds = 0.0
    for name, runner in runners.items():
        started = time.perf_counter()
        print(f"running {name} ({args.scale} scale)...", file=sys.stderr)
        result = runner()
        elapsed = time.perf_counter() - started
        total_seconds += elapsed
        if isinstance(result, str):
            text, counters = result, {}
        else:
            text, counters = result.to_text(), dict(result.counters)
        entry = {"seconds": round(elapsed, 4)}
        entry.update(
            {key: round(float(value), 6) for key, value in counters.items()}
        )
        bench["figures"][name] = entry
        sections.append(f"{text}\n  [regenerated in {elapsed:.1f}s]")
    bench["total_seconds"] = round(total_seconds, 4)

    report = ("\n\n" + "=" * 76 + "\n\n").join(sections)
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
        print(f"\nwritten to {args.out}", file=sys.stderr)
    if args.bench_out:
        with open(args.bench_out, "w") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"bench counters written to {args.bench_out}", file=sys.stderr)


if __name__ == "__main__":
    main()
