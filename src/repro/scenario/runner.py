"""Batch scenario execution: naive and fingerprint-reusing modes.

The runner generalizes :class:`repro.core.explorer.ParameterExplorer` to
multi-column scenarios.  One Monte Carlo round computes *all* output columns
(one set of black-box invocations), so the fingerprint decision is joint: a
point skips its remaining rounds only when **every** column's fingerprint
maps onto a stored basis.  This is precisely why the paper's boolean
Overload column halves the achievable speedup of its query (section 6.2) —
one unmappable column forces the full simulation for the whole row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.blackbox.base import ParamKey, param_key
from repro.core.basis import BasisStore
from repro.core.estimator import Estimator, MetricSet
from repro.core.fingerprint import Fingerprint
from repro.core.mapping import (
    IdentityMappingFamily,
    LinearMappingFamily,
    Mapping,
    MappingFamily,
)
from repro.core.optimizer import ResultRow, Selector
from repro.core.seeds import DEFAULT_SEED_BANK, SeedBank
from repro.probdb.expressions import BatchUnsupported
from repro.scenario.scenario import Scenario


@dataclass
class RunnerStats:
    """Joint work accounting across all output columns."""

    points_total: int = 0
    points_reused: int = 0
    rounds_executed: int = 0
    bases_created: int = 0

    @property
    def reuse_fraction(self) -> float:
        if self.points_total == 0:
            return 0.0
        return self.points_reused / self.points_total


@dataclass
class ScenarioResult:
    """Per-point, per-column metrics plus accounting."""

    metrics: Dict[ParamKey, Dict[str, MetricSet]] = field(default_factory=dict)
    points: Dict[ParamKey, Dict[str, float]] = field(default_factory=dict)
    stats: RunnerStats = field(default_factory=RunnerStats)

    def metrics_for(
        self, params: Mapping[str, float]
    ) -> Dict[str, MetricSet]:
        return self.metrics[param_key(params)]

    def rows(self) -> List[ResultRow]:
        """Rows in the Selector's input format."""
        return [
            (self.points[key], self.metrics[key]) for key in self.metrics
        ]

    def optimize(self, selector: Selector):
        """Run an OPTIMIZE clause over the explored results table."""
        return selector.solve(self.rows())

    def __len__(self) -> int:
        return len(self.metrics)


class ScenarioRunner:
    """Executes a scenario over its whole parameter space with reuse.

    ``column_families`` optionally overrides the mapping family per column;
    boolean outputs default to identity-only matching (a 0/1 fingerprint
    admits no meaningful affine remap — scaling probabilities would be
    statistically wrong).
    """

    def __init__(
        self,
        scenario: Scenario,
        samples_per_point: int = 1000,
        fingerprint_size: int = 10,
        seed_bank: Optional[SeedBank] = None,
        estimator: Optional[Estimator] = None,
        index_strategy: str = "normalization",
        column_families: Optional[Mapping[str, MappingFamily]] = None,
        use_fingerprints: bool = True,
    ):
        if fingerprint_size < 1:
            raise ValueError("fingerprint_size must be at least 1")
        if samples_per_point < fingerprint_size:
            raise ValueError("samples_per_point must be >= fingerprint_size")
        self.scenario = scenario
        self.samples_per_point = samples_per_point
        self.fingerprint_size = fingerprint_size
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK
        self.estimator = estimator or Estimator()
        self.use_fingerprints = use_fingerprints
        overrides = dict(column_families or {})
        self._stores: Dict[str, BasisStore] = {}
        for column in scenario.output_columns:
            family = overrides.get(column, LinearMappingFamily())
            self._stores[column] = BasisStore(
                mapping_family=family,
                index_strategy=index_strategy,
                estimator=self.estimator,
            )

    def store_for(self, column: str) -> BasisStore:
        return self._stores[column]

    def run(self) -> ScenarioResult:
        result = ScenarioResult()
        for point in self.scenario.space.points():
            key = param_key(point)
            result.points[key] = dict(point)
            result.metrics[key] = self._run_point(point, result.stats)
            result.stats.points_total += 1
        return result

    def _simulate_rounds(
        self, point: Dict[str, float], count: int, start: int
    ) -> Dict[str, np.ndarray]:
        """``count`` Monte Carlo rounds for every column, batched when the
        scenario plan supports it (bit-identical to the per-seed loop)."""
        seeds = self.seed_bank.seed_array(count, start=start)
        try:
            columns = self.scenario.simulate_batch(point, seeds)
            return {
                name: np.asarray(values, dtype=float)
                for name, values in columns.items()
            }
        except BatchUnsupported:
            rows = [
                self.scenario.simulate(point, int(seed)) for seed in seeds
            ]
            return {
                column: np.array(
                    [row[column] for row in rows], dtype=float
                )
                for column in self.scenario.output_columns
            }

    def _run_point(
        self, point: Dict[str, float], stats: RunnerStats
    ) -> Dict[str, MetricSet]:
        columns = self.scenario.output_columns
        m = self.fingerprint_size

        # Fingerprint rounds (double as the first m simulation rounds).
        column_values = self._simulate_rounds(point, m, start=0)
        stats.rounds_executed += m

        if self.use_fingerprints:
            matches: Dict[str, Tuple[object, Mapping]] = {}
            for column in columns:
                fingerprint = Fingerprint(column_values[column])
                matched = self._stores[column].match(fingerprint)
                if matched is None:
                    break
                matches[column] = matched
            if len(matches) == len(columns):
                stats.points_reused += 1
                return {
                    column: self._stores[column].metrics_for(
                        basis, mapping  # type: ignore[arg-type]
                    )
                    for column, (basis, mapping) in matches.items()
                }

        # Full simulation: complete the remaining rounds and register bases.
        remaining = self._simulate_rounds(
            point, self.samples_per_point - m, start=m
        )
        stats.rounds_executed += self.samples_per_point - m

        metrics: Dict[str, MetricSet] = {}
        for column in columns:
            samples = np.concatenate(
                [column_values[column], remaining[column]]
            )
            fingerprint = Fingerprint(samples[:m])
            if self.use_fingerprints:
                basis = self._stores[column].add(fingerprint, samples)
                stats.bases_created += 1
                metrics[column] = basis.metrics
            else:
                metrics[column] = self.estimator.estimate(samples)
        return metrics


def boolean_column_families(
    scenario: Scenario, boolean_columns: Tuple[str, ...]
) -> Dict[str, MappingFamily]:
    """Convenience: identity-only matching for indicator columns."""
    families: Dict[str, MappingFamily] = {}
    for column in boolean_columns:
        if column not in scenario.output_columns:
            raise ValueError(f"unknown column {column!r}")
        families[column] = IdentityMappingFamily()
    return families
