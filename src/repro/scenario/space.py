"""Parameter-space enumeration: the Parameter Enumerator of paper Figure 3.

The brute-force cartesian product over every non-chain parameter — necessary,
per the paper, to guarantee convergence to the global optimum for arbitrary
black boxes.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import JigsawError
from repro.scenario.parameter import ParameterSpec


class ParameterSpace:
    """The cartesian product of a list of parameter declarations."""

    def __init__(self, specs: Sequence[ParameterSpec]):
        names = [spec.name for spec in specs]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise JigsawError(
                f"duplicate parameter declarations: {sorted(duplicates)}"
            )
        self.specs = tuple(spec for spec in specs if not spec.is_chain)
        self.chain_specs = tuple(spec for spec in specs if spec.is_chain)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.specs)

    def size(self) -> int:
        total = 1
        for spec in self.specs:
            total *= len(spec)
        return total

    def points(self) -> Iterator[Dict[str, float]]:
        """Yield every parameter valuation as a name → value dict."""
        if not self.specs:
            yield {}
            return
        value_lists = [spec.values() for spec in self.specs]
        for combination in itertools.product(*value_lists):
            yield dict(zip(self.names, combination))

    def points_list(self) -> List[Dict[str, float]]:
        return list(self.points())

    def neighbors(
        self, point: Dict[str, float], parameter: str
    ) -> List[Dict[str, float]]:
        """Adjacent points along one parameter's declared value order.

        The interactive ExploreHeuristic (paper section 5) prefetches
        adjacent points in a discrete parameter space.
        """
        spec = self._spec(parameter)
        values = spec.values()
        try:
            position = values.index(point[parameter])
        except ValueError:
            raise JigsawError(
                f"point value {point[parameter]} is not in @{parameter}'s "
                "domain"
            ) from None
        result = []
        for offset in (-1, 1):
            neighbor_position = position + offset
            if 0 <= neighbor_position < len(values):
                neighbor = dict(point)
                neighbor[parameter] = values[neighbor_position]
                result.append(neighbor)
        return result

    def _spec(self, name: str) -> ParameterSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise JigsawError(f"unknown parameter @{name}")

    def __len__(self) -> int:
        return self.size()
