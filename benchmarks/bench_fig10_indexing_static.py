"""Figure 10: indexing strategies in a static parameter space.

Paper shape: past ~50 basis distributions the Array scan's per-lookup cost
dominates and both hash indexes (Normalization, Sorted SID) win, approaching
an asymptotic ~10% total saving once sample generation dominates.
"""

import pytest

from repro.bench.workloads import synth_basis_workload
from repro.core.explorer import ParameterExplorer

SAMPLES = 30
POINTS = 400
BASIS_COUNTS = (10, 100)
STRATEGIES = ("array", "normalization", "sorted_sid")


@pytest.mark.parametrize("basis_count", BASIS_COUNTS, ids=str)
@pytest.mark.parametrize("strategy", STRATEGIES, ids=str)
def test_static_space(benchmark, basis_count, strategy):
    workload = synth_basis_workload(basis_count, POINTS)

    def run():
        explorer = ParameterExplorer(
            workload.simulation(),
            samples_per_point=SAMPLES,
            fingerprint_size=10,
            index_strategy=strategy,
        )
        return explorer.run(workload.points)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.stats.bases_created == basis_count


def test_fig10_shape():
    """Work-count shape check: with B bases, the array index tests O(B)
    candidates per lookup while the hash indexes test O(1)."""
    basis_count = 60
    workload = synth_basis_workload(basis_count, POINTS)

    def candidates_tested(strategy):
        explorer = ParameterExplorer(
            workload.simulation(),
            samples_per_point=SAMPLES,
            fingerprint_size=10,
            index_strategy=strategy,
        )
        explorer.run(workload.points)
        return explorer.store.stats.candidates_tested

    array_tests = candidates_tested("array")
    normalization_tests = candidates_tested("normalization")
    sid_tests = candidates_tested("sorted_sid")
    assert normalization_tests < array_tests / 5
    assert sid_tests < array_tests / 5
