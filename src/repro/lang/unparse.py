"""Render Jigsaw AST nodes back to query text (the parser's inverse).

``parse_script(unparse_script(script)) == script`` for every script the
parser can produce — the round-trip property the fuzz suite
(``tests/property/test_prop_lang_roundtrip.py``) pins.  Composite
expression operands are parenthesized, which costs nothing structurally
(parentheses do not create AST nodes) and makes the rendering independent
of precedence-level bookkeeping.

Used for query canonicalization, error reporting, and programmatic query
construction; kept dependency-free (pure AST -> str).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.ast import (
    AggregateNode,
    BinaryNode,
    CallNode,
    CaseNode,
    ChainSpec,
    ConstraintClause,
    DeclareParameter,
    ExprNode,
    GraphSeries,
    GraphStatement,
    Identifier,
    NumberLit,
    OptimizeStatement,
    ParamNode,
    RangeSpec,
    Script,
    SelectItem,
    SelectStatement,
    SetSpec,
    Statement,
    UnaryNode,
)

#: Expression nodes the grammar treats as primaries: they reparse
#: unambiguously without parentheses in any operand position.
_PRIMARY_NODES = (NumberLit, ParamNode, Identifier, CallNode, AggregateNode)

#: Binary operators whose spelling is a keyword rather than a symbol.
_WORD_OPS = {"and", "or"}


def _number(value: float) -> str:
    """Render a numeric literal the lexer tokenizes back to this float.

    ``repr`` round-trips every finite float exactly, and the lexer's
    number scanner accepts the full repr grammar (digits, one dot, one
    exponent).  Non-finite values have no literal spelling.
    """
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise ParseError(f"{value!r} has no literal form", 0, 0)
    if value < 0:
        # Statement positions parse the sign via _parse_number; expression
        # positions must use UnaryNode instead (callers enforce this).
        return f"-{_number(-value)}"
    return repr(value)


def _operand(node: ExprNode) -> str:
    """An expression rendered for an operand position."""
    text = unparse_expression(node)
    if isinstance(node, _PRIMARY_NODES) or isinstance(node, CaseNode):
        return text
    return f"({text})"


def unparse_expression(node: ExprNode) -> str:
    """Render one expression subtree."""
    if isinstance(node, NumberLit):
        if node.value < 0:
            # A negative literal has no direct expression spelling (the
            # parser produces UnaryNode('-', ...) there); parenthesized
            # it reparses as close as the grammar allows.
            raise ParseError(
                "negative NumberLit cannot round-trip as an expression; "
                "wrap it in UnaryNode('-', NumberLit(abs))",
                0,
                0,
            )
        return _number(node.value)
    if isinstance(node, Identifier):
        return node.name
    if isinstance(node, ParamNode):
        return f"@{node.name}"
    if isinstance(node, UnaryNode):
        spelled = "NOT " if node.op == "not" else node.op
        return f"{spelled}{_operand(node.operand)}"
    if isinstance(node, BinaryNode):
        op = node.op.upper() if node.op in _WORD_OPS else node.op
        return f"{_operand(node.left)} {op} {_operand(node.right)}"
    if isinstance(node, CaseNode):
        return (
            f"CASE WHEN {_operand(node.condition)} "
            f"THEN {_operand(node.then_value)} "
            f"ELSE {_operand(node.else_value)} END"
        )
    if isinstance(node, CallNode):
        arguments = ", ".join(
            unparse_expression(argument) for argument in node.arguments
        )
        return f"{node.name}({arguments})"
    if isinstance(node, AggregateNode):
        return f"{node.kind.upper()}({unparse_expression(node.argument)})"
    raise ParseError(f"cannot unparse {type(node).__name__}", 0, 0)


def _unparse_declare(statement: DeclareParameter) -> str:
    spec = statement.spec
    head = f"DECLARE PARAMETER @{statement.name} AS"
    if isinstance(spec, RangeSpec):
        return (
            f"{head} RANGE {_number(spec.start)} TO {_number(spec.stop)} "
            f"STEP BY {_number(spec.step)};"
        )
    if isinstance(spec, SetSpec):
        members = ", ".join(_number(member) for member in spec.members)
        return f"{head} SET ({members});"
    if isinstance(spec, ChainSpec):
        return (
            f"{head} CHAIN {spec.source_column} FROM @{spec.driver} : "
            f"{unparse_expression(spec.offset_expr)} "
            f"INITIAL VALUE {_number(spec.initial_value)};"
        )
    raise ParseError(f"unknown parameter spec {type(spec).__name__}", 0, 0)


def _unparse_select_item(item: SelectItem) -> str:
    text = unparse_expression(item.expression)
    if item.alias is not None and not (
        isinstance(item.expression, Identifier)
        and item.expression.name == item.alias
    ):
        return f"{text} AS {item.alias}"
    return text


def _unparse_select(statement: SelectStatement, nested: bool = False) -> str:
    parts = [
        "SELECT "
        + ", ".join(_unparse_select_item(item) for item in statement.items)
    ]
    if statement.subquery is not None:
        parts.append(f"FROM ({_unparse_select(statement.subquery, True)})")
    elif statement.source_table is not None:
        parts.append(f"FROM {statement.source_table}")
    if statement.into is not None:
        parts.append(f"INTO {statement.into}")
    text = " ".join(parts)
    return text if nested else text + ";"


def _unparse_constraint(constraint: ConstraintClause) -> str:
    return (
        f"{constraint.aggregate.upper()}({constraint.metric.upper()} "
        f"{constraint.column}) {constraint.op} "
        f"{_number(constraint.threshold)}"
    )


def _unparse_optimize(statement: OptimizeStatement) -> str:
    parts = [
        "OPTIMIZE SELECT "
        + ", ".join(f"@{name}" for name in statement.select_params),
        f"FROM {statement.source_table}",
    ]
    if statement.constraints:
        parts.append(
            "WHERE "
            + " AND ".join(
                _unparse_constraint(c) for c in statement.constraints
            )
        )
    parts.append("GROUP BY " + ", ".join(statement.group_by))
    parts.append(
        "FOR "
        + ", ".join(
            f"{o.direction.upper()} @{o.parameter}"
            for o in statement.objectives
        )
    )
    return " ".join(parts) + ";"


def _unparse_series(series: GraphSeries) -> str:
    text = f"{series.metric.upper()} {series.column}"
    if series.style:
        text += " WITH " + " ".join(series.style)
    return text


def _unparse_graph(statement: GraphStatement) -> str:
    series = ", ".join(_unparse_series(s) for s in statement.series)
    return f"GRAPH OVER @{statement.x_parameter} {series};"


def unparse_statement(statement: Statement) -> str:
    """Render one top-level statement (with its closing semicolon)."""
    if isinstance(statement, DeclareParameter):
        return _unparse_declare(statement)
    if isinstance(statement, SelectStatement):
        return _unparse_select(statement)
    if isinstance(statement, OptimizeStatement):
        return _unparse_optimize(statement)
    if isinstance(statement, GraphStatement):
        return _unparse_graph(statement)
    raise ParseError(f"cannot unparse {type(statement).__name__}", 0, 0)


def unparse_script(script: Script) -> str:
    """Render a full script, one statement per line."""
    return "\n".join(
        unparse_statement(statement) for statement in script.statements
    )
