"""Unit tests for scenarios and the multi-column batch runner."""

import pytest

from repro.blackbox import (
    BlackBoxRegistry,
    CapacityModel,
    DemandModel,
)
from repro.core.seeds import SeedBank
from repro.errors import QueryError
from repro.lang.binder import compile_query
from repro.scenario import (
    ScenarioRunner,
    boolean_column_families,
)


def registry():
    reg = BlackBoxRegistry()
    reg.register(DemandModel(), "DemandModel")
    reg.register(
        CapacityModel(base_capacity=10.0, purchase_volume=10.0),
        "CapacityModel",
    )
    return reg


SOURCE = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 8 STEP BY 2;
DECLARE PARAMETER @purchase1 AS SET (0, 4);
SELECT DemandModel(@current_week, 50) AS demand,
       CapacityModel(@current_week, @purchase1, 50) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
"""


@pytest.fixture
def scenario():
    return compile_query(SOURCE, registry()).scenario


class TestScenario:
    def test_simulate_returns_all_columns(self, scenario):
        row = scenario.simulate(
            {"current_week": 2.0, "purchase1": 0.0}, seed=3
        )
        assert set(row) == {"demand", "capacity", "overload"}

    def test_simulate_deterministic(self, scenario):
        point = {"current_week": 2.0, "purchase1": 0.0}
        assert scenario.simulate(point, 9) == scenario.simulate(point, 9)

    def test_column_simulation_view(self, scenario):
        simulation = scenario.column_simulation("demand")
        point = {"current_week": 4.0, "purchase1": 0.0}
        assert simulation(point, 5) == scenario.simulate(point, 5)["demand"]

    def test_column_simulation_unknown_column(self, scenario):
        with pytest.raises(QueryError):
            scenario.column_simulation("nope")

    def test_parameter_lookup(self, scenario):
        assert scenario.parameter("purchase1").values() == (0.0, 4.0)
        with pytest.raises(QueryError):
            scenario.parameter("nope")

    def test_space_size(self, scenario):
        assert scenario.space.size() == 5 * 2


class TestScenarioRunner:
    def test_runs_whole_space(self, scenario):
        runner = ScenarioRunner(
            scenario, samples_per_point=30, fingerprint_size=10
        )
        result = runner.run()
        assert len(result) == 10
        assert result.stats.points_total == 10

    def test_reuse_requires_every_column_to_match(self, scenario):
        runner = ScenarioRunner(
            scenario,
            samples_per_point=30,
            fingerprint_size=10,
            column_families=boolean_column_families(scenario, ("overload",)),
        )
        result = runner.run()
        # Some reuse must happen, but the boolean column limits it.
        assert 0 < result.stats.points_reused < result.stats.points_total

    def test_metrics_contain_every_column(self, scenario):
        runner = ScenarioRunner(scenario, samples_per_point=25)
        result = runner.run()
        for metrics in result.metrics.values():
            assert set(metrics) == {"demand", "capacity", "overload"}

    def test_naive_mode_matches_fingerprint_mode(self, scenario):
        bank = SeedBank(31)
        fingerprinting = ScenarioRunner(
            scenario,
            samples_per_point=40,
            seed_bank=bank,
            column_families=boolean_column_families(scenario, ("overload",)),
        ).run()
        naive = ScenarioRunner(
            scenario,
            samples_per_point=40,
            seed_bank=bank,
            use_fingerprints=False,
        ).run()
        for key, columns in naive.metrics.items():
            for column, reference in columns.items():
                assert fingerprinting.metrics[key][column].approx_equals(
                    reference, rel_tol=1e-8
                ), (key, column)

    def test_rounds_accounting(self, scenario):
        runner = ScenarioRunner(
            scenario, samples_per_point=30, fingerprint_size=10
        )
        result = runner.run()
        full_points = result.stats.points_total - result.stats.points_reused
        expected = (
            result.stats.points_total * 10 + full_points * (30 - 10)
        )
        assert result.stats.rounds_executed == expected

    def test_rows_feed_selector(self, scenario):
        runner = ScenarioRunner(scenario, samples_per_point=25)
        result = runner.run()
        rows = result.rows()
        assert len(rows) == 10
        params, columns = rows[0]
        assert "current_week" in params
        assert "overload" in columns

    def test_validation(self, scenario):
        with pytest.raises(ValueError):
            ScenarioRunner(scenario, samples_per_point=5, fingerprint_size=10)
        with pytest.raises(ValueError):
            ScenarioRunner(scenario, fingerprint_size=0)

    def test_boolean_family_unknown_column(self, scenario):
        with pytest.raises(ValueError):
            boolean_column_families(scenario, ("nope",))

    def test_store_per_column(self, scenario):
        runner = ScenarioRunner(scenario, samples_per_point=25)
        runner.run()
        assert len(runner.store_for("demand")) >= 1
        assert len(runner.store_for("capacity")) >= 1
