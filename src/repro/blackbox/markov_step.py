"""The MarkovStep black box (paper Figure 6 and section 4).

"A simple Markovian process simulating the behavior of Demand with a
Markovian dependency introduced between feature release and the prior date's
demand."

The chain's per-instance state is the feature release week (initially in the
future / "not yet released", encoded as the sentinel ``pending_release``).
At each step (week), demand is drawn from the Demand model conditioned on the
current release state; if demand crosses ``release_threshold`` while the
feature is unreleased, management releases it at that week.  Markovian
dependencies are therefore *infrequent*: exactly one discontinuity per
trajectory, surrounded by long regions where a state-frozen estimator is
valid — the structure the Markov-jump algorithm (Algorithm 4) exploits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blackbox.base import MarkovModel
from repro.blackbox.demand import DemandModel
from repro.blackbox.draws import DEFAULT_DRAW_CACHE
from repro.blackbox.fastrng import KIND_NORMAL, draw_matrix


class MarkovStepModel(MarkovModel):
    """Demand process whose feature-release week depends on past demand.

    State encoding: the release week if released, else ``pending_release``
    (a large sentinel meaning "not released yet").  The observable output is
    the demand drawn for the step.
    """

    name = "MarkovStep"

    def __init__(
        self,
        release_threshold: float = 30.0,
        pending_release: float = 1.0e9,
        demand: DemandModel = None,
    ):
        super().__init__()
        self.release_threshold = release_threshold
        self.pending_release = pending_release
        self.demand = demand if demand is not None else DemandModel()

    def initial_state(self) -> float:
        return self.pending_release

    def demand_at(self, state: float, step_index: int, seed: int) -> float:
        """Demand for the step given the current release state."""
        return self.demand.sample(
            {"current_week": float(step_index), "feature_release": state},
            seed,
        )

    def _step(self, state: float, step_index: int, seed: int) -> float:
        demand_value = self.demand_at(state, step_index, seed)
        released = state < self.pending_release
        if not released and demand_value > self.release_threshold:
            return float(step_index)
        return state

    def demand_at_batch(
        self, states: np.ndarray, step_index: int, z: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`demand_at` from precomputed standard normals."""
        values = self.demand.values_from_draws(float(step_index), states, z)
        # Mirror the scalar path's bookkeeping: one Demand sample per lane.
        self.demand._invocations += int(states.shape[0])
        return values

    def _step_batch(
        self,
        states: np.ndarray,
        step_index: int,
        seeds: np.ndarray,
        draws: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        if draws is None:
            z = draw_matrix(seeds, (KIND_NORMAL,))[:, 0]
        else:
            z = np.asarray(draws, dtype=np.float64)
        demand_values = self.demand_at_batch(states, step_index, z)
        released = states < self.pending_release
        triggered = ~released & (demand_values > self.release_threshold)
        return np.where(triggered, float(step_index), states)

    def plan_step_draws(
        self, seed_matrix: np.ndarray
    ) -> Optional[np.ndarray]:
        flat = np.asarray(seed_matrix, dtype=np.uint64).reshape(-1)
        z = DEFAULT_DRAW_CACHE.matrix(flat, (KIND_NORMAL,))[:, 0]
        return z.reshape(np.asarray(seed_matrix).shape)

    def output_batch(
        self, states: np.ndarray, step_index: int
    ) -> np.ndarray:
        return np.asarray(states, dtype=np.float64).copy()

    def output(self, state: float, step_index: int) -> float:
        """Observable: the release week driving downstream demand.

        The jump evaluator compares outputs via fingerprints; observing the
        state directly (rather than the noisy demand draw) mirrors the
        paper's release-week chain in Figure 5.
        """
        return state


class DemandObservedMarkovStep(MarkovStepModel):
    """MarkovStep variant whose observable is the demand draw itself.

    Exercises the harder case where the fingerprinted quantity is stochastic
    at every step (demand), not just at discontinuities; the demand for a
    step is re-derived deterministically from (state, step, seed).
    """

    name = "MarkovStepDemand"

    def observed_demand(self, state: float, step_index: int, seed: int) -> float:
        return self.demand_at(state, step_index, seed)
