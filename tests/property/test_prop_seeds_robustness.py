"""Seed-robustness properties: core guarantees hold for any master seed.

Every deterministic guarantee of the library (reuse equivalence, naive/
jigsaw agreement, engine agreement) must hold whatever master seed the
global bank was initialized with — there is nothing special about the
default.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blackbox.base import param_key
from repro.blackbox.demand import DemandModel
from repro.blackbox.rng import DeterministicRng
from repro.core.explorer import NaiveExplorer, ParameterExplorer
from repro.core.seeds import SeedBank

masters = st.integers(min_value=0, max_value=2**32)


class TestSeedBankIndependence:
    @given(master=masters)
    @settings(max_examples=30, deadline=None)
    def test_jigsaw_equals_naive_for_every_master_seed(self, master):
        bank = SeedBank(master)
        box = DemandModel()
        points = [
            {"current_week": float(week), "feature_release": 10.0}
            for week in range(1, 8)
        ]
        jigsaw = ParameterExplorer(
            box.sample, samples_per_point=30, seed_bank=bank
        ).run(points)
        naive = NaiveExplorer(
            box.sample, samples_per_point=30, seed_bank=bank
        ).run(points)
        for point in points:
            assert jigsaw.metrics(point).approx_equals(
                naive[param_key(point)], rel_tol=1e-8
            )

    @given(master=masters)
    @settings(max_examples=30, deadline=None)
    def test_one_basis_for_location_scale_family_any_seed(self, master):
        bank = SeedBank(master)

        def simulation(params, seed):
            return DeterministicRng(seed).normal(
                params["mu"], params["sigma"]
            )

        points = [
            {"mu": float(mu), "sigma": 1.0 + 0.5 * mu} for mu in range(6)
        ]
        result = ParameterExplorer(
            simulation, samples_per_point=25, seed_bank=bank
        ).run(points)
        assert result.stats.bases_created == 1

    @given(master=masters, week=st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_black_box_determinism_any_seed(self, master, week):
        bank = SeedBank(master)
        box = DemandModel()
        params = {"current_week": float(week), "feature_release": 20.0}
        seed = bank.seed(0)
        assert box.sample(params, seed) == box.sample(params, seed)
