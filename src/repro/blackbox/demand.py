"""The Demand black box (paper Figure 6 and Algorithm 1).

"Simulates a simple linearly growing gaussian demand model.  As of the
feature release week, the growth rate is changed."

Algorithm 1 in the paper, verbatim in structure:

    demand  = Normal(µ = 1·current_week, σ² = 0.1·current_week)
    if current_week > feature:
        demand += Normal(µ = 0.2·(current_week − feature),
                         σ² = 0.2·(current_week − feature))

The sum of the two independent normals is again a normal, so the model is a
single location-scale family over its whole parameter space: under a fixed
seed, any two parameter points have linearly mappable outputs — which is why
the paper reports the model's entire ~5000-point parameter space needs only
one basis distribution.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.blackbox.base import BlackBox, Params
from repro.blackbox.draws import DEFAULT_DRAW_CACHE
from repro.blackbox.fastrng import KIND_NORMAL
from repro.blackbox.rng import DeterministicRng


class DemandModel(BlackBox):
    """Stochastic CPU-core demand forecast for a given future week."""

    name = "Demand"
    parameter_names: Tuple[str, ...] = ("current_week", "feature_release")

    def __init__(
        self,
        base_growth: float = 1.0,
        base_variance: float = 0.1,
        feature_growth: float = 0.2,
        feature_variance: float = 0.2,
    ):
        super().__init__()
        if base_variance < 0 or feature_variance < 0:
            raise ValueError("variances must be non-negative")
        self.base_growth = base_growth
        self.base_variance = base_variance
        self.feature_growth = feature_growth
        self.feature_variance = feature_variance

    def _sample(self, params: Params, seed: int) -> float:
        week = float(params["current_week"])
        feature = float(params["feature_release"])
        rng = DeterministicRng(seed)
        mean = self.base_growth * week
        variance = self.base_variance * week
        if week > feature:
            weeks_since_release = week - feature
            mean += self.feature_growth * weeks_since_release
            variance += self.feature_variance * weeks_since_release
        # The sum of the two independent normals in Algorithm 1 is itself a
        # normal; drawing it as one variate is distribution-identical and
        # keeps the output affine in a *single* standard draw across every
        # parameter value — which is exactly why the paper reports a single
        # basis distribution covering Demand's entire ~5000-point space.
        return rng.normal_from_variance(mean, variance)

    def _sample_batch(
        self, params: Params, seeds: np.ndarray
    ) -> Optional[np.ndarray]:
        week = float(params["current_week"])
        feature = float(params["feature_release"])
        z = DEFAULT_DRAW_CACHE.matrix(seeds, (KIND_NORMAL,))[:, 0]
        return self.values_from_draws(
            week, np.full(seeds.shape[0], feature), z
        )

    def values_from_draws(
        self, week: float, features: np.ndarray, z: np.ndarray
    ) -> np.ndarray:
        """Demand values from standard-normal draws, one per instance.

        The per-instance ``features`` vector is what lets the Markov-step
        model (whose feature release is chain state) share this math.
        Mirrors ``_sample``'s arithmetic exactly: same means, variances, and
        ``mean + sqrt(variance) * z`` composition per lane.
        """
        base_mean = self.base_growth * week
        base_variance = self.base_variance * week
        weeks_since_release = week - features
        released = week > features
        mean = np.where(
            released,
            base_mean + self.feature_growth * weeks_since_release,
            base_mean,
        )
        variance = np.where(
            released,
            base_variance + self.feature_variance * weeks_since_release,
            base_variance,
        )
        if np.any(variance < 0):
            raise ValueError("variance must be non-negative")
        return mean + np.sqrt(variance) * z
