"""Unit tests for the online what-if engine (paper Algorithm 5)."""

import pytest

from repro.blackbox.rng import DeterministicRng
from repro.core.seeds import SeedBank
from repro.errors import InteractiveError
from repro.interactive.heuristics import (
    AdjacentExploreHeuristic,
    RoundRobinTaskHeuristic,
    TASK_EXPLORATION,
    TASK_REFINEMENT,
    TASK_VALIDATION,
)
from repro.interactive.session import InteractiveSession
from repro.scenario.parameter import RangeParameter
from repro.scenario.space import ParameterSpace


def linear_simulation(params, seed):
    """Every point is an affine image of every other: one shared basis."""
    rng = DeterministicRng(seed)
    return rng.normal(params["week"], 1.0 + 0.1 * params["week"])


def space():
    return ParameterSpace([RangeParameter("week", 0.0, 10.0, 1.0)])


def session(**kwargs):
    return InteractiveSession(
        linear_simulation,
        space(),
        fingerprint_size=10,
        chunk=10,
        seed_bank=SeedBank(5),
        **kwargs,
    )


class TestHeuristics:
    def test_round_robin_pattern(self):
        heuristic = RoundRobinTaskHeuristic(refinement_weight=2)
        tasks = [heuristic.next_task({}) for _ in range(8)]
        assert tasks[:4] == [
            TASK_REFINEMENT,
            TASK_REFINEMENT,
            TASK_VALIDATION,
            TASK_EXPLORATION,
        ]

    def test_weight_validated(self):
        with pytest.raises(ValueError):
            RoundRobinTaskHeuristic(refinement_weight=0)

    def test_explore_heuristic_returns_neighbor(self):
        heuristic = AdjacentExploreHeuristic(space())
        neighbor = heuristic.next_point({"week": 5.0})
        assert neighbor["week"] in (4.0, 6.0)

    def test_explore_heuristic_empty_space(self):
        heuristic = AdjacentExploreHeuristic(ParameterSpace([]))
        assert heuristic.next_point({}) is None


class TestSessionLifecycle:
    def test_tick_before_focus_rejected(self):
        with pytest.raises(InteractiveError):
            session().tick()

    def test_focus_bootstraps_estimate(self):
        s = session()
        s.focus({"week": 3.0})
        estimate = s.estimate({"week": 3.0})
        assert estimate is not None
        assert estimate.count >= 10

    def test_estimate_unvisited_point_is_none(self):
        s = session()
        s.focus({"week": 3.0})
        assert s.estimate({"week": 9.0}) is None

    def test_validation_parameters(self):
        with pytest.raises(InteractiveError):
            InteractiveSession(
                linear_simulation, space(), fingerprint_size=1
            )
        with pytest.raises(InteractiveError):
            InteractiveSession(linear_simulation, space(), chunk=0)


class TestReuseAcrossPoints:
    def test_second_point_shares_basis(self):
        s = session()
        s.focus({"week": 2.0})
        s.focus({"week": 7.0})
        # The linear family maps week 7 onto week 2's basis: one basis only.
        assert len(s.store) == 1

    def test_refinement_grows_shared_basis(self):
        s = session()
        s.focus({"week": 2.0})
        before = s.sample_count({"week": 2.0})
        report = s.run(2)  # two refinement ticks under default weights
        assert all(r.task == TASK_REFINEMENT for r in report)
        assert s.sample_count({"week": 2.0}) == before + 20

    def test_refinement_improves_other_points_too(self):
        s = session()
        s.focus({"week": 2.0})
        s.focus({"week": 7.0})
        before = s.sample_count({"week": 7.0})
        s.focus({"week": 2.0})
        s.run(2)
        # weeks 2 and 7 share the basis, so week 7 got deeper too.
        assert s.sample_count({"week": 7.0}) > before


class TestTicks:
    def test_validation_tick_extends_fingerprint_without_rebind(self):
        s = session()
        s.focus({"week": 2.0})
        s.run(5)  # extend the basis well past the fingerprint
        reports = [s.tick() for _ in range(4)]
        validations = [r for r in reports if r.task == TASK_VALIDATION]
        assert validations
        assert not any(r.rebound for r in validations)

    def test_exploration_prefetches_neighbor(self):
        s = session()
        s.focus({"week": 5.0})
        reports = s.run(4)
        explorations = [r for r in reports if r.task == TASK_EXPLORATION]
        assert explorations
        explored_point = explorations[0].point
        assert explored_point["week"] in (4.0, 6.0)
        assert s.estimate(explored_point) is not None

    def test_estimates_converge_to_truth(self):
        s = session()
        s.focus({"week": 4.0})
        s.run(12)
        estimate = s.estimate({"week": 4.0})
        # True mean is 4; the progressive estimate should be near it.
        assert estimate.expectation == pytest.approx(4.0, abs=1.0)

    def test_tick_reports_shape(self):
        s = session()
        s.focus({"week": 4.0})
        report = s.tick()
        assert report.task in (
            TASK_REFINEMENT,
            TASK_VALIDATION,
            TASK_EXPLORATION,
        )
        assert report.samples_drawn >= 0


class TestMappedEstimates:
    def test_mapped_point_estimate_tracks_its_own_mean(self):
        s = session()
        s.focus({"week": 2.0})
        s.run(6)
        s.focus({"week": 8.0})
        estimate = s.estimate({"week": 8.0})
        # Week 8's estimate comes from week 2's basis through the mapping,
        # but must reflect week 8's distribution (mean 8).
        assert estimate.expectation == pytest.approx(8.0, abs=1.5)
