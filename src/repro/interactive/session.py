"""The online what-if engine (paper section 5, Algorithm 5).

Online Jigsaw rapidly produces progressively refined metrics for the small
set of parameter points the user is looking at.  Each tick performs one
pick-evaluate-update round:

* **refinement** — draw fresh samples for the focused point and fold them
  (through M⁻¹) into its basis distribution, sharpening every correlated
  point's estimate at once;
* **validation** — re-draw samples whose ids the basis already holds and
  check them against the mapped basis values, effectively extending the
  point's fingerprint; a mismatch re-runs FindMatch (or spawns a new basis);
* **exploration** — prefetch a nearby point: fingerprint it and attach it to
  a basis so that when the user scrubs to it an estimate is already there.

Sample bookkeeping uses the global seed bank's sample ids; a basis always
holds a contiguous id prefix, so "ids not in the basis" are simply the next
``chunk`` ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.blackbox.base import ParamKey, Params, param_key
from repro.core.adaptive import AdaptiveBudget
from repro.core.basis import BasisStore
from repro.core.estimator import Estimator, MetricSet
from repro.core.fingerprint import Fingerprint
from repro.core.mapping import AffineMapping, Mapping
from repro.core.seeds import DEFAULT_SEED_BANK, SeedBank
from repro.errors import InteractiveError
from repro.interactive.heuristics import (
    AdjacentExploreHeuristic,
    RoundRobinTaskHeuristic,
    TASK_EXPLORATION,
    TASK_REFINEMENT,
    TASK_VALIDATION,
)
from repro.scenario.space import ParameterSpace

Simulation = Callable[[Params, int], float]


@dataclass
class PointState:
    """Per-point bookkeeping: known samples, attached basis, and mapping."""

    params: Dict[str, float]
    samples: Dict[int, float] = field(default_factory=dict)
    basis_id: Optional[int] = None
    mapping: Optional[Mapping] = None

    @property
    def sample_count(self) -> int:
        return len(self.samples)


@dataclass
class TickReport:
    """What one event-loop iteration did (for tests and UIs)."""

    task: str
    point: Dict[str, float]
    samples_drawn: int
    rebound: bool = False


class InteractiveSession:
    """Progressive estimation of scenario outputs for points of interest."""

    def __init__(
        self,
        simulation: Simulation,
        space: ParameterSpace,
        fingerprint_size: int = 10,
        chunk: int = 10,
        basis_store: Optional[BasisStore] = None,
        seed_bank: Optional[SeedBank] = None,
        estimator: Optional[Estimator] = None,
        task_heuristic: Optional[RoundRobinTaskHeuristic] = None,
        explore_heuristic: Optional[AdjacentExploreHeuristic] = None,
        adaptive: Optional[AdaptiveBudget] = None,
    ):
        if fingerprint_size < 2:
            raise InteractiveError(
                "interactive fingerprints need at least 2 samples"
            )
        if chunk < 1:
            raise InteractiveError("chunk must be positive")
        self.simulation = simulation
        self.space = space
        self.fingerprint_size = fingerprint_size
        self.chunk = chunk
        self.estimator = estimator or Estimator()
        # A repro.api.Session stands in for its store wherever a
        # basis_store is accepted (duck-typed: no core -> api import).
        if basis_store is not None and hasattr(
            basis_store, "resolve_basis_store"
        ):
            basis_store = basis_store.resolve_basis_store()
        # `is None`, not `or`: an empty BasisStore is falsy (len() == 0)
        # and `or` would silently replace a caller's configured store.
        if basis_store is None:
            basis_store = BasisStore(estimator=self.estimator)
        self.store = basis_store
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK
        self.task_heuristic = task_heuristic or RoundRobinTaskHeuristic()
        self.explore_heuristic = explore_heuristic or AdjacentExploreHeuristic(
            space
        )
        self.adaptive = adaptive
        self._states: Dict[ParamKey, PointState] = {}
        self._focus: Optional[Dict[str, float]] = None

    # -- user-facing controls --------------------------------------------------

    def focus(self, point: Mapping[str, float]) -> None:
        """Point the session at a new parameter valuation (GUI slider move)."""
        self._focus = dict(point)
        state = self._state(self._focus)
        if state.basis_id is None:
            self._bootstrap(state)

    def tick(self) -> TickReport:
        """One pick-evaluate-update iteration of Algorithm 5."""
        if self._focus is None:
            raise InteractiveError("no focused point; call focus() first")
        task = self.task_heuristic.next_task(self._focus)
        if task == TASK_REFINEMENT:
            return self._do_refinement(self._focus)
        if task == TASK_VALIDATION:
            return self._do_validation(self._focus)
        if task == TASK_EXPLORATION:
            return self._do_exploration(self._focus)
        raise InteractiveError(f"task heuristic produced unknown task {task}")

    def run(self, ticks: int) -> List[TickReport]:
        """Run several iterations (the GUI's background loop)."""
        return [self.tick() for _ in range(ticks)]

    def save_store(self, path: str, metadata=None) -> None:
        """Snapshot the session's basis store for later warm starts.

        Delegates to the unified :class:`repro.api.Session` surface
        (same snapshot format as before; saved stores load anywhere).
        """
        from repro.api import Session

        Session(self.store, seed_bank=self.seed_bank).save(
            path, metadata=metadata
        )

    def load_store(self, path: str, mmap: bool = True) -> None:
        """Warm-start the session from a saved store snapshot.

        Must be called before any point is focused: per-point states bind
        basis ids of the store they were probed against, so swapping the
        store underneath them would dangle every binding.  The loaded
        store is memory-mapped read-only; refinement and rebinding
        (:meth:`_rebind_from_scratch` included) promote copy-on-write and
        never write through to the snapshot.
        """
        from repro.api import Session

        if self._states:
            raise InteractiveError(
                "load_store must run before any point is focused; start a "
                "fresh session to switch stores"
            )
        self.store = Session.open(
            path,
            like=self.store,
            seed_bank=self.seed_bank,
            estimator=self.estimator,
            mmap=mmap,
        ).resolve_basis_store()

    def estimate(self, point: Mapping[str, float]) -> Optional[MetricSet]:
        """Current best estimate for a point, or None if never visited."""
        state = self._states.get(param_key(point))
        if state is None or state.basis_id is None:
            return None
        basis = self.store.get(state.basis_id)
        assert state.mapping is not None
        return self.store.metrics_for(basis, state.mapping)

    def sample_count(self, point: Mapping[str, float]) -> int:
        """Effective samples behind a point's estimate (its basis size)."""
        state = self._states.get(param_key(point))
        if state is None or state.basis_id is None:
            return 0
        return int(self.store.get(state.basis_id).samples.size)

    # -- internals ----------------------------------------------------------

    def _state(self, point: Mapping[str, float]) -> PointState:
        key = param_key(point)
        if key not in self._states:
            self._states[key] = PointState(params=dict(point))
        return self._states[key]

    def _draw(self, state: PointState, sample_ids: List[int]) -> np.ndarray:
        values = []
        for sample_id in sample_ids:
            value = self.simulation(
                state.params, self.seed_bank.seed(sample_id)
            )
            state.samples[sample_id] = value
            values.append(value)
        return np.asarray(values, dtype=float)

    def _bootstrap(self, state: PointState) -> None:
        """Fingerprint a fresh point and attach it to a basis (FindMatch).

        The probe runs on the store's columnar match engine — the online
        loop shares :meth:`BasisStore.match` (the single-probe form of
        ``match_batch``) with the sweep explorers, so a session over a
        large shared store pays one vectorized kernel per probe rather
        than a per-candidate Python loop.
        """
        wanted = [
            i
            for i in range(self.fingerprint_size)
            if i not in state.samples
        ]
        self._draw(state, wanted)
        fingerprint = Fingerprint(
            tuple(state.samples[i] for i in range(self.fingerprint_size))
        )
        matched = self.store.match(fingerprint)
        if matched is not None:
            basis, mapping = matched
            state.basis_id = basis.basis_id
            state.mapping = mapping
        else:
            ordered = [state.samples[i] for i in sorted(state.samples)]
            basis = self.store.add(fingerprint, np.asarray(ordered))
            state.basis_id = basis.basis_id
            state.mapping = AffineMapping(1.0, 0.0)

    def _converged(self, state: PointState) -> bool:
        """Whether the point's mapped estimate satisfies the adaptive policy.

        Evaluated on the *mapped* metrics (what the user actually sees for
        this point), so a mapping with |α| > 1 keeps refining until the
        magnified interval fits, and a contracting mapping stops earlier.
        The basis size also stops refinement at ``max_samples`` when set —
        the interactive engine has no per-point fixed budget to cap at.
        """
        if self.adaptive is None or state.basis_id is None:
            return False
        basis = self.store.get(state.basis_id)
        assert state.mapping is not None
        if (
            self.adaptive.max_samples is not None
            and basis.samples.size >= self.adaptive.max_samples
        ):
            return True
        metrics = self.store.metrics_for(basis, state.mapping)
        return self.estimator.converged(metrics, self.adaptive)

    def _do_refinement(self, point: Dict[str, float]) -> TickReport:
        """Fresh samples for the focus, recycled into its basis via M⁻¹.

        Under an adaptive budget a converged point draws nothing — the
        tick reports ``samples_drawn=0`` and the event loop's effort is
        freed for validation/exploration of other points.
        """
        state = self._state(point)
        if state.basis_id is None:
            self._bootstrap(state)
        if self._converged(state):
            return TickReport(
                task=TASK_REFINEMENT, point=dict(point), samples_drawn=0
            )
        basis = self.store.get(state.basis_id)  # type: ignore[arg-type]
        next_id = int(basis.samples.size)
        sample_ids = list(range(next_id, next_id + self.chunk))
        values = self._draw(state, sample_ids)
        assert state.mapping is not None
        try:
            inverse = state.mapping.inverse()
            self.store.extend_basis(basis.basis_id, inverse.apply_array(values))
        except Exception:
            # Non-invertible mapping: refine the point privately by
            # spawning a dedicated basis seeded with everything known.
            self._rebind_from_scratch(state)
        return TickReport(
            task=TASK_REFINEMENT,
            point=dict(point),
            samples_drawn=len(sample_ids),
        )

    def _do_validation(self, point: Dict[str, float]) -> TickReport:
        """Duplicate basis sample ids at the point; extend its fingerprint."""
        state = self._state(point)
        if state.basis_id is None:
            self._bootstrap(state)
        basis = self.store.get(state.basis_id)  # type: ignore[arg-type]
        known = set(state.samples)
        candidate_ids = [
            i for i in range(int(basis.samples.size)) if i not in known
        ][: self.chunk]
        if not candidate_ids:
            return TickReport(
                task=TASK_VALIDATION, point=dict(point), samples_drawn=0
            )
        values = self._draw(state, candidate_ids)
        assert state.mapping is not None
        expected = state.mapping.apply_array(basis.samples[candidate_ids])
        scale = max(float(np.abs(expected).max()), 1.0)
        rebound = False
        if not np.allclose(values, expected, rtol=1e-9, atol=1e-9 * scale):
            # The basis's samples no longer predict this point through the
            # recorded mapping — the basis is stale (model drift), not just
            # mis-bound.  Invalidate it so no future probe can match it.
            self._rebind_from_scratch(state, invalidate=True)
            rebound = True
        return TickReport(
            task=TASK_VALIDATION,
            point=dict(point),
            samples_drawn=len(candidate_ids),
            rebound=rebound,
        )

    def _do_exploration(self, point: Dict[str, float]) -> TickReport:
        """Prefetch an adjacent point likely to be focused next."""
        neighbor = self.explore_heuristic.next_point(point)
        if neighbor is None:
            return TickReport(
                task=TASK_EXPLORATION, point=dict(point), samples_drawn=0
            )
        state = self._state(neighbor)
        if state.basis_id is None:
            self._bootstrap(state)
            drawn = self.fingerprint_size
        elif self._converged(state):
            drawn = 0
        else:
            # Already attached: deepen its basis slightly.
            basis = self.store.get(state.basis_id)
            next_id = int(basis.samples.size)
            sample_ids = list(range(next_id, next_id + self.chunk))
            values = self._draw(state, sample_ids)
            assert state.mapping is not None
            try:
                inverse = state.mapping.inverse()
                self.store.extend_basis(
                    basis.basis_id, inverse.apply_array(values)
                )
            except Exception:
                self._rebind_from_scratch(state)
            drawn = len(sample_ids)
        return TickReport(
            task=TASK_EXPLORATION, point=dict(neighbor), samples_drawn=drawn
        )

    def _rebind_from_scratch(
        self, state: PointState, invalidate: bool = False
    ) -> None:
        """FindMatch again after a failed validation; spawn a basis if none.

        With ``invalidate=True`` (the failed-validation path) the state's
        stale basis is first *removed from the store* — a basis whose
        samples stopped predicting a bound point is stale for every point,
        so leaving it matchable would keep serving drifted answers.  Any
        other point bound to it is unbound and re-bootstraps at its next
        tick.  Without the flag (the non-invertible-mapping refinement
        path) the basis itself is fine and stays.

        A fresh basis is built from the point's contiguous sample-id prefix
        so the invariant "basis sample index == global sample id" (which
        validation relies on) keeps holding.
        """
        if invalidate and state.basis_id is not None:
            stale_id = state.basis_id
            try:
                self.store.remove(stale_id)
            except KeyError:
                pass
            for other in self._states.values():
                if other.basis_id == stale_id:
                    other.basis_id = None
                    other.mapping = None
        fingerprint = Fingerprint(
            tuple(state.samples[i] for i in range(self.fingerprint_size))
        )
        matched = self.store.match(fingerprint)
        if matched is not None:
            basis, mapping = matched
            state.basis_id = basis.basis_id
            state.mapping = mapping
            return
        prefix: List[float] = []
        index = 0
        while index in state.samples:
            prefix.append(state.samples[index])
            index += 1
        basis = self.store.add(
            fingerprint, np.asarray(prefix, dtype=float)
        )
        state.basis_id = basis.basis_id
        state.mapping = AffineMapping(1.0, 0.0)
