"""Exception hierarchy for the Jigsaw reproduction.

All library-raised exceptions derive from :class:`JigsawError` so callers can
catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class JigsawError(Exception):
    """Base class for every error raised by this library."""


class MappingError(JigsawError):
    """A mapping function could not be constructed or applied."""


class FingerprintError(JigsawError):
    """A fingerprint is malformed or incompatible with an operation."""


class IndexError_(JigsawError):
    """A fingerprint index was used inconsistently.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class EstimatorError(JigsawError):
    """Output metrics could not be computed or remapped."""


class MarkovError(JigsawError):
    """A Markov process or jump evaluation was configured incorrectly."""


class OptimizationError(JigsawError):
    """An OPTIMIZE query has no feasible answer or is ill-formed."""


class SchemaError(JigsawError):
    """A probdb schema or relation was used inconsistently."""


class QueryError(JigsawError):
    """A probdb logical query plan is invalid."""


class ParseError(JigsawError):
    """The Jigsaw query language text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class BindingError(JigsawError):
    """A parsed query references unknown models, parameters, or columns."""


class InteractiveError(JigsawError):
    """The interactive session was driven with inconsistent requests."""


class ExecutionError(JigsawError):
    """A sweep's execution infrastructure (not its math) failed.

    The branch for shard supervision: worker crashes, deadline expiries,
    and retry exhaustion.  Because shards are deterministic under the
    shared seed bank, none of these failures can change a sweep's results
    — supervision recomputes the affected shard and the replay-merge stays
    bit-identical to serial — so these errors describe *how* a sweep ran,
    never *what* it computed.
    """


class ShardError(ExecutionError):
    """Base class for per-shard supervision failures.

    Carries the shard's index in the sweep's canonical shard layout and
    the 1-based attempt number that failed.
    """

    def __init__(self, message: str, shard_index: int = -1, attempt: int = 0):
        self.shard_index = int(shard_index)
        self.attempt = int(attempt)
        super().__init__(message)


class ShardCrashError(ShardError):
    """A shard's worker died before shipping its result.

    Raised for a broken process pool (OOM kill, segfault in a native
    library, stray signal) or an injected crash fault.  Retryable: the
    shard is a pure function of its slice, so a re-run is bit-identical.
    """


class ShardTimeoutError(ShardError):
    """A shard attempt exceeded its supervision deadline.

    ``timeout`` records the policy deadline in seconds (``None`` when the
    hang was injected into an in-process run, which enforces no real
    deadline).
    """

    def __init__(
        self,
        message: str,
        shard_index: int = -1,
        attempt: int = 0,
        timeout=None,
    ):
        self.timeout = timeout
        super().__init__(message, shard_index=shard_index, attempt=attempt)


class ShardRetryExhaustedError(ShardError):
    """A shard failed every attempt its supervision policy allowed.

    Only raised when the policy disables graceful degradation; with
    degradation on (the default), an exhausted shard is recomputed
    in-process instead and the sweep still completes.  ``attempts`` is the
    number of attempts made; ``failures`` the classified per-attempt
    errors, in order.
    """

    def __init__(
        self,
        message: str,
        shard_index: int = -1,
        attempts: int = 0,
        failures=(),
    ):
        self.attempts = int(attempts)
        self.failures = tuple(failures)
        super().__init__(message, shard_index=shard_index, attempt=attempts)


class BackendError(JigsawError):
    """A compute backend was selected or driven inconsistently.

    Raised for unknown backend names and for backends whose optional
    dependency is not importable on this host.  Selection never falls
    back silently: a caller who asked for ``numba`` either gets numba
    or gets this error — the only *automatic* fallback is the
    self-verification degrade, which is per-instance, warned about, and
    visible in ``fast_path_status()`` / ``repro store info``.
    """


class LifecycleError(JigsawError):
    """A store lifecycle operation (eviction, invalidation, compaction)
    was configured inconsistently — e.g. an :class:`~repro.core.basis.
    EvictionPolicy` with an unknown ``keep`` ranking or negative bounds."""


class PersistError(JigsawError):
    """A basis-store snapshot could not be written or read."""


class SnapshotCorruptionError(PersistError):
    """A snapshot file is truncated, bit-damaged, or structurally broken.

    Raised before any partial state reaches a store: a load either returns
    a complete, checksum-verified store or raises this.
    """


class SnapshotCompatibilityError(PersistError):
    """A snapshot is intact but was built under an incompatible
    configuration (mapping family, index strategy, tolerances, estimator,
    or seed bank).

    Reusing such a store would be silently wrong — fingerprints are only
    comparable under one seed bank and one tolerance regime — so the load
    refuses instead.
    """


class ApiError(JigsawError):
    """A :mod:`repro.api` session request is malformed or unroutable.

    In-process :class:`~repro.api.Session` method calls raise this for
    typed misuse (unknown store name, unknown basis id, empty
    fingerprint); the generic ``handle``/``handle_batch`` dispatchers —
    which back the serving daemon — convert it into an
    ``ErrorResponse`` instead, so one bad request in a stream never
    takes down the stream.
    """


class ServeError(JigsawError):
    """The basis-store serving daemon could not start, bind, or route."""


class ProtocolError(ServeError):
    """A wire frame violates the length-prefixed JSON protocol.

    Raised for oversized frames, truncated length prefixes mid-frame,
    or payloads that are not valid UTF-8 JSON objects.  A connection
    that produced one is dropped; the daemon itself keeps serving.
    """
