"""The basis-store serving daemon: one warm snapshot, many clients.

The daemon wraps a :class:`repro.api.Session` (typically
``Session.open(snapshot)`` — the zero-copy mmap load, so the kernel
page cache is the working set and copy-on-write promotion protects the
snapshot) and serves the typed estimate / match / refine / stats
vocabulary of :mod:`repro.api.messages` over the length-prefixed JSON
socket protocol of :mod:`repro.serve.protocol`.  The lifecycle admin
kinds (:class:`~repro.api.messages.EvictRequest` /
:class:`~repro.api.messages.CompactRequest`) ride the same dispatch:
they reach :meth:`Session.handle_batch` like any other request, take
the session lock there, and apply their bound between probe runs — so
an operator can cap a long-running daemon's store without restarting
it, and in-flight probes still see a consistent store.

Architecture
------------

* an **accept thread** admits connections and starts one reader thread
  per connection;
* **reader threads** decode frames into typed requests and enqueue them
  on one admission queue (per-connection order is preserved end to
  end: one queue, one dispatcher);
* a single **dispatcher thread** drains the queue in micro-batches of
  up to ``max_batch`` requests and answers them through
  :meth:`Session.handle_batch`, which routes probe runs straight into
  :meth:`BasisStore.match_batch` — so concurrent clients get the
  columnar kernels' batched throughput while every response stays
  bitwise what a sequential in-process call would return (the
  ``handle_batch`` invariant).

Shutdown
--------

``stop(drain=True)`` (and SIGTERM under :meth:`serve_forever`) is
graceful: the listener closes, readers sweep already-sent frames off
their sockets and exit, the dispatcher answers everything admitted,
connections close, and — when a ``save_path`` is configured — the
session flushes through the atomic snapshot writer.  A client that got
a response got a true one; a client mid-send sees a clean EOF.  The
:class:`~repro.api.messages.ShutdownRequest` kind triggers the same
sequence without a signal (for tests and orchestrators).
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import List, Optional, Tuple

from repro.api.messages import (
    ErrorResponse,
    ShutdownRequest,
    ShutdownResponse,
    decode_request,
    encode_response,
)
from repro.api.session import Session
from repro.errors import ProtocolError, ServeError
from repro.serve.protocol import recv_frame, send_frame

#: Largest micro-batch the dispatcher forms from the admission queue.
DEFAULT_MAX_BATCH = 64

#: Reader poll interval: how quickly an idle connection notices a drain
#: (and the final buffered-frame sweep window during one).
_READ_POLL_SECONDS = 0.1


class _Connection:
    """One client socket plus its ordered-send lock."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.send_lock = threading.Lock()
        self.alive = True

    def send(self, body: dict) -> None:
        with self.send_lock:
            if not self.alive:
                return
            try:
                send_frame(self.sock, body)
            except OSError:
                self.alive = False

    def close(self) -> None:
        with self.send_lock:
            self.alive = False
            try:
                self.sock.close()
            except OSError:
                pass


class BasisServer:
    """Serve one warm session over a socket (see module docstring)."""

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        save_path: Optional[str] = None,
    ):
        if max_batch < 1:
            raise ServeError("max_batch must be at least 1")
        self.session = session
        self.max_batch = int(max_batch)
        self.save_path = save_path
        self._host = host
        self._port = int(port)
        self._listener: Optional[socket.socket] = None
        self._queue: "queue.Queue[Tuple[_Connection, object]]" = (
            queue.Queue()
        )
        self._connections: List[_Connection] = []
        self._connections_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._draining = threading.Event()
        self._finish = threading.Event()
        self.shutdown_requested = threading.Event()
        self._started = False
        self._stopped = False
        self._interrupted = False
        #: Requests answered over this server's lifetime (diagnostics).
        self.requests_served = 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound (resolves ``port=0``)."""
        if self._listener is None:
            raise ServeError("server is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "BasisServer":
        """Bind, listen, and start the accept/dispatch threads."""
        if self._started:
            raise ServeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self._host, self._port))
        except OSError as error:
            listener.close()
            raise ServeError(
                f"cannot bind {self._host}:{self._port}: {error}"
            ) from error
        listener.listen(128)
        listener.settimeout(_READ_POLL_SECONDS)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True
        )
        self._accept_thread.start()
        self._dispatcher.start()
        self._started = True
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain`` answer everything admitted first.

        Idempotent.  With ``drain=False`` queued requests are dropped
        (connections just close) — the store is still flushed if a
        ``save_path`` is configured, atomically either way.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        self._draining.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join()
        # Readers notice the drain flag at their next poll, sweep any
        # frames their peer already sent, and exit.
        for thread in self._threads:
            thread.join()
        if not drain:
            # Drop whatever is still queued, unanswered.
            try:
                while True:
                    self._queue.get_nowait()
            except queue.Empty:
                pass
        # The dispatcher empties the queue before honoring _finish.
        self._finish.set()
        if self._dispatcher is not None:
            self._dispatcher.join()
        with self._connections_lock:
            for connection in self._connections:
                connection.close()
            self._connections.clear()
        if self.save_path is not None:
            self.session.save(self.save_path)

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into a graceful drain (main thread only).

        Installed *before* any readiness announcement, so an
        orchestrator that signals the instant it sees the daemon is up
        still gets a drain, not the default kill.
        """
        import signal

        def on_term(signum, frame):
            self.shutdown_requested.set()

        def on_int(signum, frame):
            self._interrupted = True
            self.shutdown_requested.set()

        signal.signal(signal.SIGTERM, on_term)
        signal.signal(signal.SIGINT, on_int)

    def serve_forever(self, install_signals: bool = True) -> int:
        """Block until a shutdown is requested; returns the exit code.

        SIGTERM (and a :class:`ShutdownRequest` frame) drain and return
        0; SIGINT drains and returns 130, preserving the CLI's
        interrupt contract.  Pass ``install_signals=False`` if
        :meth:`install_signal_handlers` already ran (or signals are
        managed elsewhere).
        """
        if install_signals:
            self.install_signal_handlers()
        self.shutdown_requested.wait()
        self.stop(drain=True)
        return 130 if self._interrupted else 0

    def __enter__(self) -> "BasisServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # -- threads ------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._draining.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            sock.settimeout(_READ_POLL_SECONDS)
            # Frames are small; Nagle + delayed ACK would add ~40ms.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(sock)
            with self._connections_lock:
                self._connections.append(connection)
            thread = threading.Thread(
                target=self._read_loop,
                args=(connection,),
                name="serve-read",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _read_loop(self, connection: _Connection) -> None:
        """Decode frames into requests until EOF, error, or drain.

        During a drain the loop keeps consuming frames the peer already
        sent (they are admitted work) and exits at the first quiet
        poll — so "drain in-flight" covers everything on the wire at
        shutdown time, not just what happened to be queued.
        """
        while True:
            try:
                body = recv_frame(connection.sock)
            except socket.timeout:
                if self._draining.is_set():
                    break
                continue
            except (ProtocolError, OSError):
                # Framing is unrecoverable mid-stream: drop the peer.
                connection.alive = False
                break
            if body is None:
                break
            try:
                request = decode_request(body)
            except ProtocolError as error:
                # A well-framed but malformed request answers in order
                # and the stream continues.
                request = ErrorResponse(
                    code="ProtocolError",
                    message=str(error),
                    request_id=body.get("id"),
                )
            self._queue.put((connection, request))

    def _dispatch_loop(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=_READ_POLL_SECONDS)
            except queue.Empty:
                if self._finish.is_set():
                    return
                continue
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            self._serve_batch(batch)

    def _serve_batch(self, batch) -> None:
        """Answer one admission batch through the session facade."""
        pending: List[Tuple[_Connection, object]] = []
        to_serve: List[object] = []
        serve_slots: List[int] = []
        for position, (connection, item) in enumerate(batch):
            if isinstance(item, ErrorResponse):
                # Pre-answered by the reader (malformed request).
                pending.append((connection, item))
                continue
            if isinstance(item, ShutdownRequest):
                pending.append(
                    (
                        connection,
                        ShutdownResponse(
                            draining=True, request_id=item.request_id
                        ),
                    )
                )
                self.shutdown_requested.set()
                continue
            pending.append((connection, None))
            to_serve.append(item)
            serve_slots.append(len(pending) - 1)
        if to_serve:
            responses = self.session.handle_batch(to_serve)
            for slot, response in zip(serve_slots, responses):
                pending[slot] = (pending[slot][0], response)
        for connection, response in pending:
            connection.send(encode_response(response))
            self.requests_served += 1


def serve_snapshot(
    path: str,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch: int = DEFAULT_MAX_BATCH,
    save_path: Optional[str] = None,
    mmap: bool = True,
) -> BasisServer:
    """Open a snapshot as a warm session and start a server over it."""
    session = Session.open(path, mmap=mmap)
    return BasisServer(
        session,
        host=host,
        port=port,
        max_batch=max_batch,
        save_path=save_path,
    ).start()
