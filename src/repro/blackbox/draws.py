"""The shared standard-draw cache (the batch engine's reuse lever).

Every variate a built-in black box draws is a location-scale transform of a
*standard* draw (z for normals, e for exponentials, u for uniforms), and the
standard draws depend only on ``(seed, stream position)`` — never on the
parameter point.  Under Jigsaw's fixed global seed bank this means every
parameter point in a sweep consumes the *same* standard-draw matrix; caching
it turns per-point simulation into pure affine array arithmetic, which is
the same shared-seed property the paper's fingerprints exploit.

:class:`StandardDrawCache` memoizes ``matrix(seeds, kinds)`` — the
``(len(seeds), len(kinds))`` standard draws of the given kind sequence for
each seed — under a bounded float budget with least-recently-used eviction.
Evictions are safe: entries are recomputed (bit-identically) on demand.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.blackbox import fastrng

_CacheKey = Tuple[bytes, Tuple[str, ...]]


class StandardDrawCache:
    """Memoized standard-draw matrices keyed by (seed bank slice, kinds).

    ``backend`` pins the compute backend used for cache fills (default:
    the process-active one, resolved per fill).  The cache key is
    backend-independent on purpose: every backend returns the same bits
    or degrades trying, so entries are interchangeable across backends.
    """

    def __init__(self, max_floats: int = 16_000_000, backend=None):
        if max_floats < 0:
            raise ValueError("max_floats must be non-negative")
        self.max_floats = max_floats
        self.backend = backend
        self._matrices: "OrderedDict[_CacheKey, np.ndarray]" = OrderedDict()
        self._floats_cached = 0
        self._hits = 0
        self._misses = 0

    def matrix(
        self, rng_seeds: np.ndarray, kinds: Sequence[str]
    ) -> np.ndarray:
        """Standard draws for every (seed, kind position); cached.

        The returned array is shared — callers must not mutate it.
        """
        seeds = np.ascontiguousarray(
            np.atleast_1d(np.asarray(rng_seeds, dtype=np.uint64))
        )
        kinds = tuple(kinds)
        key = (seeds.tobytes(), kinds)
        cached = self._matrices.get(key)
        if cached is not None:
            self._hits += 1
            self._matrices.move_to_end(key)
            return cached
        self._misses += 1
        matrix = fastrng.draw_matrix(seeds, kinds, backend=self.backend)
        matrix.setflags(write=False)
        self._store(key, matrix)
        return matrix

    def _store(self, key: _CacheKey, matrix: np.ndarray) -> None:
        if matrix.size > self.max_floats:
            return  # too large to ever cache; hand it back uncached
        self._matrices[key] = matrix
        self._floats_cached += matrix.size
        while self._floats_cached > self.max_floats and self._matrices:
            _, evicted = self._matrices.popitem(last=False)
            self._floats_cached -= evicted.size

    def clear(self) -> None:
        self._matrices.clear()
        self._floats_cached = 0
        self._hits = 0
        self._misses = 0

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._matrices),
            "floats_cached": self._floats_cached,
            "hits": self._hits,
            "misses": self._misses,
        }

    def __len__(self) -> int:
        return len(self._matrices)


_DERIVED_SEED_CACHE: "OrderedDict[Tuple[bytes, int], np.ndarray]" = OrderedDict()
_DERIVED_SEED_CACHE_LIMIT = 256


def derived_seed_array_cached(rng_seeds: np.ndarray, salt: int) -> np.ndarray:
    """Memoized ``derive_seed_array(rng_seeds, salt)``.

    Composite boxes re-derive the same salted sub-streams for every
    parameter point of a sweep; like standard draws, the derivation depends
    only on (seed bank slice, salt), so one computation serves the sweep.
    """
    from repro.core.seeds import derive_seed_array

    seeds = np.ascontiguousarray(
        np.atleast_1d(np.asarray(rng_seeds, dtype=np.uint64))
    )
    key = (seeds.tobytes(), int(salt))
    cached = _DERIVED_SEED_CACHE.get(key)
    if cached is not None:
        _DERIVED_SEED_CACHE.move_to_end(key)
        return cached
    derived = derive_seed_array(seeds, salt)
    derived.setflags(write=False)
    _DERIVED_SEED_CACHE[key] = derived
    while len(_DERIVED_SEED_CACHE) > _DERIVED_SEED_CACHE_LIMIT:
        _DERIVED_SEED_CACHE.popitem(last=False)
    return derived


DEFAULT_DRAW_CACHE = StandardDrawCache()
"""Process-wide cache shared by every built-in box's batch path.

Sharing is semantically free: entries are pure functions of
``(seed, kind sequence)``, the same invariant that makes the global seed
bank shareable across parameter points.
"""


def initialize_worker(
    max_floats: Optional[int] = None, backend=None
) -> None:
    """Reset the process-wide draw caches inside a freshly forked worker.

    Fork-based sweep workers inherit the parent's populated caches as
    copy-on-write pages; dropping the inherited entries up front (a) keeps
    per-worker memory bounded by the worker's own budget instead of
    ``workers x parent cache`` and (b) makes worker cache stats describe
    worker work.  Semantically a no-op: every entry is a pure function of
    its key and is recomputed bit-identically on demand.

    ``backend`` (a registered name) re-selects the parent's compute
    backend explicitly with fresh per-worker verification state — the
    fork would inherit the parent's instance anyway, but a worker should
    self-test on its own host image rather than trust inherited flags.
    """
    if max_floats is not None:
        if max_floats < 0:
            raise ValueError("max_floats must be non-negative")
        DEFAULT_DRAW_CACHE.max_floats = max_floats
    if backend is not None:
        from repro.core.backend import use_backend

        use_backend(backend)
    DEFAULT_DRAW_CACHE.clear()
    _DERIVED_SEED_CACHE.clear()
