#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation as text.

Usage::

    python benchmarks/run_all.py [--scale quick|paper] [--out results.txt]

``quick`` (default) runs laptop-sized sweeps in a few minutes; ``paper``
runs the paper-sized configurations (1000 samples/point over the full
parameter spaces) and can take an hour or more in pure Python.  Either way
the *shapes* — who wins, by roughly what factor, where crossovers fall —
are the reproduced quantity; absolute times depend on the host.
"""

import argparse
import sys
import time

from repro.bench.figures import (
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default="quick",
        help="workload sizes: quick (minutes) or paper (hour+)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="run a single experiment, e.g. --only fig9",
    )
    args = parser.parse_args(argv)

    runners = {
        "fig7": lambda: run_fig7(args.scale),
        "fig8": lambda: run_fig8(args.scale).to_text(),
        "fig9": lambda: run_fig9(args.scale).to_text(),
        "fig10": lambda: run_fig10(args.scale).to_text(),
        "fig11": lambda: run_fig11(args.scale).to_text(),
        "fig12": lambda: run_fig12(args.scale).to_text(),
    }
    if args.only is not None:
        if args.only not in runners:
            parser.error(
                f"unknown experiment {args.only!r}; choose from "
                f"{sorted(runners)}"
            )
        runners = {args.only: runners[args.only]}

    sections = []
    for name, runner in runners.items():
        started = time.perf_counter()
        print(f"running {name} ({args.scale} scale)...", file=sys.stderr)
        text = runner()
        elapsed = time.perf_counter() - started
        sections.append(f"{text}\n  [regenerated in {elapsed:.1f}s]")

    report = ("\n\n" + "=" * 76 + "\n\n").join(sections)
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
        print(f"\nwritten to {args.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
