"""Fingerprints of stochastic black-box functions (paper section 3.1).

    fingerprint({σk}, F(Pi)) = {θk = F(Pi, σk) | 0 ≤ k < m}

A fingerprint is the vector of a stochastic function's outputs under the
fixed global seed sequence.  Because the seeds are shared, two parameter
points whose output distributions are related by a mapping function produce
fingerprints related *entrywise* by that same mapping — turning a hard
distribution-matching problem into a cheap vector comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.core.seeds import SeedBank
from repro.errors import FingerprintError

#: Relative tolerance used when two fingerprint entries are compared; IEEE
#: arithmetic noise in exact affine relationships sits around 1e-12, so 1e-9
#: accepts true matches while rejecting genuinely different distributions.
DEFAULT_REL_TOL = 1e-9
DEFAULT_ABS_TOL = 1e-12

#: Decimal places normalized entries are rounded to when used as hash keys.
#: Normal forms are O(1) by construction, so absolute rounding is safe.
NORMAL_FORM_DECIMALS = 6


def values_close(
    a: float,
    b: float,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """Tolerant equality used throughout fingerprint validation."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


@dataclass(frozen=True)
class Fingerprint:
    """An immutable m-entry output vector under the global seed set."""

    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) == 0:
            raise FingerprintError("a fingerprint needs at least one entry")

    @property
    def size(self) -> int:
        return len(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> float:
        return self.values[index]

    def __iter__(self):
        return iter(self.values)

    def scale(self) -> float:
        """Characteristic magnitude used to set relative comparison scales."""
        return max(abs(v) for v in self.values) or 1.0

    def is_constant(self, rel_tol: float = DEFAULT_REL_TOL) -> bool:
        """True when every entry equals the first (up to tolerance)."""
        first = self.values[0]
        tol_scale = max(self.scale(), 1.0)
        return all(
            abs(v - first) <= rel_tol * tol_scale for v in self.values
        )

    def first_distinct_pair(
        self, rel_tol: float = DEFAULT_REL_TOL
    ) -> Optional[Tuple[int, int]]:
        """Indices of the first two meaningfully different entries.

        Algorithm 2 anchors the candidate linear map on two distinct values;
        returns ``None`` for constant fingerprints (no such pair exists).
        """
        tol_scale = max(self.scale(), 1.0)
        first = self.values[0]
        for j in range(1, len(self.values)):
            if abs(self.values[j] - first) > rel_tol * tol_scale:
                return (0, j)
        return None

    def normal_form(
        self, rel_tol: float = DEFAULT_REL_TOL
    ) -> Tuple[float, ...]:
        """Canonical affine-invariant form (paper section 3.2, Normalization).

        The paper suggests mapping "the first two distinct sample values" to
        two constants; anchoring on the *minimum and maximum* instead keeps
        every normalized entry inside [0, 1], so the fixed-precision
        rounding that makes the tuple a hash key is uniformly conditioned
        (first-two anchoring can scale entries arbitrarily and destabilize
        the key).  A negative-α image reflects the form (x -> 1 - x), so the
        lexicographically smaller of the form and its reflection is chosen,
        making the key invariant under *any* non-degenerate affine map.
        Constant fingerprints normalize to all zeros.
        """
        if self.first_distinct_pair(rel_tol) is None:
            return tuple(0.0 for _ in self.values)
        lowest = min(self.values)
        highest = max(self.values)
        span = highest - lowest
        forward = tuple(
            _stable_round((v - lowest) / span) for v in self.values
        )
        reflected = tuple(_stable_round(1.0 - v) for v in forward)
        return min(forward, reflected)

    def sid_order(self, descending: bool = False) -> Tuple[int, ...]:
        """Sample-identifier order (paper section 3.2, Sorted SID).

        The sequence of entry indices after sorting entries by value (ties
        broken by ascending index, making the key deterministic).
        Monotonically increasing mappings preserve this order exactly; a
        decreasing mapping turns a source's ascending order into its image's
        ``descending`` order.  Ties must break by ascending index in *both*
        orders — a mapping sends equal entries to equal entries, so the tie
        order is never reversed (plain list reversal would get this wrong).
        """
        if descending:
            indexed = sorted(
                range(len(self.values)),
                key=lambda k: (-self.values[k], k),
            )
        else:
            indexed = sorted(
                range(len(self.values)),
                key=lambda k: (self.values[k], k),
            )
        return tuple(indexed)

    def __repr__(self) -> str:
        preview = ", ".join(f"{v:.4g}" for v in self.values[:4])
        suffix = ", ..." if len(self.values) > 4 else ""
        return f"Fingerprint([{preview}{suffix}], m={len(self.values)})"


def _stable_round(value: float) -> float:
    rounded = round(value, NORMAL_FORM_DECIMALS)
    # Avoid distinct -0.0 / 0.0 keys.
    return 0.0 if rounded == 0 else rounded


def compute_fingerprint(
    sample: Callable[[int], float],
    seed_bank: SeedBank,
    size: int,
) -> Fingerprint:
    """Evaluate ``sample(σk)`` for the first ``size`` seeds of the bank."""
    if size < 1:
        raise FingerprintError("fingerprint size must be at least 1")
    return Fingerprint(
        tuple(float(sample(seed)) for seed in seed_bank.seeds(size))
    )


def fingerprint_from_values(values: Sequence[float]) -> Fingerprint:
    """Build a fingerprint from precomputed output values."""
    return Fingerprint(tuple(float(v) for v in values))
