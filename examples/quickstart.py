#!/usr/bin/env python
"""Quickstart: the paper's Figure 1 query, end to end.

Declares a parameterized what-if scenario in the Jigsaw SQL dialect, runs
the batch explorer with fingerprint reuse, and answers the OPTIMIZE clause:
the latest pair of server purchase dates that keeps the expected risk of
overload under a threshold.

Run:  python examples/quickstart.py
"""

from repro import ScenarioRunner, compile_query
from repro.blackbox import BlackBoxRegistry, CapacityModel, DemandModel
from repro.scenario import boolean_column_families

QUERY = """
-- DEFINITION --
DECLARE PARAMETER @current_week AS RANGE 0 TO 24 STEP BY 2;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 24 STEP BY 8;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 24 STEP BY 8;
DECLARE PARAMETER @feature_release AS SET (6, 12, 18);
SELECT DemandModel(@current_week, @feature_release) AS demand,
       CapacityModel(@current_week, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
-- BATCH MODE --
OPTIMIZE SELECT @feature_release, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.10
GROUP BY feature_release, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
"""


def main():
    # 1. Register the stochastic black-box models the query refers to.
    registry = BlackBoxRegistry()
    registry.register(DemandModel(), "DemandModel")
    registry.register(
        CapacityModel(base_capacity=12.0, purchase_volume=9.0),
        "CapacityModel",
    )

    # 2. Parse + bind the query text.
    bound = compile_query(QUERY, registry)
    scenario = bound.scenario
    print(
        f"scenario: {len(scenario.space)} parameter points, "
        f"columns {list(scenario.output_columns)}"
    )

    # 3. Explore the parameter space with fingerprint reuse.  The boolean
    #    overload column only matches under the identity mapping.
    runner = ScenarioRunner(
        scenario,
        samples_per_point=200,
        fingerprint_size=10,
        column_families=boolean_column_families(scenario, ("overload",)),
    )
    result = runner.run()
    stats = result.stats
    naive_rounds = stats.points_total * runner.samples_per_point
    print(
        f"explored {stats.points_total} points with "
        f"{stats.rounds_executed} simulation rounds "
        f"(naive would need {naive_rounds}; "
        f"{naive_rounds / stats.rounds_executed:.1f}x saved), "
        f"{stats.bases_created} basis distributions, "
        f"reuse {stats.reuse_fraction:.0%}"
    )

    # 4. Answer the OPTIMIZE clause.
    answer = result.optimize(bound.selector)
    print(f"feasible purchase plans: {len(answer.feasible_groups)}")
    if answer.best is None:
        print("no plan keeps overload risk under the threshold")
        return
    best = answer.best_parameters()
    print(
        "best plan: buy at weeks "
        f"{best['purchase1']:.0f} and {best['purchase2']:.0f} "
        f"with the feature released at week {best['feature_release']:.0f}"
    )
    worst_week_risk = max(answer.best.constraint_values)
    print(f"worst-week expected overload risk: {worst_week_risk:.3f}")


if __name__ == "__main__":
    main()
