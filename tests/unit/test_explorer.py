"""Unit tests for batch parameter exploration with fingerprint reuse."""

import pytest

from repro.blackbox.base import param_key
from repro.blackbox.demand import DemandModel
from repro.blackbox.rng import DeterministicRng
from repro.core.explorer import NaiveExplorer, ParameterExplorer
from repro.core.seeds import SeedBank


def linear_family_simulation(params, seed):
    """All points are affine images of one another: one basis suffices."""
    rng = DeterministicRng(seed)
    return rng.normal(params["mu"], params["sigma"])


def two_code_paths_simulation(params, seed):
    """Two genuinely different shapes: exactly two bases."""
    rng = DeterministicRng(seed)
    first = rng.normal()
    second = rng.normal()
    if params["mode"] < 1.0:
        return first
    return first * second + first


SPACE_LINEAR = [
    {"mu": float(mu), "sigma": float(sigma)}
    for mu in range(5)
    for sigma in (1.0, 2.0)
]


class TestReuse:
    def test_single_basis_for_affine_family(self):
        explorer = ParameterExplorer(
            linear_family_simulation, samples_per_point=60
        )
        result = explorer.run(SPACE_LINEAR)
        assert result.stats.bases_created == 1
        assert result.stats.points_reused == len(SPACE_LINEAR) - 1

    def test_two_bases_for_two_code_paths(self):
        points = [{"mode": 0.0}, {"mode": 1.0}, {"mode": 0.0}, {"mode": 1.0}]
        explorer = ParameterExplorer(
            two_code_paths_simulation, samples_per_point=40
        )
        result = explorer.run(points)
        assert result.stats.bases_created == 2
        assert result.stats.points_reused == 2

    def test_reused_point_records_mapping_and_basis(self):
        explorer = ParameterExplorer(
            linear_family_simulation, samples_per_point=60
        )
        result = explorer.run(SPACE_LINEAR)
        reused = [p for p in result.points.values() if p.reused]
        assert reused
        for point in reused:
            assert point.mapping is not None
            assert point.basis_id == 0

    def test_sample_accounting(self):
        explorer = ParameterExplorer(
            linear_family_simulation,
            samples_per_point=60,
            fingerprint_size=10,
        )
        result = explorer.run(SPACE_LINEAR)
        expected_fingerprint = 10 * len(SPACE_LINEAR)
        expected_full = (60 - 10) * result.stats.bases_created
        assert result.stats.fingerprint_samples == expected_fingerprint
        assert result.stats.full_samples == expected_full
        assert result.stats.samples_drawn == (
            expected_fingerprint + expected_full
        )

    def test_reuse_fraction(self):
        explorer = ParameterExplorer(
            linear_family_simulation, samples_per_point=60
        )
        result = explorer.run(SPACE_LINEAR)
        assert result.stats.reuse_fraction == pytest.approx(
            (len(SPACE_LINEAR) - 1) / len(SPACE_LINEAR)
        )


class TestEquivalenceWithNaive:
    """Paper section 6.2: Jigsaw outputs are equivalent to full simulation."""

    def test_metrics_match_naive_exactly(self):
        bank = SeedBank(99)
        explorer = ParameterExplorer(
            linear_family_simulation, samples_per_point=80, seed_bank=bank
        )
        naive = NaiveExplorer(
            linear_family_simulation, samples_per_point=80, seed_bank=bank
        )
        jigsaw_result = explorer.run(SPACE_LINEAR)
        naive_result = naive.run(SPACE_LINEAR)
        for point in SPACE_LINEAR:
            jig = jigsaw_result.metrics(point)
            ref = naive_result[param_key(point)]
            assert jig.approx_equals(ref, rel_tol=1e-8), point

    def test_demand_model_equivalence(self):
        box = DemandModel()
        points = [
            {"current_week": float(week), "feature_release": 6.0}
            for week in range(12)
        ]
        explorer = ParameterExplorer(box.sample, samples_per_point=50)
        naive = NaiveExplorer(box.sample, samples_per_point=50)
        jigsaw_result = explorer.run(points)
        naive_result = naive.run(points)
        for point in points:
            assert jigsaw_result.metrics(point).approx_equals(
                naive_result[param_key(point)], rel_tol=1e-8
            )


class TestValidation:
    def test_fingerprint_size_bounds(self):
        with pytest.raises(ValueError):
            ParameterExplorer(linear_family_simulation, fingerprint_size=0)
        with pytest.raises(ValueError):
            ParameterExplorer(
                linear_family_simulation,
                samples_per_point=5,
                fingerprint_size=10,
            )

    def test_result_lookup_api(self):
        explorer = ParameterExplorer(
            linear_family_simulation, samples_per_point=30
        )
        result = explorer.run(SPACE_LINEAR[:3])
        assert len(result) == 3
        point = SPACE_LINEAR[0]
        assert result.result(point).params == point
        assert result.metrics(point).count == 30
