"""The global seed set {σk} (paper section 3.1).

Jigsaw's fingerprinting hinges on evaluating every stochastic black box under
the *same, fixed* sequence of pseudorandom seeds.  The paper generates the
seed set once at initialization and holds it constant for the lifetime of the
system; :class:`SeedBank` plays that role here.

Seeds are derived from a single master seed with a splitmix-style mixer so
that (a) the k-th seed is a pure function of ``(master_seed, k)``, (b) seeds
for different indices are statistically independent, and (c) per-step Markov
seeds (section 4) can be derived from an instance seed without collisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Union

import numpy as np

_MASK64 = (1 << 64) - 1

# SplitMix64 constants (Steele, Lea & Flood 2014): a fixed bijective mixer
# gives us reproducible, well-distributed derived seeds with no RNG state.
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def mix64(value: int) -> int:
    """SplitMix64 finalizer: bijectively scramble a 64-bit integer."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * _MIX1) & _MASK64
    value = ((value ^ (value >> 27)) * _MIX2) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def derive_seed(*components: int) -> int:
    """Combine integer components into one well-mixed 64-bit seed.

    Deterministic, order-sensitive, and collision-resistant for the modest
    component counts used here (seed index, step index, instance index).
    """
    state = 0x243F6A8885A308D3  # pi fractional bits; arbitrary fixed IV
    for component in components:
        state = mix64((state + _GAMMA) ^ mix64(component & _MASK64))
    return state


_IV64 = np.uint64(0x243F6A8885A308D3)
_GAMMA64 = np.uint64(_GAMMA)
_MIX1_64 = np.uint64(_MIX1)
_MIX2_64 = np.uint64(_MIX2)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)

SeedComponents = Union[int, Sequence[int], np.ndarray]


def mix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`mix64` over a uint64 array (bit-identical)."""
    values = np.asarray(values, dtype=np.uint64)
    values = (values ^ (values >> _S30)) * _MIX1_64
    values = (values ^ (values >> _S27)) * _MIX2_64
    return values ^ (values >> _S31)


def derive_seed_array(*components: SeedComponents) -> np.ndarray:
    """Vectorized :func:`derive_seed`: scalar and array components broadcast.

    ``derive_seed_array(master, np.arange(n))[k] == derive_seed(master, k)``
    exactly; used by the batch sampling paths so seed derivation stays out
    of per-sample Python loops.
    """
    arrays = [np.atleast_1d(np.asarray(c, dtype=np.uint64)) for c in components]
    shape = np.broadcast_shapes(*(a.shape for a in arrays))
    state = np.broadcast_to(_IV64, shape)
    for component in arrays:
        state = mix64_array((state + _GAMMA64) ^ mix64_array(component))
    return np.asarray(state, dtype=np.uint64)


@dataclass(frozen=True)
class SeedSlice:
    """A picklable handle on a contiguous run of a bank's seed sequence.

    Parallel sweep workers receive slices instead of materialized arrays:
    a slice is three integers on the wire, and :meth:`materialize` rebuilds
    the exact ``seed_array(count, start)`` vector (bit-identical, since
    every seed is a pure function of ``(master_seed, index)``).
    """

    master_seed: int
    start: int
    count: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.count < 0:
            raise ValueError("start and count must be non-negative")

    @property
    def bank(self) -> "SeedBank":
        return SeedBank(self.master_seed)

    def materialize(self) -> np.ndarray:
        """The slice's seeds as a uint64 array (σ_start .. σ_start+count-1)."""
        return self.bank.seed_array(self.count, start=self.start)

    def __len__(self) -> int:
        return self.count


class SeedBank:
    """A fixed, indexable sequence of i.i.d. pseudorandom seeds.

    ``seed(k)`` is the paper's σk.  Fingerprints use ``k in [0, m)``; the
    remaining Monte Carlo instances use ``k in [m, n)``, so fingerprint rounds
    double as the first ``m`` simulation rounds (section 3.1, "the fingerprint
    of F(Pi) is essentially the outputs of first m simulation rounds").
    """

    def __init__(self, master_seed: int = 0x51AC5A11):
        if master_seed < 0:
            raise ValueError("master_seed must be non-negative")
        self._master_seed = master_seed & _MASK64

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def seed(self, index: int) -> int:
        """Return σ_index, the fixed seed for simulation round ``index``."""
        if index < 0:
            raise ValueError("seed index must be non-negative")
        return derive_seed(self._master_seed, index)

    def seeds(self, count: int, start: int = 0) -> List[int]:
        """Return ``[σ_start, ..., σ_(start+count-1)]``."""
        return [self.seed(start + i) for i in range(count)]

    def seed_array(self, count: int, start: int = 0) -> np.ndarray:
        """Vectorized :meth:`seeds`: a uint64 array, bit-identical entries."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if start < 0:
            raise ValueError("start must be non-negative")
        indices = np.arange(start, start + count, dtype=np.uint64)
        return derive_seed_array(self._master_seed, indices)

    def slice(self, count: int, start: int = 0) -> SeedSlice:
        """A picklable :class:`SeedSlice` over ``[σ_start, σ_start+count)``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if start < 0:
            raise ValueError("start must be non-negative")
        return SeedSlice(self._master_seed, start, count)

    def step_seed_array(
        self, instance_indices: np.ndarray, step: int
    ) -> np.ndarray:
        """Vectorized :meth:`step_seed` for many instances at one step."""
        if step < 0:
            raise ValueError("step must be non-negative")
        indices = np.asarray(instance_indices, dtype=np.uint64)
        return derive_seed_array(self._master_seed, indices, step + 1)

    def step_seed_matrix(
        self, instance_count: int, steps: int, start_step: int = 0
    ) -> np.ndarray:
        """(steps, instances) matrix of per-step seeds, bit-identical to
        :meth:`step_seed` — the Markov runners' block-planning input."""
        if instance_count < 1:
            raise ValueError("instance_count must be positive")
        if steps < 0 or start_step < 0:
            raise ValueError("steps and start_step must be non-negative")
        indices = np.arange(instance_count, dtype=np.uint64)[None, :]
        step_ids = np.arange(
            start_step + 1, start_step + steps + 1, dtype=np.uint64
        )[:, None]
        return derive_seed_array(self._master_seed, indices, step_ids)

    def iter_seeds(self, start: int = 0) -> Iterator[int]:
        """Yield σ_start, σ_start+1, ... without bound."""
        index = start
        while True:
            yield self.seed(index)
            index += 1

    def step_seed(self, index: int, step: int) -> int:
        """Seed for instance ``index`` at Markov-chain ``step`` (section 4).

        Every step of the chain needs fresh randomness, but instance ``index``
        must remain reproducible, so the step seed is a pure function of
        (master, index, step).
        """
        if step < 0:
            raise ValueError("step must be non-negative")
        return derive_seed(self._master_seed, index, step + 1)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SeedBank)
            and other._master_seed == self._master_seed
        )

    def __hash__(self) -> int:
        return hash(("SeedBank", self._master_seed))

    def __repr__(self) -> str:
        return f"SeedBank(master_seed={self._master_seed:#x})"


DEFAULT_SEED_BANK = SeedBank()
"""Module-level bank used when callers do not supply one explicitly."""
