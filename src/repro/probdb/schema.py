"""Relational schemas for the Monte Carlo PDB substrate (paper section 2.1).

MCDB-style systems represent each random table on disk by its schema plus the
black-box functions that generate realizations of uncertain attributes; this
module provides the deterministic half of that representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import SchemaError

#: Supported column types.  The substrate is numeric-centric (the paper's
#: simplified black boxes emit single values) but strings are supported for
#: dimension-style columns such as user names.
COLUMN_TYPES = ("float", "int", "bool", "str")


@dataclass(frozen=True)
class Column:
    """One attribute: a name and a declared type."""

    name: str
    type: str = "float"

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.type not in COLUMN_TYPES:
            raise SchemaError(
                f"unknown column type {self.type!r}; choose from "
                f"{COLUMN_TYPES}"
            )

    def coerce(self, value: object) -> object:
        """Coerce a raw value to this column's type, validating it."""
        try:
            if self.type == "float":
                return float(value)  # type: ignore[arg-type]
            if self.type == "int":
                return int(value)  # type: ignore[arg-type]
            if self.type == "bool":
                return bool(value)
            return str(value)
        except (TypeError, ValueError) as error:
            raise SchemaError(
                f"value {value!r} is not coercible to column "
                f"{self.name}:{self.type}"
            ) from error


@dataclass(frozen=True)
class Schema:
    """An ordered collection of uniquely named columns."""

    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names: {sorted(duplicates)}")

    @classmethod
    def of(cls, *specs: object) -> "Schema":
        """Build a schema from Column objects or ``"name"`` /
        ``"name:type"`` strings."""
        columns = []
        for spec in specs:
            if isinstance(spec, Column):
                columns.append(spec)
            elif isinstance(spec, str):
                name, _, type_ = spec.partition(":")
                columns.append(Column(name, type_ or "float"))
            else:
                raise SchemaError(f"cannot build a column from {spec!r}")
        return cls(tuple(columns))

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def index_of(self, name: str) -> int:
        for i, column in enumerate(self.columns):
            if column.name == name:
                return i
        raise SchemaError(
            f"no column {name!r} in schema {list(self.names)}"
        )

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def __contains__(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def project(self, names: Iterable[str]) -> "Schema":
        return Schema(tuple(self.column(n) for n in names))

    def concat(self, other: "Schema") -> "Schema":
        return Schema(self.columns + other.columns)
