"""Timing and work-counting instrumentation used by the benchmark harness.

Wall-clock times in a Python reproduction of a 2011 C#/Ruby system are only
meaningful as ratios; invocation counts (how many black-box samples were
drawn) are the stable, machine-independent cost measure, so both are exposed.
"""

from __future__ import annotations

import time
from typing import Dict, Optional


class Stopwatch:
    """Context-manager stopwatch measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0


class InvocationCounter:
    """Counts named events (e.g. black-box invocations, basis matches)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def record(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"InvocationCounter({inner})"
