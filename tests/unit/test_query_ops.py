"""Unit tests for probdb logical query operators."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.probdb.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Constant,
    ParameterRef,
)
from repro.probdb.query import (
    Filter,
    GeneratorScan,
    GroupAggregate,
    Limit,
    NestedLoopJoin,
    Project,
    SingletonScan,
    TableScan,
    WorldContext,
)
from repro.probdb.relation import Relation
from repro.probdb.schema import Schema

WORLD = WorldContext(params={"week": 3.0}, world_seed=17)

PEOPLE = Relation(
    Schema.of("person_id:int", "team:str", "load"),
    [(1, "a", 10.0), (2, "a", 20.0), (3, "b", 30.0), (4, "b", 40.0)],
)


class TestScans:
    def test_table_scan(self):
        plan = TableScan(PEOPLE)
        assert plan.schema().names == ("person_id", "team", "load")
        assert len(plan.execute(WORLD)) == 4

    def test_singleton_scan(self):
        plan = SingletonScan()
        result = plan.execute(WORLD)
        assert len(result) == 1
        assert result.rows == ((),)

    def test_generator_scan(self):
        plan = GeneratorScan(
            Schema.of("n"),
            lambda world: [(world.world_seed,)],
        )
        assert plan.execute(WORLD).rows == ((17.0,),)


class TestProject:
    def test_computes_expressions(self):
        plan = Project(
            TableScan(PEOPLE),
            (("double_load", BinaryOp("*", ColumnRef("load"), Constant(2.0))),),
        )
        assert plan.execute(WORLD).column_values("double_load") == [
            20.0,
            40.0,
            60.0,
            80.0,
        ]

    def test_later_items_see_earlier_aliases(self):
        """Paper Figure 1: overload reads the capacity/demand aliases."""
        plan = Project(
            SingletonScan(),
            (
                ("demand", Constant(5.0)),
                ("capacity", Constant(3.0)),
                (
                    "overload",
                    CaseWhen(
                        BinaryOp("<", ColumnRef("capacity"), ColumnRef("demand")),
                        Constant(1.0),
                        Constant(0.0),
                    ),
                ),
            ),
        )
        result = plan.execute(WORLD)
        assert result.column_values("overload") == [1.0]

    def test_parameters_visible(self):
        plan = Project(SingletonScan(), (("w", ParameterRef("week")),))
        assert plan.execute(WORLD).column_values("w") == [3.0]

    def test_schema(self):
        plan = Project(SingletonScan(), (("a", Constant(1.0)),))
        assert plan.schema().names == ("a",)


class TestFilter:
    def test_keeps_matching_rows(self):
        plan = Filter(
            TableScan(PEOPLE),
            BinaryOp(">", ColumnRef("load"), Constant(25.0)),
        )
        assert len(plan.execute(WORLD)) == 2

    def test_schema_passthrough(self):
        plan = Filter(TableScan(PEOPLE), Constant(True))
        assert plan.schema().names == PEOPLE.schema.names


class TestGroupAggregate:
    def test_grouped_sum_avg(self):
        plan = GroupAggregate(
            TableScan(PEOPLE),
            group_by=("team",),
            aggregates=(
                ("total", "sum", ColumnRef("load")),
                ("average", "avg", ColumnRef("load")),
            ),
        )
        result = plan.execute(WORLD)
        as_dicts = {d["team"]: d for d in result.to_dicts()}
        assert as_dicts["a"]["total"] == 30.0
        assert as_dicts["b"]["average"] == 35.0

    def test_global_group(self):
        plan = GroupAggregate(
            TableScan(PEOPLE),
            group_by=(),
            aggregates=(("n", "count", ColumnRef("load")),),
        )
        assert plan.execute(WORLD).column_values("n") == [4.0]

    def test_min_max(self):
        plan = GroupAggregate(
            TableScan(PEOPLE),
            group_by=(),
            aggregates=(
                ("lo", "min", ColumnRef("load")),
                ("hi", "max", ColumnRef("load")),
            ),
        )
        row = plan.execute(WORLD).to_dicts()[0]
        assert (row["lo"], row["hi"]) == (10.0, 40.0)

    def test_unknown_aggregate_rejected(self):
        plan = GroupAggregate(
            TableScan(PEOPLE),
            group_by=(),
            aggregates=(("bad", "mode", ColumnRef("load")),),
        )
        with pytest.raises(QueryError):
            plan.execute(WORLD)

    def test_schema(self):
        plan = GroupAggregate(
            TableScan(PEOPLE),
            group_by=("team",),
            aggregates=(("total", "sum", ColumnRef("load")),),
        )
        assert plan.schema().names == ("team", "total")


class TestJoin:
    def test_cross_join(self):
        other = Relation(Schema.of("k"), [(1,), (2,)])
        plan = NestedLoopJoin(TableScan(PEOPLE), TableScan(other))
        assert len(plan.execute(WORLD)) == 8

    def test_predicate_join(self):
        other = Relation(Schema.of("wanted:int"), [(1,), (3,)])
        plan = NestedLoopJoin(
            TableScan(PEOPLE),
            TableScan(other),
            predicate=BinaryOp(
                "=", ColumnRef("person_id"), ColumnRef("wanted")
            ),
        )
        result = plan.execute(WORLD)
        assert result.column_values("person_id") == [1, 3]

    def test_duplicate_columns_rejected_by_schema(self):
        with pytest.raises(SchemaError):
            NestedLoopJoin(TableScan(PEOPLE), TableScan(PEOPLE)).schema()


class TestLimit:
    def test_prefix(self):
        plan = Limit(TableScan(PEOPLE), 2)
        assert len(plan.execute(WORLD)) == 2

    def test_zero(self):
        assert len(Limit(TableScan(PEOPLE), 0).execute(WORLD)) == 0

    def test_negative_rejected(self):
        with pytest.raises(QueryError):
            Limit(TableScan(PEOPLE), -1).execute(WORLD)
