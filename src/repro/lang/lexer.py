"""Tokenizer for the Jigsaw SQL dialect (paper Figures 1 and 5).

Handles keywords (case-insensitive), identifiers, ``@parameter`` references,
numeric literals, operators, punctuation, and ``--`` line comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ParseError

KEYWORDS = {
    "declare", "parameter", "as", "range", "to", "step", "by", "set",
    "chain", "from", "initial", "value", "select", "into", "optimize",
    "where", "group", "for", "max", "min", "graph", "over", "with",
    "case", "when", "then", "else", "end", "and", "or", "not",
    "expect", "expect_stddev", "stddev", "median", "avg", "sum", "count",
}

#: Multi-character operators first so maximal munch applies.
OPERATORS = ("<=", ">=", "<>", "<", ">", "=", "+", "-", "*", "/")
PUNCTUATION = ("(", ")", ",", ";", ":")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str  # keyword | ident | param | number | op | punct | eof
    text: str
    line: int
    column: int

    def matches(self, kind: str, text: Optional[str] = None) -> bool:
        if self.kind != kind:
            return False
        return text is None or self.text == text.lower() or self.text == text


def tokenize(source: str) -> List[Token]:
    """Convert query text to a token list ending in an ``eof`` token."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    def error(message: str) -> ParseError:
        return ParseError(message, line, column)

    while i < length:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("--", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if ch == "@":
            start = i + 1
            j = start
            while j < length and (source[j].isalnum() or source[j] == "_"):
                j += 1
            if j == start:
                raise error("'@' must be followed by a parameter name")
            tokens.append(Token("param", source[start:j], line, column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "keyword" if word.lower() in KEYWORDS else "ident"
            text = word.lower() if kind == "keyword" else word
            tokens.append(Token(kind, text, line, column))
            column += j - i
            i = j
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < length and source[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            seen_exp = False
            while j < length:
                c = source[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < length and source[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token("number", source[i:j], line, column))
            column += j - i
            i = j
            continue
        matched_operator = next(
            (op for op in OPERATORS if source.startswith(op, i)), None
        )
        if matched_operator is not None:
            tokens.append(Token("op", matched_operator, line, column))
            i += len(matched_operator)
            column += len(matched_operator)
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("punct", ch, line, column))
            i += 1
            column += 1
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", line, column))
    return tokens
