"""Deterministic load generation for the serving daemon.

Three pieces, kept separate so tests and CI can pin them
independently:

* :func:`build_fixture_session` — a seeded, self-contained basis store
  (no snapshot required) for fixtures and smoke benchmarks;
* :func:`build_request_stream` — a seeded request mix derived from a
  session's actual bases: estimate/match probes that are exact affine
  images of stored fingerprints (guaranteed warm hits), unrelated
  probes (misses), one refine per distinct basis, and periodic stats
  requests.  Same seed + same snapshot -> byte-identical stream;
* :func:`run_open_loop` — an open-loop driver: arrivals follow a seeded
  Poisson process at a target rate *independent of completions* (the
  honest way to measure a server — a closed loop would slow arrivals
  down exactly when the server struggles), dispatched over a fixed pool
  of pipelining connections.  Latency for a request counts from its
  *scheduled* arrival, so queueing delay under overload is visible.

Determinism contract (what the CI smoke gate diffs exactly): the
request mix, per-kind response counts, hit/miss counts, the summed
per-probe ``candidates_tested``, the warm-reuse fraction, and the
daemon's final ``StoreStats`` counters are functions of (snapshot,
seed, count) only — request *ordering* under concurrency cannot change
them, because probes are read-only against the store, refines target
distinct bases, and per-probe counters are order-independent (the
``match_batch`` parity invariant).  Latency and throughput are
host-dependent and reported informationally (the
``NON_DETERMINISTIC_KEYS`` convention of ``check_regression.py``).
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.messages import (
    EstimateRequest,
    EstimateResponse,
    MatchRequest,
    MatchResponse,
    RefineRequest,
    StatsRequest,
)
from repro.api.session import Session
from repro.core.basis import BasisStore
from repro.core.fingerprint import Fingerprint
from repro.errors import ServeError
from repro.serve.client import ServeClient


def build_fixture_session(
    bases: int = 12,
    fingerprint_size: int = 5,
    samples_per_basis: int = 48,
    seed: int = 20110611,
) -> Session:
    """A seeded single-store session for fixtures and smoke benches.

    Half the bases are independent random fingerprints, half are affine
    images of earlier ones (so the store has the same-shape structure
    real sweeps produce and probes can hit through non-identity
    mappings).  Fully deterministic in ``seed``.
    """
    rng = np.random.default_rng(seed)
    store = BasisStore()
    roots: List[Fingerprint] = []
    for index in range(bases):
        if roots and index % 2 == 1:
            root = roots[rng.integers(0, len(roots))]
            alpha = float(rng.uniform(1.25, 3.0))
            beta = float(rng.uniform(-2.0, 2.0))
            fingerprint = Fingerprint(
                tuple(alpha * v + beta for v in root.values)
            )
        else:
            fingerprint = Fingerprint(
                tuple(
                    float(v)
                    for v in rng.uniform(-4.0, 4.0, fingerprint_size)
                )
            )
            roots.append(fingerprint)
        samples = rng.normal(
            loc=float(fingerprint.values[0]),
            scale=1.0 + 0.1 * index,
            size=samples_per_basis,
        )
        store.add(fingerprint, samples)
    return Session(store)


def build_request_stream(
    session: Session,
    count: int,
    seed: int = 0,
    hit_fraction: float = 0.7,
    match_fraction: float = 0.25,
    refine_count: Optional[int] = None,
    stats_every: int = 64,
) -> List[object]:
    """A seeded request mix against ``session``'s actual bases.

    ``hit_fraction`` of probes are exact affine images of stored
    fingerprints (guaranteed matches under the default linear family);
    the rest are unrelated vectors (expected misses).
    ``match_fraction`` of probes ask for :class:`MatchRequest` (id +
    mapping only), the rest for the full :class:`EstimateRequest`.  One
    :class:`RefineRequest` per *distinct* basis (at most
    ``refine_count``, default bases//2) is interleaved — distinct
    targets keep the final store state independent of completion order.
    Every ``stats_every`` requests a :class:`StatsRequest` rides along.
    ``request_id`` is the stream position, so pipelined responses
    correlate.
    """
    stores = session.stores
    if not stores:
        raise ServeError("session has no stores to build a stream for")
    rng = np.random.default_rng(seed)
    per_store_bases: Dict[str, list] = {
        name: list(store.bases) for name, store in sorted(stores.items())
    }
    store_names = [
        name for name, bases in per_store_bases.items() if bases
    ]
    if not store_names:
        raise ServeError(
            "session stores are empty; a request stream needs bases "
            "to probe against"
        )
    refine_targets: List[Tuple[str, int]] = [
        (name, basis.basis_id)
        for name in store_names
        for basis in per_store_bases[name]
    ]
    if refine_count is None:
        refine_count = max(1, len(refine_targets) // 2)
    refine_targets = refine_targets[:refine_count]
    refine_positions = set(
        int(p)
        for p in rng.choice(
            max(count, 1),
            size=min(len(refine_targets), count),
            replace=False,
        )
    )

    requests: List[object] = []
    refine_cursor = 0
    for position in range(count):
        request_id = len(requests)
        if position in refine_positions:
            store_name, basis_id = refine_targets[refine_cursor]
            refine_cursor += 1
            samples = rng.normal(size=8)
            requests.append(
                RefineRequest(
                    basis_id=basis_id,
                    samples=tuple(float(v) for v in samples),
                    store=store_name,
                    request_id=request_id,
                )
            )
            continue
        store_name = store_names[rng.integers(0, len(store_names))]
        bases = per_store_bases[store_name]
        base = bases[rng.integers(0, len(bases))]
        if rng.random() < hit_fraction:
            alpha = float(rng.uniform(0.5, 4.0))
            beta = float(rng.uniform(-3.0, 3.0))
            values = tuple(
                alpha * v + beta for v in base.fingerprint.values
            )
        else:
            values = tuple(
                float(v)
                for v in rng.uniform(-50.0, 50.0, base.fingerprint.size)
            )
        if rng.random() < match_fraction:
            requests.append(
                MatchRequest(
                    fingerprint=values,
                    store=store_name,
                    request_id=request_id,
                )
            )
        else:
            requests.append(
                EstimateRequest(
                    fingerprint=values,
                    store=store_name,
                    request_id=request_id,
                )
            )
        if stats_every and (position + 1) % stats_every == 0:
            requests.append(StatsRequest(request_id=len(requests)))
    return requests


@dataclass
class LoadResult:
    """One open-loop run: responses plus timing, split by determinism."""

    responses: List[object]
    #: Seconds from *scheduled* arrival to response, per request.
    latencies: List[float]
    elapsed_seconds: float
    rate: float
    concurrency: int

    def deterministic_counters(self) -> Dict[str, int]:
        """The exactly-reproducible half (see module docstring)."""
        by_kind: Dict[str, int] = {}
        hits = misses = 0
        candidates_tested = 0
        for response in self.responses:
            by_kind[response.kind] = by_kind.get(response.kind, 0) + 1
            if isinstance(response, (MatchResponse, EstimateResponse)):
                if response.matched:
                    hits += 1
                else:
                    misses += 1
                candidates_tested += response.candidates_tested
        errors = by_kind.get("error", 0)
        counters = {
            "requests": len(self.responses),
            "hits": hits,
            "misses": misses,
            "candidates_tested": candidates_tested,
            "errors": errors,
        }
        for kind in sorted(by_kind):
            counters[f"kind_{kind}"] = by_kind[kind]
        return counters

    def warm_reuse_fraction(self) -> float:
        probes = sum(
            1
            for r in self.responses
            if isinstance(r, (MatchResponse, EstimateResponse))
        )
        if probes == 0:
            return 0.0
        hits = sum(
            1
            for r in self.responses
            if isinstance(r, (MatchResponse, EstimateResponse))
            and r.matched
        )
        return hits / probes

    def summarize(self) -> dict:
        """Bench document fragment: deterministic counters + timing."""
        return {
            "rate": self.rate,
            "concurrency": self.concurrency,
            "counters": self.deterministic_counters(),
            "warm_reuse_fraction": self.warm_reuse_fraction(),
            # Host-dependent; informational only (never exact-gated).
            "seconds": self.elapsed_seconds,
            "throughput_rps": (
                len(self.responses) / self.elapsed_seconds
                if self.elapsed_seconds > 0
                else 0.0
            ),
            "latency_p50_ms": _percentile_ms(self.latencies, 50.0),
            "latency_p99_ms": _percentile_ms(self.latencies, 99.0),
        }


def _percentile_ms(latencies: Sequence[float], pct: float) -> float:
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = int(np.ceil(pct / 100.0 * len(ordered))) - 1
    return ordered[max(0, min(rank, len(ordered) - 1))] * 1000.0


@dataclass
class _Slot:
    """Bookkeeping for one in-flight request on one connection."""

    position: int
    scheduled: float


def run_open_loop(
    host: str,
    port: int,
    requests: Sequence[object],
    rate: float = 500.0,
    concurrency: int = 4,
    seed: int = 0,
    timeout: float = 60.0,
) -> LoadResult:
    """Drive the daemon with open-loop Poisson arrivals.

    ``rate`` is the target arrival rate (requests/second); interarrival
    gaps are seeded exponentials, so the schedule is reproducible even
    though actual wall clocks are not.  Arrivals round-robin over
    ``concurrency`` pipelining connections: each worker sends its
    request at the scheduled instant (or as soon as it can — falling
    behind *is* the overload signal) and a paired receiver loop collects
    in-order responses.  Latency is measured from the scheduled arrival,
    so queueing shows up in p99 instead of silently stretching the run.
    """
    if concurrency < 1:
        raise ServeError("concurrency must be at least 1")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=len(requests))
    arrivals = np.cumsum(gaps)
    # Round-robin assignment keeps per-connection streams deterministic.
    assignments: List[List[Tuple[int, float]]] = [
        [] for _ in range(concurrency)
    ]
    for position, arrival in enumerate(arrivals):
        assignments[position % concurrency].append(
            (position, float(arrival))
        )

    responses: List[Optional[object]] = [None] * len(requests)
    latencies: List[Optional[float]] = [None] * len(requests)
    failures: List[BaseException] = []
    start_barrier = threading.Barrier(concurrency + 1)

    def worker(worker_index: int) -> None:
        plan = assignments[worker_index]
        if not plan:
            start_barrier.wait()
            return
        client = ServeClient(host, port, timeout=timeout)
        try:
            client.connect()
        except BaseException as error:
            failures.append(error)
            try:
                start_barrier.abort()
            except threading.BrokenBarrierError:
                pass
            return
        # The sender keeps the arrival clock; a paired receiver records
        # each completion the moment it arrives (responses come back in
        # send order on one connection), so latency is response time,
        # not when the sender got around to reading.
        in_flight: "queue_module.Queue[Optional[_Slot]]" = (
            queue_module.Queue()
        )

        def receive() -> None:
            try:
                while True:
                    slot = in_flight.get()
                    if slot is None:
                        return
                    responses[slot.position] = client.recv()
                    latencies[slot.position] = max(
                        0.0,
                        time.perf_counter() - t_zero - slot.scheduled,
                    )
            except BaseException as error:
                failures.append(error)

        receiver = threading.Thread(
            target=receive, name=f"loadgen-recv-{worker_index}"
        )
        try:
            start_barrier.wait()
            receiver.start()
            for position, scheduled in plan:
                delay = t_zero + scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                client.send(requests[position])
                in_flight.put(
                    _Slot(position=position, scheduled=scheduled)
                )
        except BaseException as error:  # surfaced to the caller below
            failures.append(error)
            try:
                start_barrier.abort()
            except threading.BrokenBarrierError:
                pass
        finally:
            in_flight.put(None)
            if receiver.is_alive() or receiver.ident is not None:
                receiver.join()
            client.close()

    threads = [
        threading.Thread(
            target=worker, args=(index,), name=f"loadgen-{index}"
        )
        for index in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    t_zero = time.perf_counter() + 0.05
    try:
        start_barrier.wait()
    except threading.BrokenBarrierError:
        pass
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t_zero
    if failures:
        raise ServeError(
            f"load generation failed: {failures[0]!r}"
        ) from failures[0]
    missing = [p for p, r in enumerate(responses) if r is None]
    if missing:
        raise ServeError(
            f"{len(missing)} requests went unanswered "
            f"(first: {missing[0]})"
        )
    return LoadResult(
        responses=list(responses),
        latencies=[lat for lat in latencies if lat is not None],
        elapsed_seconds=elapsed,
        rate=rate,
        concurrency=concurrency,
    )


def expected_responses(
    session: Session, requests: Sequence[object]
) -> List[object]:
    """The in-process ground truth for a request stream.

    Serves the stream sequentially through ``session.handle`` — the
    reference the daemon's answers must equal bitwise (used by the
    parity suite and the smoke gate's hit/miss accounting).
    """
    return [session.handle(request) for request in requests]
