"""Recursive-descent parser for the Jigsaw query dialect.

Grammar (statements end with ``;``; keywords case-insensitive)::

    script     := statement*
    statement  := declare | select | optimize | graph
    declare    := DECLARE PARAMETER @name AS
                  ( RANGE num TO num STEP BY num
                  | SET '(' num (',' num)* ')'
                  | CHAIN ident FROM @name ':' expr INITIAL VALUE num ) ';'
    select     := SELECT item (',' item)*
                  [FROM '(' select ')'] [INTO ident] ';'
    item       := expr [AS ident]
    optimize   := OPTIMIZE SELECT @name (',' @name)* FROM ident
                  [WHERE constraint (AND constraint)*]
                  GROUP BY ident (',' ident)*
                  FOR (MAX|MIN) @name (',' (MAX|MIN) @name)* ';'
    constraint := (MAX|MIN|AVG|SUM) '(' metric ident ')' cmp num
    metric     := EXPECT | EXPECT_STDDEV | STDDEV | MIN | MAX | MEDIAN
    graph      := GRAPH OVER @name series (',' series)* ';'
    series     := metric ident [WITH ident*]
    expr       := or-expression with comparison, +,-,*,/, unary -, NOT,
                  CASE WHEN ... THEN ... ELSE ... END, calls, parens
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.lang.ast import (
    AggregateNode,
    BinaryNode,
    CallNode,
    CaseNode,
    ChainSpec,
    ConstraintClause,
    DeclareParameter,
    ExprNode,
    GraphSeries,
    GraphStatement,
    Identifier,
    NumberLit,
    ObjectiveClause,
    OptimizeStatement,
    ParamNode,
    RangeSpec,
    Script,
    SelectItem,
    SelectStatement,
    SetSpec,
    Statement,
    UnaryNode,
)
from repro.lang.lexer import Token, tokenize

_METRIC_KEYWORDS = ("expect", "expect_stddev", "stddev", "median")
_AGGREGATE_KEYWORDS = ("max", "min", "avg", "sum")
_COMPARISON_OPS = ("<", "<=", ">", ">=", "=", "<>")


class Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._position = 0

    # -- cursor helpers ------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._position + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self._position += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._peek().matches(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if not token.matches(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {token.text or token.kind!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # -- entry points --------------------------------------------------------

    def parse_script(self) -> Script:
        script = Script()
        while self._peek().kind != "eof":
            script.statements.append(self.parse_statement())
        return script

    def parse_statement(self) -> Statement:
        token = self._peek()
        if token.matches("keyword", "declare"):
            return self._parse_declare()
        if token.matches("keyword", "select"):
            return self._parse_select()
        if token.matches("keyword", "optimize"):
            return self._parse_optimize()
        if token.matches("keyword", "graph"):
            return self._parse_graph()
        raise self._error(
            f"expected a statement, found {token.text or token.kind!r}"
        )

    # -- DECLARE PARAMETER ----------------------------------------------------

    def _parse_declare(self) -> DeclareParameter:
        self._expect("keyword", "declare")
        self._expect("keyword", "parameter")
        name = self._expect("param").text
        self._expect("keyword", "as")
        if self._accept("keyword", "range"):
            start = self._parse_number()
            self._expect("keyword", "to")
            stop = self._parse_number()
            self._expect("keyword", "step")
            self._expect("keyword", "by")
            step = self._parse_number()
            spec = RangeSpec(start, stop, step)
        elif self._accept("keyword", "set"):
            self._expect("punct", "(")
            members = [self._parse_number()]
            while self._accept("punct", ","):
                members.append(self._parse_number())
            self._expect("punct", ")")
            spec = SetSpec(tuple(members))
        elif self._accept("keyword", "chain"):
            source_column = self._expect("ident").text
            self._expect("keyword", "from")
            driver = self._expect("param").text
            self._expect("punct", ":")
            offset_expr = self.parse_expression()
            self._expect("keyword", "initial")
            self._expect("keyword", "value")
            initial = self._parse_number()
            spec = ChainSpec(source_column, driver, offset_expr, initial)
        else:
            raise self._error("expected RANGE, SET, or CHAIN")
        self._expect("punct", ";")
        return DeclareParameter(name, spec)

    def _parse_number(self) -> float:
        negative = bool(self._accept("op", "-"))
        token = self._expect("number")
        value = float(token.text)
        return -value if negative else value

    # -- SELECT ----------------------------------------------------------------

    def _parse_select(self, nested: bool = False) -> SelectStatement:
        self._expect("keyword", "select")
        items = [self._parse_select_item()]
        while self._accept("punct", ","):
            items.append(self._parse_select_item())
        subquery: Optional[SelectStatement] = None
        source_table: Optional[str] = None
        if self._accept("keyword", "from"):
            if self._accept("punct", "("):
                subquery = self._parse_select(nested=True)
                self._expect("punct", ")")
            else:
                source_table = self._expect("ident").text
        into: Optional[str] = None
        if self._accept("keyword", "into"):
            into = self._expect("ident").text
        if not nested:
            self._expect("punct", ";")
        return SelectStatement(tuple(items), subquery, into, source_table)

    def _parse_select_item(self) -> SelectItem:
        expression = self.parse_expression()
        alias: Optional[str] = None
        if self._accept("keyword", "as"):
            alias = self._expect("ident").text
        elif isinstance(expression, Identifier):
            alias = expression.name
        return SelectItem(expression, alias)

    # -- OPTIMIZE ----------------------------------------------------------------

    def _parse_optimize(self) -> OptimizeStatement:
        self._expect("keyword", "optimize")
        self._expect("keyword", "select")
        select_params = [self._expect("param").text]
        while self._accept("punct", ","):
            select_params.append(self._expect("param").text)
        self._expect("keyword", "from")
        source_table = self._expect("ident").text
        constraints: List[ConstraintClause] = []
        if self._accept("keyword", "where"):
            constraints.append(self._parse_constraint())
            while self._accept("keyword", "and"):
                constraints.append(self._parse_constraint())
        self._expect("keyword", "group")
        self._expect("keyword", "by")
        group_by = [self._expect("ident").text]
        while self._accept("punct", ","):
            group_by.append(self._expect("ident").text)
        self._expect("keyword", "for")
        objectives = [self._parse_objective()]
        while self._accept("punct", ","):
            objectives.append(self._parse_objective())
        self._expect("punct", ";")
        return OptimizeStatement(
            select_params=tuple(select_params),
            source_table=source_table,
            constraints=tuple(constraints),
            group_by=tuple(group_by),
            objectives=tuple(objectives),
        )

    def _parse_constraint(self) -> ConstraintClause:
        aggregate_token = self._peek()
        if not any(
            aggregate_token.matches("keyword", k) for k in _AGGREGATE_KEYWORDS
        ):
            raise self._error("expected MAX, MIN, AVG, or SUM")
        aggregate = self._advance().text
        self._expect("punct", "(")
        metric_token = self._peek()
        if not any(
            metric_token.matches("keyword", k) for k in _METRIC_KEYWORDS
        ):
            raise self._error(
                "expected a metric (EXPECT, EXPECT_STDDEV, STDDEV, MEDIAN)"
            )
        metric = self._advance().text
        column = self._expect("ident").text
        self._expect("punct", ")")
        op_token = self._peek()
        if op_token.kind != "op" or op_token.text not in _COMPARISON_OPS:
            raise self._error("expected a comparison operator")
        op = self._advance().text
        threshold = self._parse_number()
        return ConstraintClause(aggregate, metric, column, op, threshold)

    def _parse_objective(self) -> ObjectiveClause:
        if self._accept("keyword", "max"):
            direction = "max"
        elif self._accept("keyword", "min"):
            direction = "min"
        else:
            raise self._error("expected MAX or MIN")
        parameter = self._expect("param").text
        return ObjectiveClause(direction, parameter)

    # -- GRAPH ----------------------------------------------------------------

    def _parse_graph(self) -> GraphStatement:
        self._expect("keyword", "graph")
        self._expect("keyword", "over")
        x_parameter = self._expect("param").text
        series = [self._parse_series()]
        while self._accept("punct", ","):
            series.append(self._parse_series())
        self._expect("punct", ";")
        return GraphStatement(x_parameter, tuple(series))

    def _parse_series(self) -> GraphSeries:
        metric_token = self._peek()
        if not any(
            metric_token.matches("keyword", k) for k in _METRIC_KEYWORDS
        ):
            raise self._error("expected a metric keyword to open a series")
        metric = self._advance().text
        column = self._expect("ident").text
        style: List[str] = []
        if self._accept("keyword", "with"):
            while self._peek().kind == "ident":
                style.append(self._advance().text)
        return GraphSeries(metric, column, tuple(style))

    # -- expressions ------------------------------------------------------------

    def parse_expression(self) -> ExprNode:
        return self._parse_or()

    def _parse_or(self) -> ExprNode:
        left = self._parse_and()
        while self._accept("keyword", "or"):
            left = BinaryNode("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ExprNode:
        left = self._parse_not()
        while self._accept("keyword", "and"):
            left = BinaryNode("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ExprNode:
        if self._accept("keyword", "not"):
            return UnaryNode("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ExprNode:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.text in _COMPARISON_OPS:
            op = self._advance().text
            return BinaryNode(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> ExprNode:
        left = self._parse_multiplicative()
        while True:
            if self._accept("op", "+"):
                left = BinaryNode("+", left, self._parse_multiplicative())
            elif self._accept("op", "-"):
                left = BinaryNode("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ExprNode:
        left = self._parse_unary()
        while True:
            if self._accept("op", "*"):
                left = BinaryNode("*", left, self._parse_unary())
            elif self._accept("op", "/"):
                left = BinaryNode("/", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ExprNode:
        if self._accept("op", "-"):
            return UnaryNode("-", self._parse_unary())
        return self._parse_primary()

    _AGGREGATE_FUNCTIONS = ("sum", "avg", "count", "max", "min")

    def _parse_primary(self) -> ExprNode:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return NumberLit(float(token.text))
        if token.kind == "param":
            self._advance()
            return ParamNode(token.text)
        if token.matches("keyword", "case"):
            return self._parse_case()
        if (
            token.kind == "keyword"
            and token.text in self._AGGREGATE_FUNCTIONS
            and self._peek(1).matches("punct", "(")
        ):
            self._advance()
            self._expect("punct", "(")
            argument = self.parse_expression()
            self._expect("punct", ")")
            return AggregateNode(token.text, argument)
        if token.kind == "ident":
            self._advance()
            if self._accept("punct", "("):
                arguments: List[ExprNode] = []
                if not self._peek().matches("punct", ")"):
                    arguments.append(self.parse_expression())
                    while self._accept("punct", ","):
                        arguments.append(self.parse_expression())
                self._expect("punct", ")")
                return CallNode(token.text, tuple(arguments))
            return Identifier(token.text)
        if token.matches("punct", "("):
            self._advance()
            inner = self.parse_expression()
            self._expect("punct", ")")
            return inner
        raise self._error(
            f"expected an expression, found {token.text or token.kind!r}"
        )

    def _parse_case(self) -> ExprNode:
        self._expect("keyword", "case")
        self._expect("keyword", "when")
        condition = self.parse_expression()
        self._expect("keyword", "then")
        then_value = self.parse_expression()
        self._expect("keyword", "else")
        else_value = self.parse_expression()
        self._expect("keyword", "end")
        return CaseNode(condition, then_value, else_value)


def parse_script(source: str) -> Script:
    """Parse a full Jigsaw query script."""
    return Parser(source).parse_script()


def parse_expression(source: str) -> ExprNode:
    """Parse a standalone expression (testing convenience)."""
    parser = Parser(source)
    expression = parser.parse_expression()
    parser._expect("eof")
    return expression
