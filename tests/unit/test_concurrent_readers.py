"""Concurrent readers over one shared warm store.

The serving daemon's admission model rests on two properties pinned
here:

* N threads hammering one shared :class:`repro.api.Session` with probe
  requests get exactly the answers a serial run produces, and the
  store's deterministic counters total the same — the session's lock
  plus the read-only-probe invariant make interleaving unobservable;
* a memory-mapped snapshot underneath it all is never written through:
  concurrent probing (and even concurrent refining, which promotes
  copy-on-write) leaves the snapshot bytes bit-identical.

This extends the persistence layer's single-threaded COW regression to
the concurrent regime the daemon actually runs in.
"""

import hashlib
import os
import threading

import pytest

from repro.api import (
    EstimateRequest,
    MatchRequest,
    RefineRequest,
    Session,
)
from repro.serve import build_fixture_session, build_request_stream

THREADS = 8


def snapshot_digest(path):
    """One digest over every byte of every file in the snapshot."""
    digest = hashlib.sha256()
    for root, _, files in sorted(os.walk(path)):
        for name in sorted(files):
            with open(os.path.join(root, name), "rb") as handle:
                digest.update(name.encode())
                digest.update(handle.read())
    return digest.hexdigest()


@pytest.fixture
def snapshot(tmp_path):
    path = str(tmp_path / "snap")
    build_fixture_session(bases=10, seed=4242).save(path)
    return path


def run_threads(session, per_thread_requests):
    """Each thread serves its own request list; returns per-thread
    responses in submission order."""
    results = [None] * len(per_thread_requests)
    errors = []

    def work(index):
        try:
            results[index] = [
                session.handle(request)
                for request in per_thread_requests[index]
            ]
        except BaseException as error:
            errors.append(error)

    threads = [
        threading.Thread(target=work, args=(index,))
        for index in range(len(per_thread_requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return results


class TestConcurrentProbes:
    def test_threaded_probe_answers_equal_serial(self, snapshot):
        shared = Session.open(snapshot)
        serial = Session.open(snapshot)
        streams = [
            [
                r
                for r in build_request_stream(
                    serial, 60, seed=thread_index, stats_every=0
                )
                if isinstance(r, (MatchRequest, EstimateRequest))
            ]
            for thread_index in range(THREADS)
        ]
        got = run_threads(shared, streams)
        for stream, responses in zip(streams, got):
            want = [serial.handle(request) for request in stream]
            assert responses == want

    def test_counters_total_the_serial_sum(self, snapshot):
        shared = Session.open(snapshot)
        serial = Session.open(snapshot)
        streams = [
            [
                r
                for r in build_request_stream(
                    serial, 40, seed=100 + i, stats_every=0
                )
                if isinstance(r, (MatchRequest, EstimateRequest))
            ]
            for i in range(THREADS)
        ]
        run_threads(shared, streams)
        for stream in streams:
            for request in stream:
                serial.handle(request)
        assert (
            shared.store().stats.as_dict()
            == serial.store().stats.as_dict()
        )

    def test_match_batch_under_shared_session(self, snapshot):
        """Concurrent handle_batch calls stay serial-equivalent."""
        shared = Session.open(snapshot)
        serial = Session.open(snapshot)
        streams = [
            build_request_stream(serial, 30, seed=7 + i, stats_every=0)
            for i in range(4)
        ]
        streams = [
            [
                r
                for r in stream
                if isinstance(r, (MatchRequest, EstimateRequest))
            ]
            for stream in streams
        ]
        results = [None] * len(streams)

        def work(index):
            results[index] = shared.handle_batch(streams[index])

        threads = [
            threading.Thread(target=work, args=(i,))
            for i in range(len(streams))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for stream, responses in zip(streams, results):
            want = [serial.handle(request) for request in stream]
            assert responses == want


class TestAccessorsUnderMutation:
    """`stats`/`stores`/`store_names`/`store()` take the session lock,
    so hammering them while refines (and lifecycle evictions) mutate the
    store never observes a torn state or raises."""

    def test_accessors_race_refines_without_tearing(self, snapshot):
        shared = Session.open(snapshot)
        basis_ids = [b.basis_id for b in shared.store().bases]
        stop = threading.Event()
        errors = []

        def hammer_accessors():
            try:
                while not stop.is_set():
                    response = shared.stats()
                    counts = response.bases
                    # A consistent snapshot: every reported store is
                    # reachable by name and sized like the counters say.
                    for name in shared.store_names:
                        assert name in counts
                        assert len(shared.store(name)) == counts[name]
                    assert set(shared.stores) == set(counts)
                    assert shared.basis_count() == sum(counts.values())
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        readers = [
            threading.Thread(target=hammer_accessors)
            for _ in range(THREADS - 2)
        ]
        for thread in readers:
            thread.start()
        try:
            for round_index in range(30):
                basis_id = basis_ids[round_index % len(basis_ids)]
                shared.handle(
                    RefineRequest(
                        basis_id=basis_id,
                        samples=(float(round_index), -1.0),
                    )
                )
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert not errors, errors

    def test_accessors_race_evictions(self, snapshot):
        from repro.api import EvictRequest

        shared = Session.open(snapshot)
        stop = threading.Event()
        errors = []

        def hammer():
            try:
                while not stop.is_set():
                    for name, store in shared.stores.items():
                        assert len(store) >= 0
                        assert name in shared.store_names
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        readers = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for bound in range(9, 2, -1):
                shared.handle(EvictRequest(max_bases=bound))
                assert shared.basis_count() <= bound
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert not errors, errors
        assert shared.basis_count() <= 3


class TestSnapshotNeverWrittenThrough:
    def test_concurrent_probes_leave_snapshot_bytes_alone(self, snapshot):
        before = snapshot_digest(snapshot)
        shared = Session.open(snapshot)
        streams = [
            [
                r
                for r in build_request_stream(
                    shared, 50, seed=i, stats_every=0
                )
                if isinstance(r, (MatchRequest, EstimateRequest))
            ]
            for i in range(THREADS)
        ]
        run_threads(shared, streams)
        assert snapshot_digest(snapshot) == before

    def test_concurrent_refines_promote_cow_not_write_through(
        self, snapshot
    ):
        before = snapshot_digest(snapshot)
        shared = Session.open(snapshot)
        basis_ids = [b.basis_id for b in shared.store().bases]
        streams = [
            [
                RefineRequest(
                    basis_id=basis_id, samples=(0.5 * i, -1.0, 2.0)
                )
            ]
            for i, basis_id in enumerate(basis_ids)
        ]
        run_threads(shared, streams)
        for basis_id in basis_ids:
            assert shared.store().get(basis_id).samples.size > 0
        assert snapshot_digest(snapshot) == before
