#!/usr/bin/env python
"""Capacity as an event table: the paper's section 2.2 SUM formulation.

"Each event is produced by a separate model, so the database engine itself
can compute the cumulative effect of the events with a simple SQL SUM
aggregate."  Instead of a monolithic CapacityModel black box, this example
stores one row per purchase event in a *random table* whose VG column draws
each purchase's stochastic coming-online delay, and lets the query engine
aggregate:

    SELECT SUM(CASE WHEN purchase_week + delay <= @current_week
               THEN cores ELSE 0 END) AS capacity
    FROM purchases;

Fingerprint reuse applies unchanged — the whole query (table instantiation
included) is the stochastic function F being fingerprinted — and the weekly
expectation curve shows the same post-purchase "structures" the monolithic
model produces.

Run:  python examples/capacity_event_table.py
"""

from repro import ParameterExplorer, compile_query
from repro.blackbox import BlackBoxRegistry, FunctionBlackBox
from repro.blackbox.rng import DeterministicRng
from repro.interactive.plotting import ascii_chart
from repro.probdb import RandomRelation, Relation, Schema, VGColumn

WEEKS = 26

#: The purchase plan under study: one row per ordered hardware batch.
PURCHASE_EVENTS = [
    # (purchase_week, cores)
    (3.0, 24.0),
    (10.0, 32.0),
    (18.0, 20.0),
]

QUERY = f"""
DECLARE PARAMETER @current_week AS RANGE 0 TO {WEEKS} STEP BY 1;
SELECT SUM(CASE WHEN purchase_week + delay <= @current_week
           THEN cores ELSE 0 END) AS capacity
FROM purchases
INTO results;
"""


def build_purchases_table() -> RandomRelation:
    base = Relation(
        Schema.of("purchase_week", "cores"),
        PURCHASE_EVENTS,
    )
    delay_model = FunctionBlackBox(
        lambda params, seed: DeterministicRng(seed).exponential(2.0),
        name="OnlineDelay",
        parameter_names=("purchase_week",),
    )
    return RandomRelation(
        base,
        [
            VGColumn(
                name="delay",
                box=delay_model,
                parameter_names=("purchase_week",),
                argument_columns=("purchase_week",),
            )
        ],
        name="purchases",
    )


def main():
    purchases = build_purchases_table()
    bound = compile_query(
        QUERY, BlackBoxRegistry(), tables={"purchases": purchases}
    )
    print(
        f"event table: {len(PURCHASE_EVENTS)} purchases, query aggregates "
        "their stochastic online dates with SQL SUM"
    )

    explorer = ParameterExplorer(
        bound.scenario.column_simulation("capacity"),
        samples_per_point=300,
        fingerprint_size=10,
    )
    points = [{"current_week": float(w)} for w in range(WEEKS + 1)]
    result = explorer.run(points)
    print(
        f"explored {result.stats.points_total} weeks with "
        f"{result.stats.samples_drawn} simulation rounds "
        f"({result.stats.bases_created} bases, "
        f"reuse {result.stats.reuse_fraction:.0%}) — weeks far from any "
        "purchase share a basis, weeks inside a coming-online transient "
        "each get their own"
    )

    weeks = [p["current_week"] for p in points]
    expectations = [result.metrics(p).expectation for p in points]
    spreads = [result.metrics(p).stddev for p in points]
    print()
    print(
        ascii_chart(
            weeks,
            {"E[capacity]": expectations, "stddev": spreads},
            width=64,
            height=14,
            title="cumulative capacity from the purchases event table",
        )
    )
    print(
        "\nnote the three ramps after weeks 3, 10, 18: each purchase's "
        "exponential online delay produces the 'structure' Figure 9 sweeps."
    )


if __name__ == "__main__":
    main()
