"""Property-based tests for fingerprint canonical forms and SID orders."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fingerprint import Fingerprint

# Rounding to 2 decimals keeps entries either exactly equal or >= 0.01
# apart, so affine images preserve tie structure; sub-resolution
# spacing (where hashing indexes legitimately false-negative) is
# covered by dedicated unit tests instead.
moderate_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
).map(lambda v: round(v, 2))

fingerprints = st.lists(moderate_floats, min_size=2, max_size=10).map(
    lambda vs: Fingerprint(tuple(vs))
)

alphas = st.floats(min_value=0.1, max_value=50.0).map(
    lambda a: round(a, 3)
).flatmap(
    lambda a: st.sampled_from([a, -a])
)
betas = st.floats(min_value=-100.0, max_value=100.0).map(lambda v: round(v, 2))


class TestNormalForm:
    @given(fp=fingerprints, alpha=alphas, beta=betas)
    @settings(max_examples=300)
    def test_affine_invariance(self, fp, alpha, beta):
        """Any affine image normalizes to (numerically) the same form — the
        property behind the Normalization index.  Entries are compared
        within the rounding quantum rather than exactly: a value landing on
        a rounding midpoint may round differently through the two arithmetic
        paths, which manifests as a rare (and benign) index false negative.
        """
        image = Fingerprint(tuple(alpha * v + beta for v in fp.values))
        for ours, theirs in zip(fp.normal_form(), image.normal_form()):
            assert abs(ours - theirs) <= 2e-6

    @given(
        values=st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=2,
            max_size=10,
        ),
        alpha=st.integers(min_value=1, max_value=20),
        beta=st.integers(min_value=-100, max_value=100),
    )
    @settings(max_examples=200)
    def test_affine_invariance_exact_for_integer_grids(
        self, values, alpha, beta
    ):
        """On integer-valued fingerprints (no rounding-midpoint hazards) the
        normal forms of affine images are *identical* hash keys."""
        fp = Fingerprint(tuple(float(v) for v in values))
        image = Fingerprint(
            tuple(float(alpha * v + beta) for v in values)
        )
        assert fp.normal_form() == image.normal_form()

    @given(fp=fingerprints)
    @settings(max_examples=200)
    def test_idempotent(self, fp):
        form = fp.normal_form()
        again = Fingerprint(form).normal_form() if any(form) else form
        assert again == form

    @given(fp=fingerprints)
    @settings(max_examples=200)
    def test_anchors(self, fp):
        """Min/max anchoring keeps every entry in [0, 1] with both anchor
        values present; constants normalize to all zeros."""
        form = fp.normal_form()
        if fp.first_distinct_pair() is None:
            assert set(form) == {0.0}
        else:
            assert all(0.0 <= v <= 1.0 for v in form)
            assert 0.0 in form
            assert 1.0 in form


class TestSidOrder:
    @given(fp=fingerprints, alpha=st.floats(min_value=0.1, max_value=50.0).map(lambda a: round(a, 3)))
    @settings(max_examples=200)
    def test_increasing_map_preserves_order(self, fp, alpha):
        image = Fingerprint(tuple(alpha * v + 3.0 for v in fp.values))
        assert fp.sid_order() == image.sid_order()

    @given(fp=fingerprints)
    @settings(max_examples=200)
    def test_order_is_permutation(self, fp):
        order = fp.sid_order()
        assert sorted(order) == list(range(fp.size))

    @given(fp=fingerprints)
    @settings(max_examples=200)
    def test_order_actually_sorts(self, fp):
        order = fp.sid_order()
        values = [fp.values[i] for i in order]
        assert values == sorted(values)

    @given(fp=fingerprints)
    @settings(max_examples=100)
    def test_strictly_monotone_transform_preserves_order(self, fp):
        image = Fingerprint(tuple(v**3 for v in fp.values))
        assert fp.sid_order() == image.sid_order()
