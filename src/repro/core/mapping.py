"""Mapping functions and mapping-function families (paper section 3.1).

A *mapping function* M witnesses the similarity of two stochastic functions:
``F(Pi) ∼M F(Pj)`` when M maps every fingerprint entry of one onto the other.
The paper's desiderata: easy to parameterize, validate, compute, and apply to
aggregate properties.  Linear maps ``M(x) = αx + β`` (Algorithm 2,
FindLinearMapping) satisfy all four and are the default; the family concept
is user-extensible, so identity-only (for boolean outputs), shift-only,
scale-only, and monotone (piecewise-linear) families are also provided.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fingerprint import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    Fingerprint,
    rows_first_distinct,
    values_close,
)
from repro.errors import MappingError


class Mapping(ABC):
    """A concrete mapping function from one distribution's domain to another's."""

    @abstractmethod
    def apply(self, value: float) -> float:
        """Map one sample value."""

    def apply_array(self, values: np.ndarray) -> np.ndarray:
        """Map a vector of sample values (defaults to elementwise apply)."""
        return np.array([self.apply(float(v)) for v in values], dtype=float)

    @abstractmethod
    def inverse(self) -> "Mapping":
        """The inverse mapping M⁻¹ (paper section 5 uses it to recycle
        samples from a point of interest back into its basis)."""

    @property
    def is_affine(self) -> bool:
        return False


@dataclass(frozen=True)
class AffineMapping(Mapping):
    """M(x) = alpha * x + beta."""

    alpha: float
    beta: float

    def apply(self, value: float) -> float:
        return self.alpha * value + self.beta

    def apply_array(self, values: np.ndarray) -> np.ndarray:
        return self.alpha * np.asarray(values, dtype=float) + self.beta

    def inverse(self) -> "AffineMapping":
        if self.alpha == 0:
            raise MappingError("degenerate affine mapping has no inverse")
        return AffineMapping(1.0 / self.alpha, -self.beta / self.alpha)

    @property
    def is_affine(self) -> bool:
        return True

    @property
    def is_identity(self) -> bool:
        return self.alpha == 1.0 and self.beta == 0.0

    def compose(self, inner: "AffineMapping") -> "AffineMapping":
        """Return M(x) = self(inner(x))."""
        return AffineMapping(
            self.alpha * inner.alpha, self.alpha * inner.beta + self.beta
        )

    def __repr__(self) -> str:
        return f"AffineMapping(x -> {self.alpha:.6g}*x + {self.beta:.6g})"


IDENTITY = AffineMapping(1.0, 0.0)


@dataclass(frozen=True)
class PiecewiseLinearMapping(Mapping):
    """Monotone interpolation mapping through fingerprint point pairs.

    Supports the Sorted-SID index path where no affine map exists but a
    monotone one does.  Between knots the map interpolates linearly; outside
    the knot range it extrapolates from the boundary segment.
    """

    knots_x: Tuple[float, ...]
    knots_y: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.knots_x) != len(self.knots_y):
            raise MappingError("knot arrays must have equal length")
        if len(self.knots_x) < 2:
            raise MappingError("piecewise mapping needs at least two knots")
        if any(
            self.knots_x[i] >= self.knots_x[i + 1]
            for i in range(len(self.knots_x) - 1)
        ):
            raise MappingError("knots_x must be strictly increasing")

    def apply(self, value: float) -> float:
        xs, ys = self.knots_x, self.knots_y
        position = bisect.bisect_left(xs, value)
        if position <= 0:
            lo, hi = 0, 1
        elif position >= len(xs):
            lo, hi = len(xs) - 2, len(xs) - 1
        else:
            lo, hi = position - 1, position
        span = xs[hi] - xs[lo]
        t = (value - xs[lo]) / span
        return ys[lo] + t * (ys[hi] - ys[lo])

    def apply_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized interpolation, bit-identical to :meth:`apply`.

        ``np.interp`` is deliberately not used: it clips instead of
        extrapolating and evaluates ``slope * (x - x_lo) + y_lo``, whose
        IEEE rounding differs from the scalar ``y_lo + t * (y_hi - y_lo)``
        form.  This mirrors the scalar arithmetic operation for operation
        (``searchsorted(side="left")`` is ``bisect_left``), so sample
        remapping through a monotone mapping stays bitwise unchanged.
        """
        values = np.asarray(values, dtype=float)
        xs = np.asarray(self.knots_x, dtype=float)
        ys = np.asarray(self.knots_y, dtype=float)
        position = np.searchsorted(xs, values, side="left")
        lo = np.where(
            position <= 0,
            0,
            np.where(position >= len(xs), len(xs) - 2, position - 1),
        )
        hi = lo + 1
        span = xs[hi] - xs[lo]
        t = (values - xs[lo]) / span
        return ys[lo] + t * (ys[hi] - ys[lo])

    def inverse(self) -> "PiecewiseLinearMapping":
        pairs = sorted(zip(self.knots_y, self.knots_x))
        ys = tuple(p[0] for p in pairs)
        xs = tuple(p[1] for p in pairs)
        if any(ys[i] >= ys[i + 1] for i in range(len(ys) - 1)):
            raise MappingError("mapping is not invertible (non-strict image)")
        return PiecewiseLinearMapping(ys, xs)


#: Result of :meth:`MappingFamily.find_matrix`: a per-row plausibility mask
#: plus a builder that materializes the exact mapping for one row.  The mask
#: is sound (``False`` guarantees :meth:`MappingFamily.find` returns None for
#: that row) but may over-approximate; ``build(row)`` gives the authoritative
#: answer for plausible rows and may still return ``None``.
MatrixFind = Tuple[np.ndarray, Callable[[int], Optional[Mapping]]]


class MappingFamily(ABC):
    """A searchable class of mapping functions (user-extensible).

    ``find`` returns a member mapping the *source* fingerprint onto the
    *target* fingerprint, or ``None``; per the paper the family must make
    this test cheap, and may additionally admit index support (a normal form
    and/or monotonicity, section 3.2).
    """

    #: Whether fingerprints admit a canonical form under this family, making
    #: the Normalization index applicable.
    supports_normal_form: bool = False

    #: Whether every member is monotone, making the Sorted-SID index exact.
    monotone_members: bool = True

    #: Whether :meth:`find_matrix` is a true vectorized kernel.  The
    #: columnar match engine in :class:`repro.core.basis.BasisStore` only
    #: engages for families that set this; user-defined families keep the
    #: scalar per-candidate path (the generic ``find_matrix`` below is
    #: correct but not faster than the loop it replaces).
    supports_find_matrix: bool = False

    @abstractmethod
    def find(
        self,
        source: Fingerprint,
        target: Fingerprint,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
    ) -> Optional[Mapping]:
        """Return M with M(source[k]) == target[k] for all k, else None."""

    def find_matrix(
        self,
        sources: np.ndarray,
        target: Fingerprint,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
        keys: Optional["object"] = None,
        backend=None,
    ) -> MatrixFind:
        """:meth:`find` against a ``(rows, m)`` stack of source fingerprints.

        The accept set and the returned mapping parameters are identical to
        calling ``find`` row by row — vectorized implementations mirror the
        scalar arithmetic operation for operation, so even the IEEE rounding
        of ``alpha``/``beta`` matches bitwise.  ``sources`` rows must already
        have the target's entry count (the columnar store guarantees this).
        ``keys``, when given, exposes precomputed per-row index-key matrices
        (``sid_asc()`` — see :class:`repro.core.columnar.CandidateKeys`) so
        monotone order checks read order statistics instead of re-sorting.
        ``backend`` selects the compute backend for the dense validation
        kernels (default: the process-active one); the generic
        per-row fallback here never launches one.
        """
        sources = np.asarray(sources, dtype=float)
        plausible = np.ones(len(sources), dtype=bool)

        def build(row: int) -> Optional[Mapping]:
            return self.find(
                Fingerprint(sources[row]), target, rel_tol, abs_tol
            )

        return plausible, build

    def find_arrays(
        self,
        source: np.ndarray,
        target: np.ndarray,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
    ) -> Optional[Mapping]:
        """:meth:`find` on raw value vectors — same accept set.

        The generic implementation wraps the vectors in fingerprints;
        families on hot paths (the Markov jump probe loop) override it with
        allocation-free array arithmetic.
        """
        return self.find(
            Fingerprint(source), Fingerprint(target), rel_tol, abs_tol
        )

    def name(self) -> str:
        return type(self).__name__


def _rows_affine_valid(
    sources: np.ndarray,
    alpha: np.ndarray,
    beta: np.ndarray,
    target: Fingerprint,
    rel_tol: float,
    abs_tol: float,
    backend=None,
) -> np.ndarray:
    """Row-wise :func:`_validates` for affine candidates.

    Literally ``alpha * source + beta`` per row — the same IEEE multiply
    and add :meth:`AffineMapping.apply_array` performs — against the same
    per-probe tolerance, so the accept set matches the scalar loop bitwise.
    ``backend`` routes the dense kernel through a compute backend
    (default: the process-active one); accelerated implementations are
    self-verified against the numpy expression.
    """
    from repro.core.backend import resolve_backend

    tol = max(rel_tol * max(target.scale(), 1.0), abs_tol)
    return resolve_backend(backend).affine_validate(
        np.asarray(sources, dtype=np.float64),
        np.asarray(alpha, dtype=np.float64),
        np.asarray(beta, dtype=np.float64),
        target.array,
        tol,
    )


class LinearMappingFamily(MappingFamily):
    """Algorithm 2: FindLinearMapping, generalized with float tolerance.

    Anchors α and β on the first two distinct source entries, then validates
    the remaining entries.  Constant-source fingerprints are handled
    explicitly (the paper's ``θ1[1] − θ1[2]`` would divide by zero): a
    constant source maps onto a constant target by pure shift.
    """

    supports_normal_form = True
    monotone_members = True  # each member is monotone (increasing or
    # decreasing); Sorted-SID probes both orders.
    supports_find_matrix = True

    def find(
        self,
        source: Fingerprint,
        target: Fingerprint,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
    ) -> Optional[AffineMapping]:
        if source.size != target.size:
            return None
        pair = source.first_distinct_pair(rel_tol)
        if pair is None:
            # Constant source: only a constant target is reachable.
            if not target.is_constant(rel_tol):
                return None
            return AffineMapping(1.0, target[0] - source[0])
        if target.is_constant(rel_tol):
            # A non-constant source reaches a constant target only through a
            # degenerate (α ≈ 0) member.  Those are excluded from the
            # family: they are not invertible (sample recycling needs M⁻¹,
            # paper section 5) and the normal-form index key is only
            # invariant under non-degenerate maps, so admitting them would
            # break the index's no-false-negative contract.
            return None
        i, j = pair
        alpha = (target[j] - target[i]) / (source[j] - source[i])
        beta = target[i] - alpha * source[i]
        candidate = AffineMapping(alpha, beta)
        if _validates(candidate, source, target, rel_tol, abs_tol):
            return candidate
        return None

    def find_matrix(
        self,
        sources: np.ndarray,
        target: Fingerprint,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
        keys: Optional["object"] = None,
        backend=None,
    ) -> MatrixFind:
        """Algorithm 2 across all candidate rows in one array pass."""
        sources = np.asarray(sources, dtype=float)
        rows = len(sources)
        alpha = np.ones(rows)
        beta = np.zeros(rows)
        valid = np.zeros(rows, dtype=bool)
        if rows:
            has_pair, position = rows_first_distinct(sources, rel_tol)
            target_array = target.array
            if target.is_constant(rel_tol):
                # Constant target: only constant sources reach it (by pure
                # shift, accepted without validation — exactly `find`).
                constant = ~has_pair
                valid[constant] = True
                beta[constant] = target_array[0] - sources[constant, 0]
            elif bool(has_pair.any()):
                fit = np.nonzero(has_pair)[0]
                anchors = position[fit]
                fit_sources = sources[fit]
                fit_alpha = (target_array[anchors] - target_array[0]) / (
                    fit_sources[np.arange(len(fit)), anchors]
                    - fit_sources[:, 0]
                )
                fit_beta = target_array[0] - fit_alpha * fit_sources[:, 0]
                alpha[fit] = fit_alpha
                beta[fit] = fit_beta
                valid[fit] = _rows_affine_valid(
                    fit_sources,
                    fit_alpha,
                    fit_beta,
                    target,
                    rel_tol,
                    abs_tol,
                    backend=backend,
                )

        def build(row: int) -> AffineMapping:
            return AffineMapping(float(alpha[row]), float(beta[row]))

        return valid, build


class IdentityMappingFamily(MappingFamily):
    """Only the identity map: reuse requires exactly equal fingerprints.

    This is all that remains for information-destroying outputs such as the
    boolean Overload model (section 6.2) — equal fingerprints still allow
    reuse, but no remapping is possible.
    """

    supports_normal_form = False  # the normal form erases the information
    # (shift/scale) that identity matching must preserve.
    monotone_members = True
    supports_find_matrix = True

    def find(
        self,
        source: Fingerprint,
        target: Fingerprint,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
    ) -> Optional[AffineMapping]:
        if source.size != target.size:
            return None
        if _validates(IDENTITY, source, target, rel_tol, abs_tol):
            return IDENTITY
        return None

    def find_matrix(
        self,
        sources: np.ndarray,
        target: Fingerprint,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
        keys: Optional["object"] = None,
        backend=None,
    ) -> MatrixFind:
        sources = np.asarray(sources, dtype=float)
        rows = len(sources)
        valid = (
            _rows_affine_valid(
                sources,
                np.ones(rows),
                np.zeros(rows),
                target,
                rel_tol,
                abs_tol,
                backend=backend,
            )
            if rows
            else np.zeros(0, dtype=bool)
        )
        return valid, lambda row: IDENTITY


class ShiftMappingFamily(MappingFamily):
    """M(x) = x + β: pure translations (uniform drift absorption)."""

    supports_normal_form = False
    monotone_members = True
    supports_find_matrix = True

    def find(
        self,
        source: Fingerprint,
        target: Fingerprint,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
    ) -> Optional[AffineMapping]:
        if source.size != target.size:
            return None
        candidate = AffineMapping(1.0, target[0] - source[0])
        if _validates(candidate, source, target, rel_tol, abs_tol):
            return candidate
        return None

    def find_arrays(
        self,
        source: np.ndarray,
        target: np.ndarray,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
    ) -> Optional[AffineMapping]:
        if source.shape != target.shape:
            return None
        beta = float(target[0]) - float(source[0])
        tol = max(
            rel_tol * max(float(np.max(np.abs(target))) or 1.0, 1.0), abs_tol
        )
        if bool((np.abs(1.0 * source + beta - target) <= tol).all()):
            return AffineMapping(1.0, beta)
        return None

    def find_matrix(
        self,
        sources: np.ndarray,
        target: Fingerprint,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
        keys: Optional["object"] = None,
        backend=None,
    ) -> MatrixFind:
        sources = np.asarray(sources, dtype=float)
        rows = len(sources)
        beta = np.zeros(rows)
        valid = np.zeros(rows, dtype=bool)
        if rows:
            beta = target.array[0] - sources[:, 0]
            valid = _rows_affine_valid(
                sources,
                np.ones(rows),
                beta,
                target,
                rel_tol,
                abs_tol,
                backend=backend,
            )
        return valid, lambda row: AffineMapping(1.0, float(beta[row]))


class ScaleMappingFamily(MappingFamily):
    """M(x) = αx: pure rescalings."""

    supports_normal_form = False
    monotone_members = True
    supports_find_matrix = True

    def find(
        self,
        source: Fingerprint,
        target: Fingerprint,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
    ) -> Optional[AffineMapping]:
        if source.size != target.size:
            return None
        anchor = None
        for k in range(source.size):
            if abs(source[k]) > abs_tol:
                anchor = k
                break
        if anchor is None:
            # Zero source maps to zero target under any α; use identity.
            if target.is_constant(rel_tol) and abs(target[0]) <= abs_tol:
                return IDENTITY
            return None
        candidate = AffineMapping(target[anchor] / source[anchor], 0.0)
        if _validates(candidate, source, target, rel_tol, abs_tol):
            return candidate
        return None

    def find_matrix(
        self,
        sources: np.ndarray,
        target: Fingerprint,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
        keys: Optional["object"] = None,
        backend=None,
    ) -> MatrixFind:
        sources = np.asarray(sources, dtype=float)
        rows = len(sources)
        alpha = np.ones(rows)
        zero_source = np.zeros(rows, dtype=bool)
        valid = np.zeros(rows, dtype=bool)
        if rows:
            nonzero = np.abs(sources) > abs_tol
            has_anchor = nonzero.any(axis=1)
            zero_source = ~has_anchor
            # Zero source rows map to a zero target under any α: identity.
            if target.is_constant(rel_tol) and abs(target[0]) <= abs_tol:
                valid[zero_source] = True
            if bool(has_anchor.any()):
                fit = np.nonzero(has_anchor)[0]
                anchors = nonzero[fit].argmax(axis=1)
                fit_sources = sources[fit]
                fit_alpha = (
                    target.array[anchors]
                    / fit_sources[np.arange(len(fit)), anchors]
                )
                alpha[fit] = fit_alpha
                valid[fit] = _rows_affine_valid(
                    fit_sources,
                    fit_alpha,
                    np.zeros(len(fit)),
                    target,
                    rel_tol,
                    abs_tol,
                    backend=backend,
                )

        def build(row: int) -> AffineMapping:
            if zero_source[row]:
                return IDENTITY
            return AffineMapping(float(alpha[row]), 0.0)

        return valid, build


class MonotoneMappingFamily(MappingFamily):
    """Any strictly monotone map, represented piecewise-linearly.

    A monotone mapping between two fingerprints exists precisely when sorting
    both produces consistent sample-identifier orders (either equal for an
    increasing map or reversed for a decreasing one) — the invariant behind
    the Sorted-SID index.  Aggregate reuse is limited: quantiles map through
    M, but means and variances require sample remapping.
    """

    supports_normal_form = False
    monotone_members = True
    supports_find_matrix = True

    def find(
        self,
        source: Fingerprint,
        target: Fingerprint,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
    ) -> Optional[Mapping]:
        if source.size != target.size:
            return None
        increasing = source.sid_order() == target.sid_order()
        decreasing = source.sid_order() == target.sid_order(descending=True)
        if not increasing and not decreasing:
            return None
        return _monotone_from_values(
            source.values, target.values, rel_tol, abs_tol
        )

    def find_matrix(
        self,
        sources: np.ndarray,
        target: Fingerprint,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
        keys: Optional["object"] = None,
        backend=None,
    ) -> MatrixFind:
        """Order-statistics screen over all rows, exact build per survivor.

        A monotone map exists only when the source's ascending SID order
        equals the target's ascending (increasing) or descending
        (decreasing) order, so one integer-matrix comparison against the
        candidates' precomputed SID-order rows prunes the stack; knot
        construction (which can still reject, e.g. equal source entries
        mapping to unequal targets) runs only for rows that pass.
        """
        sources = np.asarray(sources, dtype=float)
        rows = len(sources)
        if rows == 0:
            plausible = np.zeros(0, dtype=bool)
        else:
            if keys is not None:
                source_orders = keys.sid_asc()
            else:
                from repro.core.backend import resolve_backend

                source_orders = resolve_backend(backend).sid_orders(sources)
            target_asc = np.asarray(target.sid_order(), dtype=np.int64)
            target_desc = np.asarray(
                target.sid_order(descending=True), dtype=np.int64
            )
            plausible = (source_orders == target_asc).all(axis=1) | (
                source_orders == target_desc
            ).all(axis=1)

        def build(row: int) -> Optional[Mapping]:
            return _monotone_from_values(
                tuple(float(v) for v in sources[row]),
                target.values,
                rel_tol,
                abs_tol,
            )

        return plausible, build


def _monotone_from_values(
    source_values: Sequence[float],
    target_values: Sequence[float],
    rel_tol: float,
    abs_tol: float,
) -> Optional[Mapping]:
    """Knot construction shared by the scalar and matrix monotone paths.

    Callers have already established order consistency; this dedups equal
    source entries, verifies they map to equal targets, checks the image's
    monotonicity, and materializes the piecewise mapping.
    """
    pairs = sorted(zip(source_values, target_values))
    xs: List[float] = []
    ys: List[float] = []
    for x, y in pairs:
        if xs and values_close(x, xs[-1], rel_tol, abs_tol):
            # Equal source entries must map to equal target entries.
            if not values_close(y, ys[-1], rel_tol, abs_tol):
                return None
            continue
        xs.append(x)
        ys.append(y)
    if len(xs) < 2:
        return AffineMapping(1.0, ys[0] - xs[0]) if xs else None
    direction = ys[-1] - ys[0]
    for a, b in zip(ys, ys[1:]):
        if direction >= 0 and b < a - abs_tol:
            return None
        if direction < 0 and b > a + abs_tol:
            return None
    if direction < 0:
        ys = [-y for y in ys]
        return _NegatedPiecewise(
            PiecewiseLinearMapping(tuple(xs), tuple(ys))
        )
    return PiecewiseLinearMapping(tuple(xs), tuple(ys))


@dataclass(frozen=True)
class _NegatedPiecewise(Mapping):
    """Decreasing monotone mapping: negation of an increasing one."""

    inner: PiecewiseLinearMapping

    def apply(self, value: float) -> float:
        return -self.inner.apply(value)

    def apply_array(self, values: np.ndarray) -> np.ndarray:
        return -self.inner.apply_array(values)

    def inverse(self) -> Mapping:
        raise MappingError("inverse of negated piecewise mapping unsupported")


def _validates(
    mapping: Mapping,
    source: Fingerprint,
    target: Fingerprint,
    rel_tol: float,
    abs_tol: float,
) -> bool:
    """Check M(source[k]) == target[k] for every entry (Algorithm 2 loop)."""
    tol = max(rel_tol * max(target.scale(), 1.0), abs_tol)
    if isinstance(mapping, AffineMapping):
        # Hot path of every index probe: one vector expression instead of a
        # per-entry Python loop (same IEEE operations, same accept set).
        deviation = np.abs(mapping.apply_array(source.array) - target.array)
        return bool((deviation <= tol).all())
    return all(
        abs(mapping.apply(s) - t) <= tol
        for s, t in zip(source.values, target.values)
    )


def find_linear_mapping(
    source: Sequence[float],
    target: Sequence[float],
    rel_tol: float = DEFAULT_REL_TOL,
) -> Optional[AffineMapping]:
    """Convenience wrapper exposing paper Algorithm 2 on raw value vectors."""
    return LinearMappingFamily().find(
        Fingerprint(tuple(float(v) for v in source)),
        Fingerprint(tuple(float(v) for v in target)),
        rel_tol=rel_tol,
    )
