"""Unit tests for the probdb expression AST."""

import pytest

from repro.blackbox import FunctionBlackBox
from repro.errors import QueryError
from repro.probdb.expressions import (
    BinaryOp,
    BlackBoxCall,
    CaseWhen,
    ColumnRef,
    Constant,
    EvalContext,
    FunctionCall,
    ParameterRef,
    UnaryOp,
)

CTX = EvalContext(
    row={"x": 4.0, "y": -1.0},
    params={"week": 7.0},
    world_seed=99,
)


class TestLeaves:
    def test_constant(self):
        assert Constant(3.5).evaluate(CTX) == 3.5
        assert Constant(3.5).references() == ()

    def test_column_ref(self):
        assert ColumnRef("x").evaluate(CTX) == 4.0
        assert ColumnRef("x").references() == ("x",)

    def test_unknown_column(self):
        with pytest.raises(QueryError):
            ColumnRef("z").evaluate(CTX)

    def test_parameter_ref(self):
        assert ParameterRef("week").evaluate(CTX) == 7.0
        assert ParameterRef("week").references() == ("@week",)

    def test_unbound_parameter(self):
        with pytest.raises(QueryError):
            ParameterRef("missing").evaluate(CTX)


class TestOperators:
    @pytest.mark.parametrize(
        "op,expected",
        [
            ("+", 3.0),
            ("-", 5.0),
            ("*", -4.0),
            ("/", -4.0),
            ("<", False),
            (">", True),
            ("<=", False),
            (">=", True),
            ("=", False),
            ("<>", True),
        ],
    )
    def test_binary_ops(self, op, expected):
        expression = BinaryOp(op, ColumnRef("x"), ColumnRef("y"))
        assert expression.evaluate(CTX) == expected

    def test_logical_ops(self):
        true = Constant(True)
        false = Constant(False)
        assert BinaryOp("and", true, false).evaluate(CTX) is False
        assert BinaryOp("or", true, false).evaluate(CTX) is True

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            BinaryOp("**", Constant(1), Constant(2))

    def test_unary(self):
        assert UnaryOp("-", ColumnRef("x")).evaluate(CTX) == -4.0
        assert UnaryOp("not", Constant(False)).evaluate(CTX) is True
        with pytest.raises(QueryError):
            UnaryOp("~", Constant(1)).evaluate(CTX)

    def test_references_propagate(self):
        expression = BinaryOp("+", ColumnRef("x"), ParameterRef("week"))
        assert set(expression.references()) == {"x", "@week"}


class TestCaseWhen:
    def test_branches(self):
        expression = CaseWhen(
            BinaryOp("<", ColumnRef("y"), Constant(0.0)),
            Constant(1.0),
            Constant(0.0),
        )
        assert expression.evaluate(CTX) == 1.0

    def test_else_branch(self):
        expression = CaseWhen(Constant(False), Constant(1.0), Constant(2.0))
        assert expression.evaluate(CTX) == 2.0

    def test_references(self):
        expression = CaseWhen(
            ColumnRef("x"), ColumnRef("y"), ParameterRef("week")
        )
        assert set(expression.references()) == {"x", "y", "@week"}


class TestBlackBoxCall:
    def make_box(self):
        return FunctionBlackBox(
            lambda p, s: p["a"] * 10 + s % 7,
            name="Probe",
            parameter_names=("a",),
        )

    def test_invocation_with_argument_binding(self):
        call = BlackBoxCall(
            box=self.make_box(),
            argument_names=("a",),
            arguments=(ColumnRef("x"),),
        )
        value = call.evaluate(CTX)
        assert value >= 40.0

    def test_deterministic_per_world(self):
        call = BlackBoxCall(
            box=self.make_box(),
            argument_names=("a",),
            arguments=(Constant(1.0),),
        )
        assert call.evaluate(CTX) == call.evaluate(CTX)

    def test_salt_decorrelates_call_sites(self):
        box = self.make_box()
        first = BlackBoxCall(box, ("a",), (Constant(1.0),), call_salt=0)
        second = BlackBoxCall(box, ("a",), (Constant(1.0),), call_salt=1)
        assert first.evaluate(CTX) != second.evaluate(CTX)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(QueryError):
            BlackBoxCall(self.make_box(), ("a", "b"), (Constant(1.0),))

    def test_non_numeric_argument_rejected(self):
        call = BlackBoxCall(
            self.make_box(), ("a",), (Constant("oops"),)
        )
        with pytest.raises(QueryError):
            call.evaluate(CTX)


class TestFunctionCall:
    def test_abs(self):
        assert FunctionCall("abs", (ColumnRef("y"),)).evaluate(CTX) == 1.0

    def test_least_greatest(self):
        args = (ColumnRef("x"), ColumnRef("y"), Constant(2.0))
        assert FunctionCall("least", args).evaluate(CTX) == -1.0
        assert FunctionCall("greatest", args).evaluate(CTX) == 4.0

    def test_unknown_function(self):
        with pytest.raises(QueryError):
            FunctionCall("sqrt", (Constant(4.0),)).evaluate(CTX)
