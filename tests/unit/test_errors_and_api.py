"""Tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_jigsaw_error(self):
        for name in (
            "MappingError",
            "FingerprintError",
            "IndexError_",
            "EstimatorError",
            "MarkovError",
            "OptimizationError",
            "SchemaError",
            "QueryError",
            "ParseError",
            "BindingError",
            "InteractiveError",
            "ExecutionError",
            "ShardError",
            "ShardCrashError",
            "ShardTimeoutError",
            "ShardRetryExhaustedError",
            "PersistError",
            "SnapshotCorruptionError",
            "SnapshotCompatibilityError",
            "ApiError",
            "ServeError",
            "ProtocolError",
        ):
            error_type = getattr(errors, name)
            assert issubclass(error_type, errors.JigsawError), name

    def test_protocol_error_is_a_serve_error(self):
        assert issubclass(errors.ProtocolError, errors.ServeError)

    def test_shard_errors_are_execution_errors(self):
        for name in (
            "ShardCrashError",
            "ShardTimeoutError",
            "ShardRetryExhaustedError",
        ):
            error_type = getattr(errors, name)
            assert issubclass(error_type, errors.ShardError), name
            assert issubclass(error_type, errors.ExecutionError), name

    def test_shard_error_carries_address(self):
        error = errors.ShardCrashError(
            "worker died", shard_index=3, attempt=2
        )
        assert error.shard_index == 3
        assert error.attempt == 2

    def test_shard_timeout_carries_deadline(self):
        error = errors.ShardTimeoutError(
            "too slow", shard_index=1, attempt=1, timeout=2.5
        )
        assert error.timeout == 2.5
        assert error.shard_index == 1

    def test_retry_exhausted_carries_failure_history(self):
        failures = [
            errors.ShardCrashError("died", shard_index=0, attempt=1),
            errors.ShardTimeoutError(
                "slow", shard_index=0, attempt=2, timeout=1.0
            ),
        ]
        error = errors.ShardRetryExhaustedError(
            "gave up", shard_index=0, attempts=2, failures=failures
        )
        assert error.attempts == 2
        assert error.attempt == 2
        assert error.failures == tuple(failures)

    def test_parse_error_carries_position(self):
        error = errors.ParseError("bad token", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3" in str(error)

    def test_parse_error_without_position(self):
        error = errors.ParseError("bad token")
        assert "line" not in str(error)

    def test_catching_the_family(self):
        with pytest.raises(errors.JigsawError):
            raise errors.MarkovError("boom")


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version_string(self):
        major = int(repro.__version__.split(".")[0])
        assert major >= 1

    def test_subpackage_exports_resolve(self):
        import repro.api as api
        import repro.bench as bench
        import repro.blackbox as blackbox
        import repro.core as core
        import repro.interactive as interactive
        import repro.lang as lang
        import repro.probdb as probdb
        import repro.scenario as scenario
        import repro.serve as serve
        import repro.util as util

        for module in (
            api,
            bench,
            blackbox,
            core,
            interactive,
            lang,
            probdb,
            scenario,
            serve,
            util,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (
                    module.__name__,
                    name,
                )


class TestCliExitCodes:
    """The CLI's exit-code contract: 0 success, 2 errors, 130 interrupt."""

    def test_jigsaw_errors_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.sql"
        bad.write_text("SELECT FROM;")
        assert main(["run", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        from repro.cli import main

        assert main(["explain", "/no/such/query.sql"]) == 2
        assert "error" in capsys.readouterr().err

    def test_interrupt_exits_130(self, tmp_path, capsys):
        from repro.cli import main
        from repro.testing import FaultPlan, use_faults

        query = tmp_path / "q.sql"
        query.write_text(
            "DECLARE PARAMETER @week AS RANGE 0 TO 2 STEP BY 2;\n"
            "SELECT DemandModel(@week, 1) AS demand INTO results;\n"
        )
        with use_faults(FaultPlan({(0, 1): "interrupt"})):
            code = main(
                [
                    "run", str(query),
                    "--samples", "20",
                    "--checkpoint", str(tmp_path / "ckpt"),
                ]
            )
        assert code == 130
        assert "interrupted" in capsys.readouterr().err

    def test_store_verify_success_exits_0(self, tmp_path, capsys):
        from repro.cli import main
        from repro.serve import build_fixture_session

        snap = tmp_path / "snap"
        build_fixture_session(bases=4).save(str(snap))
        assert main(["store", "verify", str(snap)]) == 0
        assert "snapshot OK" in capsys.readouterr().out

    def test_store_info_missing_snapshot_exits_2(self, capsys):
        from repro.cli import main

        assert main(["store", "info", "/no/such/snapshot"]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_missing_snapshot_exits_2(self, capsys):
        from repro.cli import main

        assert main(["serve", "--store", "/no/such/snapshot"]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_unbindable_host_exits_2(self, tmp_path, capsys):
        from repro.cli import main
        from repro.serve import build_fixture_session

        snap = tmp_path / "snap"
        build_fixture_session(bases=2).save(str(snap))
        code = main(
            ["serve", "--store", str(snap), "--host", "203.0.113.7"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_run_warm_start_flags_still_work(self, tmp_path, capsys):
        """The pre-Session ``--store``/``--save-store`` spellings keep
        working after the entry points were rerouted through
        repro.api.Session."""
        from repro.cli import main

        query = tmp_path / "q.sql"
        query.write_text(
            "DECLARE PARAMETER @week AS RANGE 0 TO 2 STEP BY 2;\n"
            "SELECT DemandModel(@week, 1) AS demand INTO results;\n"
        )
        snap = tmp_path / "snap"
        assert (
            main(
                [
                    "run", str(query),
                    "--samples", "20",
                    "--save-store", str(snap),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "run", str(query),
                    "--samples", "20",
                    "--store", str(snap),
                ]
            )
            == 0
        )
        assert "warm store" in capsys.readouterr().out


class TestRunAllScript:
    def test_single_experiment_via_only_flag(self, tmp_path, capsys):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            import run_all
        finally:
            sys.path.pop(0)
        out_file = tmp_path / "report.txt"
        # --bench-out '' disables the bench JSON write: a test run must
        # never touch the committed BENCH_run_all.json perf baseline.
        run_all.main(
            ["--only", "fig12", "--out", str(out_file), "--bench-out", ""]
        )
        assert "Figure 12" in capsys.readouterr().out
        assert "Figure 12" in out_file.read_text()

    def test_unknown_experiment_rejected(self):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            import run_all
        finally:
            sys.path.pop(0)
        with pytest.raises(SystemExit):
            run_all.main(["--only", "fig99"])


class TestDemandObservedVariant:
    def test_observed_demand_is_deterministic(self):
        from repro.blackbox import DemandObservedMarkovStep

        model = DemandObservedMarkovStep()
        value = model.observed_demand(52.0, 5, 1234)
        assert value == model.observed_demand(52.0, 5, 1234)

    def test_demand_at_reflects_release_state(self):
        from repro.blackbox import MarkovStepModel

        model = MarkovStepModel()
        unreleased = model.demand_at(model.pending_release, 30, 77)
        released = model.demand_at(5.0, 30, 77)
        # A released feature adds demand growth for the same seed.
        assert released > unreleased
