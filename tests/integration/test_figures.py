"""Smoke + shape tests for the figure-reproduction runners.

These drive the same code paths as ``benchmarks/run_all.py`` at tiny sizes
so a plain ``pytest tests/`` run validates every experiment harness without
benchmark-scale wall clock.
"""

import pytest

from repro.bench.figures import (
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
)


class TestFig7:
    def test_table_renders_and_shapes(self):
        text = run_fig7("quick")
        assert "Figure 7" in text
        lines = [l for l in text.splitlines() if l and not l.startswith("-")]
        assert any(l.startswith("Demand") for l in lines)
        assert any(l.startswith("UserSelect") for l in lines)
        # Last column is the online/offline ratio: >1 for Demand, <1 for
        # UserSelect.
        demand_ratio = float(
            next(l for l in lines if l.startswith("Demand")).split()[-1]
        )
        users_ratio = float(
            next(l for l in lines if l.startswith("UserSelect")).split()[-1]
        )
        assert demand_ratio > 1.0
        assert users_ratio < 1.0

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            run_fig7("huge")


class TestFig8:
    def test_jigsaw_beats_full_on_every_workload(self):
        result = run_fig8("quick")
        full = dict(result.series_named("Full Evaluation").points)
        jigsaw = dict(result.series_named("Jigsaw").points)
        assert set(full) == set(jigsaw)
        for x in full:
            assert jigsaw[x] < full[x], x

    def test_to_text_includes_notes(self):
        text = run_fig8("quick").to_text()
        assert "speedup" in text
        assert "MarkovStep" in text


class TestFig9:
    def test_bases_grow_with_structure(self):
        result = run_fig9("quick", structure_sizes=(0.0, 8.0))
        notes = "\n".join(result.notes)
        assert "structure=0.0: 1 bases" in notes
        assert len(result.series) == 3
        for series in result.series:
            assert len(series.points) == 2

    def test_cost_rises_with_structure(self):
        # Same timer-noise guard as the fig10 shape test: milliseconds per
        # point on a loaded host can transiently invert, so the monotone
        # shape claim needs only the best of a few attempts.
        for attempt in range(3):
            result = run_fig9("quick", structure_sizes=(0.0, 12.0))
            array = dict(result.series_named("Array").points)
            if array[12.0] > array[0.0]:
                break
        assert array[12.0] > array[0.0]


class TestFig10And11:
    def test_fig10_relative_to_array(self):
        # Quick-scale runs time in single-digit milliseconds, so scheduler
        # noise on a loaded host can spike one ratio; the shape claim
        # (normalization beats the array scan at 40 bases) only needs the
        # best of a few attempts.
        best = float("inf")
        for _ in range(3):
            result = run_fig10("quick", basis_counts=(5, 40))
            array = dict(result.series_named("Array").points)
            assert all(v == pytest.approx(1.0) for v in array.values())
            normalization = dict(result.series_named("Normalization").points)
            best = min(best, normalization[40])
            if best < 1.05:
                break
        assert best < 1.05

    def test_fig11_series_cover_counts(self):
        result = run_fig11("quick", basis_counts=(10, 30))
        for series in result.series:
            assert sorted(series.xs) == [10, 30]
            assert all(y > 0 for y in series.ys)


class TestFig12:
    def test_advantage_decays_with_branching(self):
        result = run_fig12("quick", branchings=(1e-3, 0.1))
        naive = dict(result.series_named("Naive").points)
        jigsaw = dict(result.series_named("Jigsaw").points)
        ratio_low = naive[1e-3] / jigsaw[1e-3]
        ratio_high = naive[0.1] / jigsaw[0.1]
        assert ratio_low > ratio_high
        assert ratio_low > 3.0


class TestHarnessTable:
    def test_missing_series_lookup(self):
        result = run_fig12("quick", branchings=(1e-2,))
        with pytest.raises(KeyError):
            result.series_named("NoSuchSeries")
