"""Hypothesis round-trip fuzz for the query-language layer.

Two properties:

* **Round-trip stability** — for randomly generated ASTs,
  ``parse(unparse(ast)) == ast``, and unparsing is a fixed point
  (``unparse(parse(unparse(ast))) == unparse(ast)``).  Because the
  generators cover every statement and expression node, this pins the
  lexer, parser, and unparser against each other.
* **Binder totality** — binding any syntactically valid script either
  succeeds or raises a :class:`~repro.errors.JigsawError` subclass; no
  generated input may escape the language layer as a raw ``KeyError`` /
  ``AttributeError`` / etc.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blackbox import BlackBoxRegistry, default_registry
from repro.errors import BindingError, JigsawError, ParseError
from repro.lang import (
    bind_script,
    parse_expression,
    parse_script,
    unparse_expression,
    unparse_script,
)
from repro.lang.ast import (
    AggregateNode,
    BinaryNode,
    CallNode,
    CaseNode,
    ChainSpec,
    ConstraintClause,
    DeclareParameter,
    GraphSeries,
    GraphStatement,
    Identifier,
    NumberLit,
    ObjectiveClause,
    OptimizeStatement,
    ParamNode,
    RangeSpec,
    Script,
    SelectItem,
    SelectStatement,
    SetSpec,
    UnaryNode,
)
from repro.lang.lexer import KEYWORDS

# ---------------------------------------------------------------------------
# Generators

names = st.from_regex(r"[a-zA-Z][a-zA-Z0-9_]{0,10}", fullmatch=True).filter(
    lambda name: name.lower() not in KEYWORDS
)

# Floats whose repr the lexer tokenizes back exactly: finite, non-negative
# (negative literals are UnaryNode in expression position), and repr'd
# without a leading-dot or sign in the exponent the lexer cannot take.
literal_values = st.one_of(
    st.integers(min_value=0, max_value=10**9).map(float),
    st.floats(
        min_value=0.0,
        max_value=1e12,
        allow_nan=False,
        allow_infinity=False,
    ),
)

signed_values = st.one_of(
    literal_values, literal_values.map(lambda value: -value)
)


def _expressions():
    leaves = st.one_of(
        literal_values.map(NumberLit),
        names.map(Identifier),
        names.map(ParamNode),
    )

    def extend(children):
        binary = st.builds(
            BinaryNode,
            st.sampled_from(
                ["+", "-", "*", "/", "<", "<=", ">", ">=", "=", "<>",
                 "and", "or"]
            ),
            children,
            children,
        )
        unary = st.builds(
            UnaryNode, st.sampled_from(["-", "not"]), children
        )
        case = st.builds(CaseNode, children, children, children)
        call = st.builds(
            CallNode,
            names,
            st.lists(children, min_size=0, max_size=3).map(tuple),
        )
        aggregate = st.builds(
            AggregateNode,
            st.sampled_from(["sum", "avg", "count", "max", "min"]),
            children,
        )
        return st.one_of(binary, unary, case, call, aggregate)

    return st.recursive(leaves, extend, max_leaves=12)


expressions = _expressions()

range_specs = st.builds(
    RangeSpec, signed_values, signed_values, signed_values
)
set_specs = st.builds(
    SetSpec,
    st.lists(signed_values, min_size=1, max_size=5).map(tuple),
)
chain_specs = st.builds(
    ChainSpec, names, names, expressions, signed_values
)
declares = st.builds(
    DeclareParameter,
    names,
    st.one_of(range_specs, set_specs, chain_specs),
)


def _select_items():
    aliased = st.builds(
        SelectItem, expressions, names.map(lambda n: n)
    )
    # A bare identifier's implicit alias is itself (parser behavior).
    bare_identifier = names.map(
        lambda name: SelectItem(Identifier(name), name)
    )
    return st.one_of(aliased, bare_identifier)


def _selects(depth: int = 1):
    subquery = st.none() if depth == 0 else st.one_of(
        st.none(), st.deferred(lambda: _selects(depth - 1))
    )

    def build(items, sub, into, table):
        # Grammar: FROM is either a subquery or a table, never both.
        return SelectStatement(
            tuple(items),
            sub,
            into,
            None if sub is not None else table,
        )

    return st.builds(
        build,
        st.lists(_select_items(), min_size=1, max_size=4),
        subquery,
        st.one_of(st.none(), names),
        st.one_of(st.none(), names),
    )


constraints = st.builds(
    ConstraintClause,
    st.sampled_from(["max", "min", "avg", "sum"]),
    st.sampled_from(["expect", "expect_stddev", "stddev", "median"]),
    names,
    st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]),
    signed_values,
)

optimizes = st.builds(
    OptimizeStatement,
    st.lists(names, min_size=1, max_size=3).map(tuple),
    names,
    st.lists(constraints, min_size=0, max_size=3).map(tuple),
    st.lists(names, min_size=1, max_size=3).map(tuple),
    st.lists(
        st.builds(
            ObjectiveClause, st.sampled_from(["max", "min"]), names
        ),
        min_size=1,
        max_size=2,
    ).map(tuple),
)

graph_series = st.builds(
    GraphSeries,
    st.sampled_from(["expect", "expect_stddev", "stddev", "median"]),
    names,
    st.lists(names, min_size=0, max_size=2).map(tuple),
)

graphs = st.builds(
    GraphStatement,
    names,
    st.lists(graph_series, min_size=1, max_size=3).map(tuple),
)

statements = st.one_of(declares, _selects(), optimizes, graphs)

scripts = st.lists(statements, min_size=0, max_size=5).map(
    lambda items: Script(list(items))
)


# ---------------------------------------------------------------------------
# Round-trip stability

class TestExpressionRoundTrip:
    @given(node=expressions)
    @settings(max_examples=120, deadline=None)
    def test_parse_unparse_is_identity(self, node):
        rendered = unparse_expression(node)
        assert parse_expression(rendered) == node

    @given(node=expressions)
    @settings(max_examples=60, deadline=None)
    def test_unparse_is_fixed_point(self, node):
        rendered = unparse_expression(node)
        assert unparse_expression(parse_expression(rendered)) == rendered


class TestScriptRoundTrip:
    @given(script=scripts)
    @settings(max_examples=80, deadline=None)
    def test_parse_unparse_is_identity(self, script):
        rendered = unparse_script(script)
        reparsed = parse_script(rendered)
        assert reparsed.statements == script.statements

    @given(script=scripts)
    @settings(max_examples=30, deadline=None)
    def test_unparse_is_fixed_point(self, script):
        rendered = unparse_script(script)
        assert unparse_script(parse_script(rendered)) == rendered

    @given(script=scripts)
    @settings(max_examples=30, deadline=None)
    def test_lexer_tolerates_reformatting(self, script):
        """Whitespace layout is irrelevant: collapsing newlines reparses
        to the same statements (tokens carry no layout)."""
        rendered = unparse_script(script).replace("\n", "   ")
        assert parse_script(rendered).statements == script.statements


# ---------------------------------------------------------------------------
# Binder error paths

class TestBinderTotality:
    @given(script=scripts)
    @settings(max_examples=80, deadline=None)
    def test_binding_raises_only_jigsaw_errors(self, script):
        """Any syntactically valid script either binds or fails with a
        JigsawError — generated scripts routinely reference undeclared
        parameters, unknown tables, and unknown functions, so this drives
        the binder's error paths broadly."""
        source = unparse_script(script)
        try:
            bound = bind_script(parse_script(source), default_registry())
        except JigsawError:
            return
        assert bound.scenario is not None

    @given(name=names, other=names)
    @settings(max_examples=30, deadline=None)
    def test_undeclared_parameter_is_reported(self, name, other):
        source = (
            f"DECLARE PARAMETER @{name} AS SET (1.0);\n"
            f"SELECT @{name} + @{name}_{other} AS out INTO results;"
        )
        try:
            bind_script(parse_script(source), BlackBoxRegistry())
        except BindingError as error:
            assert "undeclared parameter" in str(error)
        except JigsawError:
            pass  # e.g. duplicate declaration when name == name_other

    @given(name=names)
    @settings(max_examples=30, deadline=None)
    def test_duplicate_declaration_rejected(self, name):
        source = (
            f"DECLARE PARAMETER @{name} AS SET (1.0);\n"
            f"DECLARE PARAMETER @{name} AS RANGE 0.0 TO 2.0 STEP BY 1.0;\n"
            f"SELECT @{name} AS out INTO results;"
        )
        try:
            bind_script(parse_script(source), BlackBoxRegistry())
            raised = False
        except BindingError:
            raised = True
        assert raised

    @given(name=names, function=names)
    @settings(max_examples=30, deadline=None)
    def test_unknown_function_rejected(self, name, function):
        source = (
            f"DECLARE PARAMETER @{name} AS SET (1.0);\n"
            f"SELECT {function}(@{name}) AS out INTO results;"
        )
        registry = BlackBoxRegistry()
        try:
            bind_script(parse_script(source), registry)
            raised = False
        except JigsawError:
            raised = True
        assert raised


class TestUnparserGuards:
    def test_negative_literal_rejected_in_expressions(self):
        try:
            unparse_expression(NumberLit(-1.0))
            raised = False
        except ParseError:
            raised = True
        assert raised

    def test_non_finite_numbers_rejected(self):
        try:
            unparse_script(
                Script([
                    DeclareParameter(
                        "p", RangeSpec(0.0, float("inf"), 1.0)
                    )
                ])
            )
            raised = False
        except ParseError:
            raised = True
        assert raised
