"""Scalar expression AST evaluated per row and per possible world.

Covers what the paper's example queries need (Figures 1 and 5): column and
parameter references, arithmetic, comparisons, ``CASE WHEN``, and calls to
registered black-box functions.  Black-box calls receive the current world's
seed, keeping the whole query deterministic per world — the property that
makes whole-query fingerprints possible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.blackbox.base import BlackBox
from repro.blackbox.draws import derived_seed_array_cached
from repro.core.seeds import derive_seed
from repro.errors import QueryError


@dataclass
class EvalContext:
    """Everything an expression may reference during evaluation.

    ``row`` — the current tuple's column values;
    ``params`` — the scenario's parameter valuation (the @variables);
    ``world_seed`` — this possible world's seed (σk for round k).
    """

    row: Mapping[str, object]
    params: Mapping[str, float]
    world_seed: int


class BatchUnsupported(Exception):
    """Raised when an expression (or its inputs) cannot batch over worlds.

    Callers catch this and fall back to the per-world scalar loop, so batch
    evaluation is a pure optimization — never a behavior change.
    """


@dataclass
class BatchEvalContext:
    """One row evaluated across *many* possible worlds at once.

    ``row`` values are scalars (world-independent inputs) or per-world
    vectors; ``world_seeds`` is the uint64 seed per world.
    """

    row: Mapping[str, object]
    params: Mapping[str, float]
    world_seeds: np.ndarray
    #: True while a CASE branch evaluates eagerly: lanes the condition
    #: discards may legitimately divide by zero there, so division defers
    #: its scalar-parity zero check — it records the offending lanes in
    #: ``case_zero_div`` instead of falling back immediately, and CaseWhen
    #: falls back only if the condition *selects* one of those lanes.
    in_case_branch: bool = False
    #: Boolean lane mask (or None) accumulating where a division inside
    #: the currently evaluating CASE branch had a zero denominator.
    case_zero_div: Optional[np.ndarray] = None


class Expression(ABC):
    """A scalar expression over (row, parameters, world)."""

    @abstractmethod
    def evaluate(self, context: EvalContext) -> object:
        """Value of this expression in the given context."""

    def evaluate_batch(self, context: BatchEvalContext) -> object:
        """Value(s) across every world: a scalar or a per-world vector.

        Each lane of the result is identical to :meth:`evaluate` under the
        corresponding world seed.  Raises :class:`BatchUnsupported` when the
        expression cannot vectorize (callers fall back to the world loop).
        """
        raise BatchUnsupported(type(self).__name__)

    @abstractmethod
    def references(self) -> Tuple[str, ...]:
        """Names of columns/parameters this expression reads (for binding)."""


@dataclass(frozen=True)
class Constant(Expression):
    value: object

    def evaluate(self, context: EvalContext) -> object:
        return self.value

    def evaluate_batch(self, context: BatchEvalContext) -> object:
        return self.value

    def references(self) -> Tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str

    def evaluate(self, context: EvalContext) -> object:
        try:
            return context.row[self.name]
        except KeyError:
            raise QueryError(
                f"unknown column {self.name!r}; row has "
                f"{sorted(context.row)}"
            ) from None

    def evaluate_batch(self, context: BatchEvalContext) -> object:
        try:
            return context.row[self.name]
        except KeyError:
            raise QueryError(
                f"unknown column {self.name!r}; row has "
                f"{sorted(context.row)}"
            ) from None

    def references(self) -> Tuple[str, ...]:
        return (self.name,)


@dataclass(frozen=True)
class ParameterRef(Expression):
    """An @parameter reference."""

    name: str

    def evaluate(self, context: EvalContext) -> object:
        try:
            return context.params[self.name]
        except KeyError:
            raise QueryError(
                f"unbound parameter @{self.name}; bound: "
                f"{sorted(context.params)}"
            ) from None

    def evaluate_batch(self, context: BatchEvalContext) -> object:
        try:
            return context.params[self.name]
        except KeyError:
            raise QueryError(
                f"unbound parameter @{self.name}; bound: "
                f"{sorted(context.params)}"
            ) from None

    def references(self) -> Tuple[str, ...]:
        return (f"@{self.name}",)


_BINARY_OPS: Dict[str, Callable[[object, object], object]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise QueryError(f"unknown operator {self.op!r}")

    def evaluate(self, context: EvalContext) -> object:
        return _BINARY_OPS[self.op](
            self.left.evaluate(context), self.right.evaluate(context)
        )

    def evaluate_batch(self, context: BatchEvalContext) -> object:
        left = self.left.evaluate_batch(context)
        right = self.right.evaluate_batch(context)
        if self.op == "and":
            return np.logical_and(left, right)
        if self.op == "or":
            return np.logical_or(left, right)
        if self.op == "/":
            zero = np.asarray(right) == 0
            if np.any(zero):
                # The scalar per-world loop raises ZeroDivisionError here;
                # numpy would return inf/nan and let the query succeed.
                # Fall back so the offending world fails the same way it
                # would under scalar execution — unless a CASE branch is
                # evaluating eagerly, where the decision belongs to
                # CaseWhen (only *selected* lanes must match).
                if not context.in_case_branch:
                    raise BatchUnsupported("division by zero in some world")
                context.case_zero_div = (
                    zero
                    if context.case_zero_div is None
                    else np.logical_or(context.case_zero_div, zero)
                )
        # Arithmetic and comparisons vectorize through the same operators
        # (identical IEEE semantics per lane).
        return _BINARY_OPS[self.op](left, right)

    def references(self) -> Tuple[str, ...]:
        return self.left.references() + self.right.references()


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str
    operand: Expression

    def evaluate(self, context: EvalContext) -> object:
        value = self.operand.evaluate(context)
        if self.op == "-":
            return -value  # type: ignore[operator]
        if self.op == "not":
            return not bool(value)
        raise QueryError(f"unknown unary operator {self.op!r}")

    def evaluate_batch(self, context: BatchEvalContext) -> object:
        value = self.operand.evaluate_batch(context)
        if self.op == "-":
            return -value  # type: ignore[operator]
        if self.op == "not":
            return np.logical_not(value)
        raise QueryError(f"unknown unary operator {self.op!r}")

    def references(self) -> Tuple[str, ...]:
        return self.operand.references()


@dataclass(frozen=True)
class CaseWhen(Expression):
    """``CASE WHEN cond THEN a ELSE b END`` (paper Figure 1's overload)."""

    condition: Expression
    then_value: Expression
    else_value: Expression

    def evaluate(self, context: EvalContext) -> object:
        if bool(self.condition.evaluate(context)):
            return self.then_value.evaluate(context)
        return self.else_value.evaluate(context)

    def evaluate_batch(self, context: BatchEvalContext) -> object:
        # Batch evaluation computes both branches and selects per lane;
        # that changes black-box invocation counts versus the scalar
        # short-circuit, so CASEs over stochastic branches stay scalar.
        if _contains_blackbox(self.then_value) or _contains_blackbox(
            self.else_value
        ):
            raise BatchUnsupported("CASE over a stochastic branch")
        condition = self.condition.evaluate_batch(context)
        try:
            # Both branches evaluate eagerly here where the scalar path
            # short-circuits; a branch that only errors when *not* taken
            # (e.g. a division guarded by the condition) must fall back to
            # the per-world loop rather than fail the whole query.  Lanes
            # the condition discards may legitimately produce inf/nan, so
            # their floating-point warnings are noise — but divisions by
            # zero in lanes the condition *selects* must still fall back
            # (the scalar path raises there), so each branch records its
            # zero-division lanes for the post-selection check below.
            with np.errstate(divide="ignore", invalid="ignore"):
                was_in_case_branch = context.in_case_branch
                outer_zero_div = context.case_zero_div
                context.in_case_branch = True
                context.case_zero_div = None
                try:
                    then_value = self.then_value.evaluate_batch(context)
                    then_zero_div = context.case_zero_div
                    context.case_zero_div = None
                    else_value = self.else_value.evaluate_batch(context)
                    else_zero_div = context.case_zero_div
                finally:
                    context.in_case_branch = was_in_case_branch
                    context.case_zero_div = outer_zero_div
        except BatchUnsupported:
            raise
        except Exception as error:
            raise BatchUnsupported(
                f"CASE branch failed under eager evaluation: {error}"
            ) from error
        scalar_condition = np.isscalar(condition) or np.ndim(condition) == 0
        if then_zero_div is not None or else_zero_div is not None:
            false_mask = np.zeros(1, dtype=bool)
            then_mask = false_mask if then_zero_div is None else then_zero_div
            else_mask = false_mask if else_zero_div is None else else_zero_div
            if scalar_condition:
                selected = then_mask if bool(condition) else else_mask
            else:
                selected = np.where(condition, then_mask, else_mask)
            if np.any(selected):
                if context.in_case_branch:
                    # Nested CASE: let the enclosing CASE's condition
                    # decide whether these lanes are actually reachable.
                    context.case_zero_div = (
                        selected
                        if context.case_zero_div is None
                        else np.logical_or(context.case_zero_div, selected)
                    )
                else:
                    raise BatchUnsupported(
                        "division by zero in a selected CASE lane"
                    )
        if scalar_condition:
            return then_value if bool(condition) else else_value
        return np.where(condition, then_value, else_value)

    def references(self) -> Tuple[str, ...]:
        return (
            self.condition.references()
            + self.then_value.references()
            + self.else_value.references()
        )


@dataclass(frozen=True)
class BlackBoxCall(Expression):
    """Invocation of a VG-style black box with expression arguments.

    The box's seed is derived from the world seed and a per-call salt so
    that multiple calls in one query draw independent randomness while
    remaining deterministic per world.
    """

    box: BlackBox
    argument_names: Tuple[str, ...]
    arguments: Tuple[Expression, ...]
    call_salt: int = 0

    def __post_init__(self) -> None:
        if len(self.argument_names) != len(self.arguments):
            raise QueryError(
                f"{self.box.name}: {len(self.argument_names)} parameter "
                f"names but {len(self.arguments)} arguments"
            )

    def evaluate(self, context: EvalContext) -> object:
        params = {}
        for name, argument in zip(self.argument_names, self.arguments):
            value = argument.evaluate(context)
            try:
                params[name] = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise QueryError(
                    f"{self.box.name} argument {name!r} is not numeric: "
                    f"{value!r}"
                ) from None
        seed = derive_seed(context.world_seed, self.call_salt)
        return self.box.sample(params, seed)

    def evaluate_batch(self, context: BatchEvalContext) -> object:
        params = {}
        for name, argument in zip(self.argument_names, self.arguments):
            value = argument.evaluate_batch(context)
            if isinstance(value, np.ndarray) and value.ndim > 0:
                # Per-world argument values would need one params dict per
                # lane; the black box batches over seeds, not parameters.
                raise BatchUnsupported(
                    f"{self.box.name} argument {name!r} varies per world"
                )
            try:
                params[name] = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise QueryError(
                    f"{self.box.name} argument {name!r} is not numeric: "
                    f"{value!r}"
                ) from None
        seeds = derived_seed_array_cached(context.world_seeds, self.call_salt)
        return self.box.sample_batch(params, seeds)

    def references(self) -> Tuple[str, ...]:
        refs: Tuple[str, ...] = ()
        for argument in self.arguments:
            refs += argument.references()
        return refs


def _children(expression: Expression):
    for attr in (
        "left",
        "right",
        "operand",
        "condition",
        "then_value",
        "else_value",
    ):
        child = getattr(expression, attr, None)
        if isinstance(child, Expression):
            yield child
    for child in getattr(expression, "arguments", ()) or ():
        if isinstance(child, Expression):
            yield child


def _contains_blackbox(expression: Expression) -> bool:
    """True when a black-box call occurs anywhere beneath ``expression``."""
    if isinstance(expression, BlackBoxCall):
        return True
    return any(_contains_blackbox(child) for child in _children(expression))


def _iter_blackbox_calls(expression: Expression):
    """Yield every black-box call beneath ``expression`` (self included)."""
    if isinstance(expression, BlackBoxCall):
        yield expression
    for child in _children(expression):
        yield from _iter_blackbox_calls(child)


_BATCHABLE_FUNCTIONS = frozenset({"abs", "least", "greatest"})


def assert_batchable(
    expression: Expression, stochastic_columns: frozenset
) -> None:
    """Statically reject expressions the batch engine cannot evaluate.

    Run *before* executing any item of a projection: batch evaluation has
    side effects (black-box invocation counters), so discovering
    unsupported shapes mid-execution and falling back would double-count
    work.  ``stochastic_columns`` names earlier select aliases whose
    values vary per world — black-box arguments must not reference them
    (one params dict cannot cover divergent lanes).
    """
    if isinstance(expression, BlackBoxCall):
        for argument in expression.arguments:
            if _contains_blackbox(argument):
                raise BatchUnsupported(
                    f"{expression.box.name} argument is itself stochastic"
                )
            varying = set(argument.references()) & stochastic_columns
            if varying:
                raise BatchUnsupported(
                    f"{expression.box.name} argument references per-world "
                    f"column(s) {sorted(varying)}"
                )
    elif isinstance(expression, CaseWhen):
        if _contains_blackbox(expression.then_value) or _contains_blackbox(
            expression.else_value
        ):
            raise BatchUnsupported("CASE over a stochastic branch")
    elif isinstance(expression, FunctionCall):
        if expression.name.lower() not in _BATCHABLE_FUNCTIONS:
            raise BatchUnsupported(f"scalar function {expression.name!r}")
    elif type(expression).evaluate_batch is Expression.evaluate_batch:
        # Unknown expression type without a batch implementation.
        raise BatchUnsupported(type(expression).__name__)
    for child in _children(expression):
        assert_batchable(child, stochastic_columns)


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A deterministic scalar function (ABS, MIN, MAX over two scalars...)."""

    name: str
    arguments: Tuple[Expression, ...]

    def evaluate(self, context: EvalContext) -> object:
        function = _SCALAR_FUNCTIONS.get(self.name.lower())
        if function is None:
            raise QueryError(f"unknown scalar function {self.name!r}")
        return function(
            *(argument.evaluate(context) for argument in self.arguments)
        )

    def evaluate_batch(self, context: BatchEvalContext) -> object:
        values = [
            argument.evaluate_batch(context) for argument in self.arguments
        ]
        name = self.name.lower()
        if name == "abs":
            return np.abs(values[0])
        # np.where (not np.minimum/np.maximum) so NaN lanes resolve like
        # Python's min/max in the scalar path: keep the earlier argument
        # unless a later one strictly compares past it.
        if name == "least":
            result = values[0]
            for value in values[1:]:
                result = np.where(np.less(value, result), value, result)
            return result
        if name == "greatest":
            result = values[0]
            for value in values[1:]:
                result = np.where(np.greater(value, result), value, result)
            return result
        raise BatchUnsupported(f"scalar function {self.name!r}")

    def references(self) -> Tuple[str, ...]:
        refs: Tuple[str, ...] = ()
        for argument in self.arguments:
            refs += argument.references()
        return refs


_SCALAR_FUNCTIONS: Dict[str, Callable[..., object]] = {
    "abs": lambda x: abs(x),
    "least": lambda *xs: min(xs),
    "greatest": lambda *xs: max(xs),
}
