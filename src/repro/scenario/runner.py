"""Batch scenario execution: naive and fingerprint-reusing modes.

The runner generalizes :class:`repro.core.explorer.ParameterExplorer` to
multi-column scenarios.  One Monte Carlo round computes *all* output columns
(one set of black-box invocations), so the fingerprint decision is joint: a
point skips its remaining rounds only when **every** column's fingerprint
maps onto a stored basis.  This is precisely why the paper's boolean
Overload column halves the achievable speedup of its query (section 6.2) —
one unmappable column forces the full simulation for the whole row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.blackbox.base import ParamKey, param_key
from repro.core.adaptive import AdaptiveBudget, next_target
from repro.core.basis import BasisStore
from repro.core.estimator import Estimator, MetricSet
from repro.core.fingerprint import Fingerprint
from repro.core.parallel import (
    ParallelStats,
    fork_map,
    shard_slices,
    space_digest,
)
from repro.core.supervise import SupervisionPolicy, SupervisionReport
from repro.core.mapping import (
    IdentityMappingFamily,
    LinearMappingFamily,
    Mapping,
    MappingFamily,
)
from repro.core.optimizer import ResultRow, Selector
from repro.core.seeds import DEFAULT_SEED_BANK, SeedBank
from repro.probdb.expressions import BatchUnsupported
from repro.scenario.scenario import Scenario


@dataclass
class RunnerStats:
    """Joint work accounting across all output columns."""

    points_total: int = 0
    points_reused: int = 0
    rounds_executed: int = 0
    bases_created: int = 0

    @property
    def reuse_fraction(self) -> float:
        if self.points_total == 0:
            return 0.0
        return self.points_reused / self.points_total


@dataclass
class ScenarioResult:
    """Per-point, per-column metrics plus accounting.

    ``stats`` is the canonical (serial-equivalent) accounting regardless of
    how many workers executed the sweep; ``parallel`` carries the
    shard-side work when the run was sharded (see
    :mod:`repro.core.parallel`).
    """

    metrics: Dict[ParamKey, Dict[str, MetricSet]] = field(default_factory=dict)
    points: Dict[ParamKey, Dict[str, float]] = field(default_factory=dict)
    stats: RunnerStats = field(default_factory=RunnerStats)
    parallel: Optional[ParallelStats] = None

    def metrics_for(
        self, params: Mapping[str, float]
    ) -> Dict[str, MetricSet]:
        return self.metrics[param_key(params)]

    def rows(self) -> List[ResultRow]:
        """Rows in the Selector's input format."""
        return [
            (self.points[key], self.metrics[key]) for key in self.metrics
        ]

    def optimize(self, selector: Selector):
        """Run an OPTIMIZE clause over the explored results table."""
        return selector.solve(self.rows())

    def __len__(self) -> int:
        return len(self.metrics)


@dataclass
class _ScenarioPointRecord:
    """One point's shipped outcome: per-column fingerprints, and — when the
    shard fully simulated the point — per-column full sample vectors."""

    fingerprints: Dict[str, np.ndarray]
    samples: Optional[Dict[str, np.ndarray]]


@dataclass
class _ScenarioShardContext:
    """Inherited-by-fork description of a sharded scenario sweep."""

    runner_factory: "object"
    shards: List[List[Dict[str, float]]]


def _run_scenario_shard(
    context: _ScenarioShardContext, index: int
) -> Tuple[List[_ScenarioPointRecord], RunnerStats]:
    runner = context.runner_factory()
    stats = RunnerStats()
    records: List[_ScenarioPointRecord] = []
    for point in context.shards[index]:
        _, record = runner._run_point(point, stats)
        records.append(record)
        stats.points_total += 1
    return records, stats


def _encode_scenario_outcome(
    columns: Tuple[str, ...],
    outcome: Tuple[List[_ScenarioPointRecord], RunnerStats],
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Checkpoint encoding of one scenario shard outcome.

    Column arrays are keyed positionally (``fp{point}c{column}``) — the
    checkpoint config pins the column list, so positions are stable."""
    records, stats = outcome
    arrays: Dict[str, np.ndarray] = {}
    meta_records = []
    for position, record in enumerate(records):
        for col, column in enumerate(columns):
            arrays[f"fp{position}c{col}"] = np.asarray(
                record.fingerprints[column], dtype=np.float64
            )
        meta_records.append({"samples": record.samples is not None})
        if record.samples is not None:
            for col, column in enumerate(columns):
                arrays[f"s{position}c{col}"] = np.asarray(
                    record.samples[column], dtype=np.float64
                )
    meta = {
        "records": meta_records,
        "stats": {
            "points_total": int(stats.points_total),
            "points_reused": int(stats.points_reused),
            "rounds_executed": int(stats.rounds_executed),
            "bases_created": int(stats.bases_created),
        },
    }
    return meta, arrays


def _decode_scenario_outcome(
    columns: Tuple[str, ...], meta: dict, arrays: Dict[str, np.ndarray]
) -> Tuple[List[_ScenarioPointRecord], RunnerStats]:
    records = []
    for position, entry in enumerate(meta["records"]):
        fingerprints = {
            column: np.asarray(arrays[f"fp{position}c{col}"])
            for col, column in enumerate(columns)
        }
        samples = None
        if entry["samples"]:
            samples = {
                column: np.asarray(arrays[f"s{position}c{col}"])
                for col, column in enumerate(columns)
            }
        records.append(_ScenarioPointRecord(fingerprints, samples))
    stats = RunnerStats(
        **{key: int(value) for key, value in meta["stats"].items()}
    )
    return records, stats


class ScenarioRunner:
    """Executes a scenario over its whole parameter space with reuse.

    ``column_families`` optionally overrides the mapping family per column;
    boolean outputs default to identity-only matching (a 0/1 fingerprint
    admits no meaningful affine remap — scaling probabilities would be
    statistically wrong).

    ``workers > 1`` shards the parameter space across a fork pool (see
    :mod:`repro.core.parallel`): each worker sweeps its shard with its own
    per-column basis stores, then the master replays the canonical point
    order against the merged stores, so per-point metrics and counters are
    bit-identical to the serial sweep for any worker count.
    """

    def __init__(
        self,
        scenario: Scenario,
        samples_per_point: int = 1000,
        fingerprint_size: int = 10,
        seed_bank: Optional[SeedBank] = None,
        estimator: Optional[Estimator] = None,
        index_strategy: str = "normalization",
        column_families: Optional[Mapping[str, MappingFamily]] = None,
        use_fingerprints: bool = True,
        workers: int = 1,
        adaptive: Optional[AdaptiveBudget] = None,
        supervision: Optional[SupervisionPolicy] = None,
        checkpoint: Optional[str] = None,
    ):
        if fingerprint_size < 1:
            raise ValueError("fingerprint_size must be at least 1")
        if samples_per_point < fingerprint_size:
            raise ValueError("samples_per_point must be >= fingerprint_size")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.scenario = scenario
        self.samples_per_point = samples_per_point
        self.fingerprint_size = fingerprint_size
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK
        self.estimator = estimator or Estimator()
        self.use_fingerprints = use_fingerprints
        self.workers = int(workers)
        self.adaptive = adaptive
        self.supervision = supervision
        self.checkpoint = checkpoint
        self._index_strategy = index_strategy
        self._family_overrides = dict(column_families or {})
        self._stores: Dict[str, BasisStore] = {}
        for column in scenario.output_columns:
            family = self._family_overrides.get(
                column, LinearMappingFamily()
            )
            self._stores[column] = BasisStore(
                mapping_family=family,
                index_strategy=index_strategy,
                estimator=self.estimator,
            )

    def store_for(self, column: str) -> BasisStore:
        return self._stores[column]

    @property
    def stores(self) -> Dict[str, BasisStore]:
        """Per-column basis stores, keyed by output column (a copy: the
        runner's column -> store binding itself is not caller-mutable)."""
        return dict(self._stores)

    def basis_count(self) -> int:
        """Total bases across every column's store (CLI/diagnostics)."""
        return sum(len(store) for store in self._stores.values())

    def save_stores(self, path: str, metadata=None) -> None:
        """Snapshot every column's basis store for later warm starts.

        Atomic and versioned (see :mod:`repro.core.persist`); records the
        runner's seed bank so a later load can refuse cross-bank reuse.
        """
        from repro.api import Session

        Session(self._stores, seed_bank=self.seed_bank).save(
            path, metadata=metadata
        )

    def load_stores(self, path: str, mmap: bool = True) -> None:
        """Warm-start this runner from a :meth:`save_stores` snapshot.

        The snapshot must cover exactly this scenario's output columns,
        and each column's store must match the runner's configured mapping
        family, index strategy, tolerances, estimator, and seed bank —
        any mismatch raises a typed
        :class:`~repro.errors.SnapshotCompatibilityError` instead of
        silently reusing incompatible state.  Loaded stores are
        memory-mapped read-only by default; sweeps that add bases promote
        copy-on-write and leave the snapshot untouched.  Sharded runs
        (``workers > 1``) warm-start too: the canonical replay probes the
        loaded stores, so results stay bit-identical to a serial warm run.
        """
        from repro.api import Session

        self._stores = Session.open(
            path,
            like=self._stores,
            seed_bank=self.seed_bank,
            estimator=self.estimator,
            mmap=mmap,
        ).stores

    def match_stats(self) -> Dict[str, "object"]:
        """Per-column basis-match counters (StoreStats), for diagnostics.

        Every column's store answers probes through the columnar match
        engine (:meth:`BasisStore.match` — the single-probe form of
        ``match_batch``); ``candidates_tested``/``matches`` here are
        deterministic and identical for any worker count, while
        ``match_seconds`` reports the engine's wall clock.
        """
        return {
            column: store.stats for column, store in self._stores.items()
        }

    def _clone_serial(self) -> "ScenarioRunner":
        """A fresh single-worker runner with this runner's configuration
        (shard workers build their local per-column stores through this)."""
        return ScenarioRunner(
            self.scenario,
            samples_per_point=self.samples_per_point,
            fingerprint_size=self.fingerprint_size,
            seed_bank=self.seed_bank,
            estimator=self.estimator,
            index_strategy=self._index_strategy,
            column_families=self._family_overrides,
            use_fingerprints=self.use_fingerprints,
            workers=1,
            adaptive=self.adaptive,
        )

    def _checkpoint_config(self, points, shards) -> dict:
        adaptive = None
        if self.adaptive is not None:
            budget = self.adaptive
            adaptive = {
                "rtol": float(budget.rtol).hex(),
                "atol": float(budget.atol).hex(),
                "confidence": float(budget.confidence).hex(),
                "max_samples": budget.max_samples,
                "min_samples": budget.min_samples,
                "method": budget.method,
            }
        return {
            "engine": "scenario",
            "space": space_digest(points),
            "shard_sizes": [len(shard) for shard in shards],
            "samples_per_point": int(self.samples_per_point),
            "fingerprint_size": int(self.fingerprint_size),
            "seed_master": int(self.seed_bank.master_seed),
            "columns": list(self.scenario.output_columns),
            "use_fingerprints": bool(self.use_fingerprints),
            "adaptive": adaptive,
        }

    def run(self) -> ScenarioResult:
        if (
            self.workers > 1
            or self.checkpoint is not None
            or self.supervision is not None
        ):
            # Checkpointed or supervised runs route through the sharded
            # engine even with one worker: shard records are the resumable
            # unit, supervision watches shard attempts, and the canonical
            # replay makes the result bit-identical to the plain serial
            # loop regardless.
            return self._run_parallel()
        result = ScenarioResult()
        for point in self.scenario.space.points():
            key = param_key(point)
            result.points[key] = dict(point)
            metrics, _ = self._run_point(point, result.stats)
            result.metrics[key] = metrics
            result.stats.points_total += 1
        return result

    def _run_parallel(self) -> ScenarioResult:
        """Shard, speculate, then replay the canonical order.

        The replay runs the *actual* serial loop (``_run_point``) with a
        playback rounds-provider serving the workers' recorded sample
        vectors, so per-point metrics and counters are serial by
        construction; only a point a shard speculatively reused but the
        canonical order must simulate falls through to the real rounds.
        """
        points = list(self.scenario.space.points())
        slices = shard_slices(len(points), self.workers)
        shards = [points[s] for s in slices]
        context = _ScenarioShardContext(self._clone_serial, shards)
        columns = tuple(self.scenario.output_columns)
        loaded: Dict[int, Tuple[List[_ScenarioPointRecord], RunnerStats]] = {}
        on_complete = None
        if self.checkpoint is not None:
            from repro.core.persist import SweepCheckpoint

            checkpoint_store = SweepCheckpoint(
                self.checkpoint, self._checkpoint_config(points, shards)
            )
            loaded = {
                index: _decode_scenario_outcome(columns, meta, arrays)
                for index, (meta, arrays) in checkpoint_store.load().items()
                if 0 <= index < len(shards)
            }

            def on_complete(index, outcome) -> None:
                checkpoint_store.record(
                    index, *_encode_scenario_outcome(columns, outcome)
                )

        remaining = [i for i in range(len(shards)) if i not in loaded]
        reports: List[SupervisionReport] = []
        by_index = dict(loaded)
        if remaining:
            computed = fork_map(
                _run_scenario_shard,
                context,
                len(shards),
                self.workers,
                policy=self.supervision,
                indices=remaining,
                on_shard_complete=on_complete,
                report_sink=reports.append,
            )
            by_index.update(zip(remaining, computed))
        outcomes = [by_index[index] for index in range(len(shards))]
        parallel = ParallelStats(
            workers=self.workers,
            shard_sizes=tuple(len(records) for records, _ in outcomes),
            shard_samples_drawn=sum(
                stats.rounds_executed for _, stats in outcomes
            ),
            shard_stats=[stats for _, stats in outcomes],
            shards_resumed=len(loaded),
            supervision=reports[0] if reports else None,
        )
        shard_bases = sum(stats.bases_created for _, stats in outcomes)
        records = [
            record for shard_records, _ in outcomes
            for record in shard_records
        ]
        cursor = {"index": -1, "resimulated": -1}

        def playback_rounds(
            point: Dict[str, float], count: int, start: int
        ) -> Dict[str, np.ndarray]:
            if start == 0:  # fingerprint rounds open each point's replay
                cursor["index"] += 1
                return records[cursor["index"]].fingerprints
            record = records[cursor["index"]]
            if record.samples is not None:
                # Serve the requested round range; an adaptive budget asks
                # for several blocks per point, each a slice of the
                # shard's recorded draw (identical schedule by purity of
                # the stopping rule in the sample values).
                return {
                    column: samples[start:start + count]
                    for column, samples in record.samples.items()
                }
            if cursor["resimulated"] != cursor["index"]:
                # Count resimulated points, not completion calls.
                cursor["resimulated"] = cursor["index"]
                parallel.points_resimulated += 1
            return self._simulate_rounds(point, count, start)

        result = ScenarioResult()
        for point in points:
            key = param_key(point)
            result.points[key] = dict(point)
            metrics, _ = self._run_point(
                point, result.stats, simulate_rounds=playback_rounds
            )
            result.metrics[key] = metrics
            result.stats.points_total += 1
        adopted = (
            result.stats.bases_created
            - parallel.points_resimulated
            * len(self.scenario.output_columns)
        )
        parallel.bases_collapsed = shard_bases - adopted
        result.parallel = parallel
        return result

    def _simulate_rounds(
        self, point: Dict[str, float], count: int, start: int
    ) -> Dict[str, np.ndarray]:
        """``count`` Monte Carlo rounds for every column, batched when the
        scenario plan supports it (bit-identical to the per-seed loop)."""
        seeds = self.seed_bank.seed_array(count, start=start)
        try:
            columns = self.scenario.simulate_batch(point, seeds)
            return {
                name: np.asarray(values, dtype=float)
                for name, values in columns.items()
            }
        except BatchUnsupported:
            rows = [
                self.scenario.simulate(point, int(seed)) for seed in seeds
            ]
            return {
                column: np.array(
                    [row[column] for row in rows], dtype=float
                )
                for column in self.scenario.output_columns
            }

    def _run_point(
        self,
        point: Dict[str, float],
        stats: RunnerStats,
        simulate_rounds=None,
    ) -> Tuple[Dict[str, MetricSet], _ScenarioPointRecord]:
        """One point of the sweep: probe, reuse or fully simulate.

        ``simulate_rounds`` optionally overrides :meth:`_simulate_rounds`
        — the parallel replay injects a playback provider here so this
        exact code path (and its accounting) serves both modes.
        """
        if simulate_rounds is None:
            simulate_rounds = self._simulate_rounds
        columns = self.scenario.output_columns
        m = self.fingerprint_size

        # Fingerprint rounds (double as the first m simulation rounds).
        column_values = simulate_rounds(point, m, 0)
        stats.rounds_executed += m

        if self.use_fingerprints:
            # One columnar probe per column, short-circuiting on the first
            # unmappable column (each column has its own store, and the
            # scalar-identical counters require that stores past the first
            # miss are *not* probed — so this cannot be one cross-store
            # match_batch call).
            matches: Dict[str, Tuple[object, Mapping]] = {}
            for column in columns:
                fingerprint = Fingerprint(column_values[column])
                matched = self._stores[column].match(fingerprint)
                if matched is None:
                    break
                matches[column] = matched
            if len(matches) == len(columns):
                stats.points_reused += 1
                return (
                    {
                        column: self._stores[column].metrics_for(
                            basis, mapping  # type: ignore[arg-type]
                        )
                        for column, (basis, mapping) in matches.items()
                    },
                    _ScenarioPointRecord(column_values, None),
                )

        # Full simulation: complete the remaining rounds and register bases.
        # One Monte Carlo round costs every column jointly, so the adaptive
        # stopping decision is joint too: rounds keep growing until EVERY
        # column's confidence interval is inside tolerance (or the fixed
        # budget is exhausted) — mirroring how one unmappable column forces
        # the whole row's simulation in the reuse decision.
        if self.adaptive is None:
            remaining = simulate_rounds(point, self.samples_per_point - m, m)
            stats.rounds_executed += self.samples_per_point - m
            column_samples = {
                column: np.concatenate(
                    [column_values[column], remaining[column]]
                )
                for column in columns
            }
        else:
            cap = max(m, self.adaptive.cap(self.samples_per_point))
            column_samples = {
                column: np.asarray(column_values[column], dtype=float)
                for column in columns
            }
            size = m
            while size < cap and not all(
                self.adaptive.satisfied_by(column_samples[column])
                for column in columns
            ):
                target = next_target(size, cap, self.adaptive)
                block = simulate_rounds(point, target - size, size)
                column_samples = {
                    column: np.concatenate(
                        [column_samples[column], block[column]]
                    )
                    for column in columns
                }
                size = target
            stats.rounds_executed += size - m

        metrics: Dict[str, MetricSet] = {}
        for column in columns:
            samples = column_samples[column]
            fingerprint = Fingerprint(samples[:m])
            if self.use_fingerprints:
                basis = self._stores[column].add(fingerprint, samples)
                stats.bases_created += 1
                metrics[column] = basis.metrics
            else:
                metrics[column] = self.estimator.estimate(samples)
        return metrics, _ScenarioPointRecord(column_values, column_samples)


def boolean_column_families(
    scenario: Scenario, boolean_columns: Tuple[str, ...]
) -> Dict[str, MappingFamily]:
    """Convenience: identity-only matching for indicator columns."""
    families: Dict[str, MappingFamily] = {}
    for column in boolean_columns:
        if column not in scenario.output_columns:
            raise ValueError(f"unknown column {column!r}")
        families[column] = IdentityMappingFamily()
    return families
