"""Fingerprint indexes (paper section 3.2).

Matching a new fingerprint against every stored basis distribution costs one
``FindMapping`` call per basis; an index prunes that to a near-constant
candidate set.  Per the paper, an index must return *every* truly similar
basis (false positives are fine — Algorithm 3 re-validates — while a false
negative merely creates a duplicate basis, costing work but never
correctness).

Three strategies, as evaluated in Figures 9-11:

* ``ArrayIndex`` — no pruning; scan every basis (the baseline).
* ``NormalizationIndex`` — hash on the affine-canonical normal form; exact
  for the linear mapping family.
* ``SortedSIDIndex`` — hash on the sample-identifier sort order; applicable
  whenever members are monotone, including mapping classes with no normal
  form.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.fingerprint import (
    DEFAULT_REL_TOL,
    Fingerprint,
    batch_normal_forms,
    batch_sid_orders,
)
from repro.errors import IndexError_, PersistError


def _remove_from_bucket(buckets: Dict, key, basis_id: int) -> None:
    """Excise one id from one hash bucket, dropping the bucket if emptied.

    ``list.remove`` deletes the first occurrence and shifts survivors left —
    ids are unique across an index, so this keeps the survivors' relative
    order exactly as inserted.
    """
    bucket = buckets.get(key)
    if bucket is None or basis_id not in bucket:
        raise IndexError_(
            f"basis {basis_id} is not indexed under its fingerprint key"
        )
    bucket.remove(basis_id)
    if not bucket:
        del buckets[key]


class FingerprintIndex(ABC):
    """Maps a probe fingerprint to candidate basis ids."""

    #: Snapshot identity (the ``make_index`` strategy name).  Snapshots
    #: record it so a load can rebuild the exact index variant — and refuse
    #: to hand a store built under one strategy to a caller expecting
    #: another.
    strategy: str = ""

    def __init__(self) -> None:
        self._size = 0

    def dump_state(self) -> dict:
        """JSON-able snapshot of the index's buckets (see ``repro.core.
        persist``).

        Candidate *order* is part of the FindMatch contract
        (first-match-wins), so implementations serialize their id lists
        verbatim — a restored index answers ``candidates`` with byte-equal
        lists, never a re-derived ordering.  Floats are hex-encoded so the
        round trip is bitwise.
        """
        raise PersistError(
            f"{type(self).__name__} does not support snapshots; implement "
            f"dump_state/restore_state to persist stores using it"
        )

    @classmethod
    def restore_state(cls, state: dict) -> "FingerprintIndex":
        """Rebuild an index from :meth:`dump_state` output."""
        raise PersistError(
            f"{cls.__name__} does not support snapshots; implement "
            f"dump_state/restore_state to persist stores using it"
        )

    @abstractmethod
    def insert(self, fingerprint: Fingerprint, basis_id: int) -> None:
        """Register a stored basis fingerprint under its id."""

    @abstractmethod
    def candidates(self, fingerprint: Fingerprint) -> List[int]:
        """Basis ids that may be similar to the probe (superset of truth)."""

    def remove(self, fingerprint: Fingerprint, basis_id: int) -> None:
        """Drop one stored basis from the index (lifecycle layer).

        ``fingerprint`` is the basis's own stored fingerprint: hash-keyed
        strategies recompute its insertion key (key derivation is a
        deterministic function of the values, so the recomputed key names
        the bucket ``insert`` used) and excise exactly one entry.  The
        order of surviving ids is preserved verbatim — first-match-wins is
        part of the FindMatch contract, so removal must never reshuffle a
        bucket.
        """
        raise IndexError_(
            f"{type(self).__name__} does not support removal; implement "
            f"remove to run the store lifecycle layer over it"
        )

    def candidates_batch(
        self, fingerprints: Sequence[Fingerprint], backend=None
    ) -> List[List[int]]:
        """Per-probe candidate lists for a whole batch of probes.

        Contract: ``candidates_batch(fps)[i] == candidates(fps[i])`` —
        same ids, same order — so batched matching inherits the scalar
        path's first-match-wins tie-breaking.  Hash-keyed strategies
        override this to compute every probe's key in one vectorized
        pass (routed through ``backend``, default the process-active
        compute backend) before the bucket lookups.
        """
        return [self.candidates(fp) for fp in fingerprints]

    @abstractmethod
    def merge(
        self, other: "FingerprintIndex", id_map: Mapping[int, int]
    ) -> None:
        """Bulk-adopt another index's entries under translated basis ids.

        ``id_map`` maps the other index's basis ids to ids in the merged
        store; entries absent from it are skipped (their bases collapsed
        into mappings during the store merge and need no index entry).
        Structural: hash keys computed by the other index are adopted as-is
        — nothing is re-derived from fingerprints — so both indexes must
        use the same strategy (and key parameters).
        """

    def _check_mergeable(self, other: "FingerprintIndex") -> None:
        if type(other) is not type(self):
            raise IndexError_(
                f"cannot merge {type(other).__name__} into "
                f"{type(self).__name__}; shard stores must share one index "
                f"strategy"
            )

    def __len__(self) -> int:
        return self._size


class ArrayIndex(FingerprintIndex):
    """Naive full scan: every stored basis is a candidate."""

    strategy = "array"

    def __init__(self) -> None:
        super().__init__()
        self._ids: List[int] = []

    def dump_state(self) -> dict:
        return {"ids": [int(i) for i in self._ids]}

    @classmethod
    def restore_state(cls, state: dict) -> "ArrayIndex":
        index = cls()
        index._ids = [int(i) for i in state["ids"]]
        index._size = len(index._ids)
        return index

    def insert(self, fingerprint: Fingerprint, basis_id: int) -> None:
        self._ids.append(basis_id)
        self._size += 1

    def candidates(self, fingerprint: Fingerprint) -> List[int]:
        return list(self._ids)

    def candidates_batch(
        self, fingerprints: Sequence[Fingerprint], backend=None
    ) -> List[List[int]]:
        # No keys to vectorize: every probe scans every stored basis.
        return [list(self._ids) for _ in fingerprints]

    def remove(self, fingerprint: Fingerprint, basis_id: int) -> None:
        try:
            self._ids.remove(basis_id)
        except ValueError:
            raise IndexError_(
                f"basis {basis_id} is not in this index"
            ) from None
        self._size -= 1

    def merge(
        self, other: FingerprintIndex, id_map: Mapping[int, int]
    ) -> None:
        self._check_mergeable(other)
        assert isinstance(other, ArrayIndex)
        adopted = [id_map[i] for i in other._ids if i in id_map]
        self._ids.extend(adopted)
        self._size += len(adopted)


class NormalizationIndex(FingerprintIndex):
    """Hash lookup on the affine normal form (first two distinct entries
    mapped to 0 and 1).

    Two fingerprints related by a linear map share their normal form, so a
    single hash probe finds all linear-mappable candidates.  Normal-form
    entries are rounded (see :mod:`repro.core.fingerprint`), so fingerprints
    within arithmetic noise of each other land in the same bucket.
    """

    strategy = "normalization"

    def __init__(self, rel_tol: float = DEFAULT_REL_TOL):
        super().__init__()
        # Coerce so integer tolerances survive the hex snapshot codec
        # (``int.hex`` does not exist; ``float.hex`` does).
        self._rel_tol = float(rel_tol)
        self._buckets: Dict[Tuple[float, ...], List[int]] = {}

    def dump_state(self) -> dict:
        # Bucket keys are rounded floats; hex encoding keeps the round
        # trip bitwise, and the bucket list order (dict insertion order)
        # is preserved verbatim.
        return {
            "rel_tol": float(self._rel_tol).hex(),
            "buckets": [
                [[value.hex() for value in key], [int(i) for i in ids]]
                for key, ids in self._buckets.items()
            ],
        }

    @classmethod
    def restore_state(cls, state: dict) -> "NormalizationIndex":
        index = cls(rel_tol=float.fromhex(state["rel_tol"]))
        for key, ids in state["buckets"]:
            bucket = [int(i) for i in ids]
            index._buckets[
                tuple(float.fromhex(value) for value in key)
            ] = bucket
            index._size += len(bucket)
        return index

    def insert(self, fingerprint: Fingerprint, basis_id: int) -> None:
        key = fingerprint.normal_form(self._rel_tol)
        self._buckets.setdefault(key, []).append(basis_id)
        self._size += 1

    def candidates(self, fingerprint: Fingerprint) -> List[int]:
        key = fingerprint.normal_form(self._rel_tol)
        return list(self._buckets.get(key, ()))

    def candidates_batch(
        self, fingerprints: Sequence[Fingerprint], backend=None
    ) -> List[List[int]]:
        keys = batch_normal_forms(
            list(fingerprints), self._rel_tol, backend=backend
        )
        return [list(self._buckets.get(key, ())) for key in keys]

    def remove(self, fingerprint: Fingerprint, basis_id: int) -> None:
        key = fingerprint.normal_form(self._rel_tol)
        _remove_from_bucket(self._buckets, key, basis_id)
        self._size -= 1

    def merge(
        self, other: FingerprintIndex, id_map: Mapping[int, int]
    ) -> None:
        self._check_mergeable(other)
        assert isinstance(other, NormalizationIndex)
        if other._rel_tol != self._rel_tol:
            raise IndexError_(
                "cannot merge normalization indexes with different "
                "rel_tol values: their bucket keys are incompatible"
            )
        for key, ids in other._buckets.items():
            adopted = [id_map[i] for i in ids if i in id_map]
            if adopted:
                self._buckets.setdefault(key, []).extend(adopted)
                self._size += len(adopted)


class SortedSIDIndex(FingerprintIndex):
    """Hash lookup on the sorted sample-identifier sequence.

    Monotone increasing maps preserve the value ordering of entries, so two
    mappable fingerprints share their SID sequence; decreasing maps reverse
    it, so the probe also checks the reversed key (paper: "comparing both
    the SID sequence and its inverse").
    """

    strategy = "sorted_sid"

    def __init__(self) -> None:
        super().__init__()
        self._buckets: Dict[Tuple[int, ...], List[int]] = {}

    def dump_state(self) -> dict:
        return {
            "buckets": [
                [[int(entry) for entry in key], [int(i) for i in ids]]
                for key, ids in self._buckets.items()
            ],
        }

    @classmethod
    def restore_state(cls, state: dict) -> "SortedSIDIndex":
        index = cls()
        for key, ids in state["buckets"]:
            bucket = [int(i) for i in ids]
            index._buckets[tuple(int(entry) for entry in key)] = bucket
            index._size += len(bucket)
        return index

    def insert(self, fingerprint: Fingerprint, basis_id: int) -> None:
        self._buckets.setdefault(fingerprint.sid_order(), []).append(basis_id)
        self._size += 1

    def remove(self, fingerprint: Fingerprint, basis_id: int) -> None:
        # Ids are inserted under the ascending key only; the descending
        # probe key is a lookup-time alias, so one excision suffices.
        _remove_from_bucket(self._buckets, fingerprint.sid_order(), basis_id)
        self._size -= 1

    def candidates(self, fingerprint: Fingerprint) -> List[int]:
        return self._candidates_for(
            fingerprint.sid_order(), fingerprint.sid_order(descending=True)
        )

    def candidates_batch(
        self, fingerprints: Sequence[Fingerprint], backend=None
    ) -> List[List[int]]:
        probes = list(fingerprints)
        ascending = batch_sid_orders(probes, backend=backend)
        descending = batch_sid_orders(
            probes, descending=True, backend=backend
        )
        return [
            self._candidates_for(asc, desc)
            for asc, desc in zip(ascending, descending)
        ]

    def _candidates_for(
        self,
        ascending_key: Tuple[int, ...],
        descending_key: Tuple[int, ...],
    ) -> List[int]:
        ascending = self._buckets.get(ascending_key, ())
        if descending_key == ascending_key:
            # Fully tied fingerprints: both orders name the same bucket, so
            # the dedup pass would drop every descending entry anyway.
            return list(ascending)
        descending = self._buckets.get(descending_key, ())
        # An id lives under exactly one insertion key, so with distinct
        # probe keys the buckets are disjoint and the common ascending-only
        # (or descending-only) probe needs no set/merge work at all.
        if not descending:
            return list(ascending)
        if not ascending:
            return list(descending)
        merged = list(ascending)
        seen = set(merged)
        merged.extend(b for b in descending if b not in seen)
        return merged

    def merge(
        self, other: FingerprintIndex, id_map: Mapping[int, int]
    ) -> None:
        self._check_mergeable(other)
        assert isinstance(other, SortedSIDIndex)
        for key, ids in other._buckets.items():
            adopted = [id_map[i] for i in ids if i in id_map]
            if adopted:
                self._buckets.setdefault(key, []).extend(adopted)
                self._size += len(adopted)


INDEX_STRATEGIES = ("array", "normalization", "sorted_sid")

#: Strategy name -> index class, for snapshot restore (``repro.core.
#: persist``) and anything else that needs to rebuild an index variant
#: from its recorded identity.
STRATEGY_CLASSES: Dict[str, type] = {
    ArrayIndex.strategy: ArrayIndex,
    NormalizationIndex.strategy: NormalizationIndex,
    SortedSIDIndex.strategy: SortedSIDIndex,
}


def make_index(strategy: str) -> FingerprintIndex:
    """Factory: build a fingerprint index by strategy name."""
    normalized = strategy.lower().replace("-", "_").replace(" ", "_")
    if normalized == "array":
        return ArrayIndex()
    if normalized == "normalization":
        return NormalizationIndex()
    if normalized in ("sorted_sid", "sid"):
        return SortedSIDIndex()
    raise IndexError_(
        f"unknown index strategy {strategy!r}; choose from {INDEX_STRATEGIES}"
    )
