"""The SynthBasis black box (paper Figure 6, sections 6.3).

"A synthetic black box based on Demand, but with a deterministic number of
basis distributions."  The indexing experiments (Figures 10 and 11) need
precise control over how many distinct basis distributions a parameter sweep
produces; SynthBasis partitions its parameter domain into ``basis_count``
residue classes such that

* points in the same class are exact affine images of one another (one basis
  per class under the linear mapping family), and
* points in different classes are *not* affine-related (each class really is
  a separate basis).

Non-relatedness across classes is achieved by mixing two independent normal
draws with a class-dependent nonlinear blend; no single affine map can align
all fingerprint entries of different blends.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.blackbox.base import BlackBox, Params
from repro.blackbox.draws import DEFAULT_DRAW_CACHE
from repro.blackbox.fastrng import KIND_NORMAL
from repro.blackbox.rng import DeterministicRng


class SynthBasisModel(BlackBox):
    """Synthetic model producing exactly ``basis_count`` basis distributions."""

    name = "SynthBasis"
    parameter_names: Tuple[str, ...] = ("point",)

    def __init__(
        self,
        basis_count: int = 10,
        work_per_sample: int = 1,
        scale_step: float = 0.01,
    ):
        super().__init__()
        if basis_count < 1:
            raise ValueError("basis_count must be positive")
        if work_per_sample < 1:
            raise ValueError("work_per_sample must be positive")
        self.basis_count = basis_count
        self.work_per_sample = work_per_sample
        self.scale_step = scale_step

    def _sample(self, params: Params, seed: int) -> float:
        point = int(params["point"])
        if point < 0:
            raise ValueError("point must be non-negative")
        residue = point % self.basis_count
        rng = DeterministicRng(seed)
        first = rng.normal()
        second = rng.normal()
        # Busy-work knob: emulate a more expensive model without changing
        # its distribution (the extra draws are discarded).
        for _ in range(self.work_per_sample - 1):
            rng.normal()
        # Class-dependent nonlinear blend: affine within a class (via the
        # point-dependent scale below), non-affine across classes.
        blend = first + (residue + 1) * first * second
        class_index = point // self.basis_count
        scale = 1.0 + self.scale_step * class_index
        return scale * blend + 0.5 * class_index

    def _sample_batch(
        self, params: Params, seeds: np.ndarray
    ) -> Optional[np.ndarray]:
        point = int(params["point"])
        if point < 0:
            raise ValueError("point must be non-negative")
        residue = point % self.basis_count
        # The busy-work columns are drawn (and discarded) so the knob keeps
        # emulating a costlier model on the batch path too.
        kinds = (KIND_NORMAL,) * (self.work_per_sample + 1)
        draws = DEFAULT_DRAW_CACHE.matrix(seeds, kinds)
        first = 0.0 + 1.0 * draws[:, 0]
        second = 0.0 + 1.0 * draws[:, 1]
        blend = first + (residue + 1) * first * second
        class_index = point // self.basis_count
        scale = 1.0 + self.scale_step * class_index
        return scale * blend + 0.5 * class_index
