"""Binder: lower a parsed script onto executable library objects.

Resolves model names against a :class:`BlackBoxRegistry`, parameter
references against DECLARE statements, and column references against select
aliases; produces a :class:`BoundQuery` holding a runnable
:class:`~repro.scenario.scenario.Scenario`, an optional
:class:`~repro.core.optimizer.Selector`, and an optional graph description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.blackbox.base import BlackBoxRegistry
from repro.core.optimizer import Constraint, Objective, Selector
from repro.errors import BindingError
from repro.lang.ast import (
    AggregateNode,
    BinaryNode,
    CallNode,
    CaseNode,
    ChainSpec,
    DeclareParameter,
    ExprNode,
    GraphStatement,
    Identifier,
    NumberLit,
    OptimizeStatement,
    ParamNode,
    RangeSpec,
    Script,
    SelectStatement,
    SetSpec,
    UnaryNode,
)
from repro.probdb.expressions import (
    BinaryOp,
    BlackBoxCall,
    CaseWhen,
    ColumnRef,
    Constant,
    Expression,
    FunctionCall,
    ParameterRef,
    UnaryOp,
)
from repro.probdb.query import (
    GroupAggregate,
    Operator,
    Project,
    SingletonScan,
    TableScan,
)
from repro.probdb.relation import Relation
from repro.probdb.scan import RandomScan
from repro.probdb.worlds import RandomRelation
from repro.scenario.parameter import (
    ChainParameter,
    ParameterSpec,
    RangeParameter,
    SetParameter,
)
from repro.scenario.scenario import Scenario

_SCALAR_FUNCTION_NAMES = {"abs", "least", "greatest"}


@dataclass
class GraphSpec:
    """A bound GRAPH clause: x-axis parameter and (metric, column) series."""

    x_parameter: str
    series: Tuple[Tuple[str, str, Tuple[str, ...]], ...]


@dataclass
class BoundQuery:
    """Everything runnable that a script described."""

    scenario: Scenario
    selector: Optional[Selector] = None
    graph: Optional[GraphSpec] = None


class Binder:
    """Single-use binder for one parsed script.

    ``tables`` resolves ``FROM table_name`` sources: deterministic
    :class:`~repro.probdb.relation.Relation` values scan as-is, while
    :class:`~repro.probdb.worlds.RandomRelation` values are instantiated per
    possible world (the MCDB random-table path).
    """

    def __init__(
        self,
        script: Script,
        registry: BlackBoxRegistry,
        tables: Optional[Dict[str, object]] = None,
    ):
        self.script = script
        self.registry = registry
        self.tables = dict(tables or {})
        self._call_salt = 0

    def bind(self) -> BoundQuery:
        parameters = self._bind_parameters()
        parameter_names = {spec.name for spec in parameters}

        selects = self.script.selects()
        if len(selects) != 1:
            raise BindingError(
                f"a scenario needs exactly one top-level SELECT, found "
                f"{len(selects)}"
            )
        plan, output_columns = self._bind_select(
            selects[0], parameter_names, outer_columns=set()
        )
        scenario = Scenario(
            plan=plan,
            parameters=parameters,
            into=selects[0].into or "results",
        )

        selector = None
        optimizes = self.script.optimizes()
        if len(optimizes) > 1:
            raise BindingError("at most one OPTIMIZE statement is allowed")
        if optimizes:
            selector = self._bind_optimize(
                optimizes[0], parameter_names, output_columns
            )

        graph = None
        graphs = self.script.graphs()
        if len(graphs) > 1:
            raise BindingError("at most one GRAPH statement is allowed")
        if graphs:
            graph = self._bind_graph(
                graphs[0], parameter_names, output_columns
            )

        return BoundQuery(scenario=scenario, selector=selector, graph=graph)

    # -- parameters -----------------------------------------------------------

    def _bind_parameters(self) -> Tuple[ParameterSpec, ...]:
        parameters: List[ParameterSpec] = []
        declared: Set[str] = set()
        for declare in self.script.declares():
            if declare.name in declared:
                raise BindingError(
                    f"parameter @{declare.name} declared twice"
                )
            declared.add(declare.name)
            parameters.append(self._bind_one_parameter(declare))
        # Chains must reference a declared driver parameter.
        for spec in parameters:
            if isinstance(spec, ChainParameter) and spec.driver not in declared:
                raise BindingError(
                    f"chain @{spec.name} drives from undeclared "
                    f"@{spec.driver}"
                )
        return tuple(parameters)

    def _bind_one_parameter(self, declare: DeclareParameter) -> ParameterSpec:
        spec = declare.spec
        if isinstance(spec, RangeSpec):
            return RangeParameter(
                declare.name, spec.start, spec.stop, spec.step
            )
        if isinstance(spec, SetSpec):
            return SetParameter(declare.name, spec.members)
        if isinstance(spec, ChainSpec):
            offset = _chain_offset(spec)
            return ChainParameter(
                name=declare.name,
                source_column=spec.source_column,
                driver=spec.driver,
                driver_offset=offset,
                initial_value=spec.initial_value,
            )
        raise BindingError(f"unknown parameter spec {type(spec).__name__}")

    # -- SELECT -----------------------------------------------------------------

    def _bind_select(
        self,
        select: SelectStatement,
        parameter_names: Set[str],
        outer_columns: Set[str],
    ) -> Tuple[Operator, Tuple[str, ...]]:
        if select.subquery is not None:
            child, child_columns = self._bind_select(
                select.subquery, parameter_names, outer_columns
            )
            visible = set(child_columns)
        elif select.source_table is not None:
            child = self._bind_table(select.source_table)
            visible = set(child.schema().names)
        else:
            child = SingletonScan()
            visible = set(outer_columns)

        aggregate_flags = [
            isinstance(item.expression, AggregateNode)
            for item in select.items
        ]
        if any(aggregate_flags):
            if not all(aggregate_flags):
                raise BindingError(
                    "aggregate and non-aggregate select items cannot be "
                    "mixed (the scenario SELECT has no GROUP BY)"
                )
            return self._bind_aggregate_select(
                select, child, parameter_names, visible
            )

        items: List[Tuple[str, Expression]] = []
        for index, item in enumerate(select.items):
            alias = item.alias or f"column_{index}"
            expression = self._bind_expression(
                item.expression, parameter_names, visible
            )
            items.append((alias, expression))
            visible.add(alias)

        plan = Project(child=child, items=tuple(items))
        return plan, tuple(alias for alias, _ in items)

    def _bind_table(self, name: str) -> Operator:
        if name not in self.tables:
            known = ", ".join(sorted(self.tables)) or "(none)"
            raise BindingError(
                f"unknown table {name!r}; registered tables: {known}"
            )
        table = self.tables[name]
        if isinstance(table, RandomRelation):
            return RandomScan(table)
        if isinstance(table, Relation):
            return TableScan(table)
        raise BindingError(
            f"table {name!r} must be a Relation or RandomRelation, got "
            f"{type(table).__name__}"
        )

    def _bind_aggregate_select(
        self,
        select,
        child: Operator,
        parameter_names: Set[str],
        visible: Set[str],
    ) -> Tuple[Operator, Tuple[str, ...]]:
        """Lower an all-aggregate select list onto GroupAggregate.

        This is the paper's section 2.2 formulation: the cumulative effect
        of an event table computed by the database engine itself with a
        simple SQL SUM aggregate.
        """
        aggregates: List[Tuple[str, str, Expression]] = []
        for index, item in enumerate(select.items):
            alias = item.alias or f"column_{index}"
            node = item.expression
            argument = self._bind_expression(
                node.argument, parameter_names, visible
            )
            aggregates.append((alias, node.kind, argument))
        plan = GroupAggregate(
            child=child, group_by=(), aggregates=tuple(aggregates)
        )
        return plan, tuple(alias for alias, _, _ in aggregates)

    # -- expressions ---------------------------------------------------------

    def _bind_expression(
        self,
        node: ExprNode,
        parameter_names: Set[str],
        visible_columns: Set[str],
    ) -> Expression:
        if isinstance(node, NumberLit):
            return Constant(node.value)
        if isinstance(node, ParamNode):
            if node.name not in parameter_names:
                raise BindingError(f"undeclared parameter @{node.name}")
            return ParameterRef(node.name)
        if isinstance(node, Identifier):
            if node.name not in visible_columns:
                raise BindingError(
                    f"unknown column {node.name!r}; visible: "
                    f"{sorted(visible_columns)}"
                )
            return ColumnRef(node.name)
        if isinstance(node, BinaryNode):
            return BinaryOp(
                node.op,
                self._bind_expression(
                    node.left, parameter_names, visible_columns
                ),
                self._bind_expression(
                    node.right, parameter_names, visible_columns
                ),
            )
        if isinstance(node, UnaryNode):
            return UnaryOp(
                node.op,
                self._bind_expression(
                    node.operand, parameter_names, visible_columns
                ),
            )
        if isinstance(node, CaseNode):
            return CaseWhen(
                self._bind_expression(
                    node.condition, parameter_names, visible_columns
                ),
                self._bind_expression(
                    node.then_value, parameter_names, visible_columns
                ),
                self._bind_expression(
                    node.else_value, parameter_names, visible_columns
                ),
            )
        if isinstance(node, CallNode):
            return self._bind_call(node, parameter_names, visible_columns)
        raise BindingError(f"unsupported expression {type(node).__name__}")

    def _bind_call(
        self,
        node: CallNode,
        parameter_names: Set[str],
        visible_columns: Set[str],
    ) -> Expression:
        arguments = tuple(
            self._bind_expression(argument, parameter_names, visible_columns)
            for argument in node.arguments
        )
        if node.name.lower() in _SCALAR_FUNCTION_NAMES:
            return FunctionCall(node.name, arguments)
        if node.name not in self.registry:
            raise BindingError(
                f"unknown function {node.name!r}: neither a scalar function "
                f"nor a registered black box "
                f"({', '.join(self.registry.names()) or 'none registered'})"
            )
        box = self.registry.lookup(node.name)
        if len(arguments) != len(box.parameter_names):
            raise BindingError(
                f"{node.name} expects {len(box.parameter_names)} arguments "
                f"({', '.join(box.parameter_names)}), got {len(arguments)}"
            )
        salt = self._call_salt
        self._call_salt += 1
        return BlackBoxCall(
            box=box,
            argument_names=box.parameter_names,
            arguments=arguments,
            call_salt=salt,
        )

    # -- OPTIMIZE ---------------------------------------------------------------

    def _bind_optimize(
        self,
        statement: OptimizeStatement,
        parameter_names: Set[str],
        output_columns: Tuple[str, ...],
    ) -> Selector:
        for parameter in statement.select_params:
            if parameter not in parameter_names:
                raise BindingError(
                    f"OPTIMIZE selects undeclared parameter @{parameter}"
                )
        for group in statement.group_by:
            if group not in parameter_names:
                raise BindingError(
                    f"GROUP BY references {group!r}, which is not a declared "
                    "parameter (group keys are parameter names)"
                )
        constraints = []
        for clause in statement.constraints:
            if clause.column not in output_columns:
                raise BindingError(
                    f"constraint references unknown column {clause.column!r}"
                )
            constraints.append(
                Constraint(
                    aggregate=clause.aggregate,
                    metric=clause.metric,
                    column=clause.column,
                    op=clause.op,
                    threshold=clause.threshold,
                )
            )
        objectives = [
            Objective(parameter=o.parameter, direction=o.direction)
            for o in statement.objectives
        ]
        return Selector(
            group_by=statement.group_by,
            constraints=constraints,
            objectives=objectives,
        )

    # -- GRAPH ---------------------------------------------------------------

    def _bind_graph(
        self,
        statement: GraphStatement,
        parameter_names: Set[str],
        output_columns: Tuple[str, ...],
    ) -> GraphSpec:
        if statement.x_parameter not in parameter_names:
            raise BindingError(
                f"GRAPH OVER references undeclared @{statement.x_parameter}"
            )
        series = []
        for entry in statement.series:
            if entry.column not in output_columns:
                raise BindingError(
                    f"GRAPH series references unknown column "
                    f"{entry.column!r}"
                )
            series.append((entry.metric, entry.column, entry.style))
        return GraphSpec(
            x_parameter=statement.x_parameter, series=tuple(series)
        )


def _chain_offset(spec: ChainSpec) -> int:
    """Extract the integer step offset from ``@driver : driver_expr``.

    Supported forms: ``@driver``, ``@driver - k``, ``@driver + k``.
    """
    expr = spec.offset_expr
    if isinstance(expr, ParamNode) and expr.name == spec.driver:
        return 0
    if (
        isinstance(expr, BinaryNode)
        and expr.op in ("+", "-")
        and isinstance(expr.left, ParamNode)
        and expr.left.name == spec.driver
        and isinstance(expr.right, NumberLit)
    ):
        magnitude = int(expr.right.value)
        if magnitude != expr.right.value:
            raise BindingError("chain offsets must be integers")
        return magnitude if expr.op == "+" else -magnitude
    raise BindingError(
        "chain offset must have the form @driver, @driver + k, or "
        "@driver - k"
    )


def bind_script(
    script: Script,
    registry: BlackBoxRegistry,
    tables: Optional[Dict[str, object]] = None,
) -> BoundQuery:
    """Convenience wrapper: bind a parsed script in one call."""
    return Binder(script, registry, tables=tables).bind()


def compile_query(
    source: str,
    registry: BlackBoxRegistry,
    tables: Optional[Dict[str, object]] = None,
) -> BoundQuery:
    """Parse and bind query text in one step (the public entry point)."""
    from repro.lang.parser import parse_script

    return bind_script(parse_script(source), registry, tables=tables)
