"""ASCII rendering of GRAPH OVER output (the Fuzzy Prophet display).

The paper's Figure 2 GUI plots expected values of result columns against one
parameter (the x-axis); this module renders the same series as terminal art
so the interactive tool is usable without a graphics stack.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

_SERIES_GLYPHS = "*o+x#@"


def ascii_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    title: str = "",
) -> str:
    """Render one or more y-series against shared x-values.

    Each series gets a glyph; overlapping cells show the later series.  Axis
    labels give the y-range and the x endpoints.
    """
    if not x_values:
        raise ValueError("ascii_chart needs at least one x value")
    if not series:
        raise ValueError("ascii_chart needs at least one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} "
                "x values"
            )
    width = max(width, 16)
    height = max(height, 4)

    all_values = [v for ys in series.values() for v in ys]
    y_min = min(all_values)
    y_max = max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min = min(x_values)
    x_max = max(x_values)
    x_span = (x_max - x_min) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for series_index, (name, ys) in enumerate(series.items()):
        glyph = _SERIES_GLYPHS[series_index % len(_SERIES_GLYPHS)]
        for x, y in zip(x_values, ys):
            column = int(round((x - x_min) / x_span * (width - 1)))
            row = int(
                round((y - y_min) / (y_max - y_min) * (height - 1))
            )
            grid[height - 1 - row][column] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(
        len(f"{y_max:.4g}"), len(f"{y_min:.4g}")
    )
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:.4g}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{y_min:.4g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_min:.4g}".ljust(width - 8) + f"{x_max:.4g}".rjust(8)
    lines.append(" " * (label_width + 2) + x_axis)
    legend = "   ".join(
        f"{_SERIES_GLYPHS[i % len(_SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def render_graph(
    x_parameter: str,
    x_values: Sequence[float],
    metric_series: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
) -> str:
    """Render a bound GRAPH clause's series (names like ``expect overload``)."""
    return ascii_chart(
        x_values,
        metric_series,
        width=width,
        height=height,
        title=f"GRAPH OVER @{x_parameter}",
    )
