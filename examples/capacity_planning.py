#!/usr/bin/env python
"""Capacity planning: a cloud-cluster purchase study with timing evidence.

The scenario from the paper's introduction: an analyst forecasts the risk of
running out of CPU cores under two candidate purchase dates.  This example

1. sweeps the purchase space naively and with fingerprints, reporting the
   work saved;
2. prints the time series of expected capacity vs. demand for the chosen
   plan as an ASCII chart (what the paper's Figure 2 dashboard shows);
3. shows the per-week overload risk of the best and worst plans.

Run:  python examples/capacity_planning.py
"""

import time

from repro import ScenarioRunner, compile_query
from repro.blackbox import BlackBoxRegistry, CapacityModel, DemandModel
from repro.interactive.plotting import ascii_chart
from repro.scenario import boolean_column_families

WEEKS = 28

QUERY = f"""
DECLARE PARAMETER @current_week AS RANGE 0 TO {WEEKS} STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO {WEEKS} STEP BY 7;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO {WEEKS} STEP BY 7;
SELECT DemandModel(@current_week, 14) AS demand,
       CapacityModel(@current_week, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.2
GROUP BY purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
"""


def build():
    registry = BlackBoxRegistry()
    registry.register(DemandModel(), "DemandModel")
    registry.register(
        CapacityModel(
            base_capacity=16.0, purchase_volume=12.0, structure_size=1.5
        ),
        "CapacityModel",
    )
    return compile_query(QUERY, registry)


def explore(bound, use_fingerprints):
    runner = ScenarioRunner(
        bound.scenario,
        samples_per_point=150,
        fingerprint_size=10,
        use_fingerprints=use_fingerprints,
        column_families=boolean_column_families(
            bound.scenario, ("overload",)
        ),
    )
    started = time.perf_counter()
    result = runner.run()
    return result, time.perf_counter() - started


def weekly_series(result, plan, column):
    series = []
    for week in range(WEEKS + 1):
        point = {
            "current_week": float(week),
            "purchase1": plan["purchase1"],
            "purchase2": plan["purchase2"],
        }
        series.append(result.metrics_for(point)[column].expectation)
    return series


def main():
    bound = build()

    naive_result, naive_seconds = explore(bound, use_fingerprints=False)
    jigsaw_result, jigsaw_seconds = explore(bound, use_fingerprints=True)
    stats = jigsaw_result.stats
    print(
        f"space: {stats.points_total} points | naive {naive_seconds:.1f}s, "
        f"jigsaw {jigsaw_seconds:.1f}s "
        f"({naive_seconds / jigsaw_seconds:.1f}x), "
        f"{stats.bases_created} bases, reuse {stats.reuse_fraction:.0%}"
    )

    answer = jigsaw_result.optimize(bound.selector)
    if answer.best is None:
        print("no purchase plan satisfies the risk bound")
        return
    best = answer.best_parameters()
    print(
        f"\nlatest safe plan: purchases at weeks "
        f"{best['purchase1']:.0f} and {best['purchase2']:.0f}"
    )

    weeks = [float(w) for w in range(WEEKS + 1)]
    chart = ascii_chart(
        weeks,
        {
            "E[capacity]": weekly_series(jigsaw_result, best, "capacity"),
            "E[demand]": weekly_series(jigsaw_result, best, "demand"),
        },
        width=64,
        height=14,
        title=(
            f"expected capacity vs demand, purchases at "
            f"{best['purchase1']:.0f} & {best['purchase2']:.0f}"
        ),
    )
    print("\n" + chart)

    print("\nper-week overload risk of the chosen plan:")
    risks = weekly_series(jigsaw_result, best, "overload")
    worst = max(range(len(risks)), key=risks.__getitem__)
    print(
        "  "
        + " ".join(f"{r:.2f}" for r in risks[:: max(1, WEEKS // 14)])
        + f"   (worst week {worst}: {risks[worst]:.2f})"
    )

    eager = {"purchase1": 0.0, "purchase2": 0.0}
    eager_risks = weekly_series(jigsaw_result, eager, "overload")
    print(
        f"\nfor comparison, buying everything at week 0 has worst-week "
        f"risk {max(eager_risks):.2f} but pays upkeep from day one — "
        "the trade-off the OPTIMIZE clause navigates."
    )


if __name__ == "__main__":
    main()
