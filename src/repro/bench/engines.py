"""The two prototype engines compared in paper section 6.1 (Figure 7).

The paper's original prototype is a C# layer over Microsoft SQL Server whose
timings are dominated by interprocess communication and per-invocation SQL
interpretation; its second prototype is a lightweight Ruby driver that calls
black boxes directly.  We rebuild both roles:

* :class:`WrapperEngine` — the "online" path: every parameter point re-parses
  the scenario's query text, marshals each sampled row through a
  string-serialization boundary (the IPC analogue), and executes through the
  full probdb operator pipeline.  Its one strength mirrors the DBMS's: bulk,
  set-oriented data operations (the vectorized path of data-heavy models).
* :class:`CoreEngine` — the "offline" path: direct Python invocation of the
  black box per sample, no parsing, no marshalling, but row-at-a-time data
  handling.

Figure 7's shape falls out: the wrapper pays orders of magnitude on cheap
models (overhead dominates) yet *wins* on the data-dependent UserSelect
model (bulk beats per-row loops).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional

from repro.blackbox.base import BlackBox, BlackBoxRegistry, Params
from repro.blackbox.user_selection import UserSelectionModel
from repro.core.estimator import Estimator, MetricSet
from repro.core.seeds import (
    DEFAULT_SEED_BANK,
    SeedBank,
    derive_seed,
    derive_seed_array,
)
from repro.lang.binder import compile_query


@dataclass
class EngineRun:
    """Result of evaluating one parameter point on an engine."""

    metrics: MetricSet
    samples_drawn: int


class CoreEngine:
    """Direct black-box driver: the Ruby-prototype analogue.

    ``vectorized=False`` (the default) preserves the prototype's defining
    cost model — row-at-a-time black-box invocation — which is what
    Figure 7's crossover against the set-oriented wrapper measures.
    ``vectorized=True`` switches to the batch sampling engine (bit-identical
    answers, one array call per point) for callers that want the production
    path rather than the paper's baseline.
    """

    name = "core"

    def __init__(
        self,
        box: BlackBox,
        samples_per_point: int = 1000,
        seed_bank: Optional[SeedBank] = None,
        estimator: Optional[Estimator] = None,
        vectorized: bool = False,
    ):
        self.box = box
        self.samples_per_point = samples_per_point
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK
        self.estimator = estimator or Estimator()
        self.vectorized = vectorized

    def evaluate_point(self, params: Params) -> EngineRun:
        # Seed derivation matches the query layer's single-call-site salt
        # (salt 0) so both prototypes produce bit-identical sample sets: the
        # engines differ in cost, never in answer.
        if self.vectorized:
            seeds = derive_seed_array(
                self.seed_bank.seed_array(self.samples_per_point), 0
            )
            samples = self.box.sample_batch(params, seeds)
            return EngineRun(
                metrics=self.estimator.estimate(samples),
                samples_drawn=int(samples.shape[0]),
            )
        samples = [
            self.box.sample(params, derive_seed(seed, 0))
            for seed in self.seed_bank.seeds(self.samples_per_point)
        ]
        return EngineRun(
            metrics=self.estimator.estimate(samples),
            samples_drawn=len(samples),
        )


class WrapperEngine:
    """Query-wrapper driver: the C# + SQL Server analogue.

    Costs modeled explicitly:

    * per-point query (re)compilation — the stored-procedure/SQL
      interpretation overhead;
    * per-sample row marshalling through a JSON string boundary — the
      interprocess-communication overhead;
    * bulk path for data-dependent models — the set-oriented strength of a
      real DBMS (``UserSelectionModel.sample_vectorized``).
    """

    name = "wrapper"

    def __init__(
        self,
        box: BlackBox,
        query_template: str,
        registry: Optional[BlackBoxRegistry] = None,
        samples_per_point: int = 1000,
        seed_bank: Optional[SeedBank] = None,
        estimator: Optional[Estimator] = None,
        marshalling_rounds: int = 3,
    ):
        self.box = box
        self.query_template = query_template
        self.registry = registry or _single_box_registry(box)
        self.samples_per_point = samples_per_point
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK
        self.estimator = estimator or Estimator()
        self.marshalling_rounds = marshalling_rounds

    def evaluate_point(self, params: Params) -> EngineRun:
        samples: List[float] = []
        for seed in self.seed_bank.seeds(self.samples_per_point):
            # Re-interpret the query for every Monte Carlo instance, as the
            # original prototype re-invoked the SQL engine on subqueries and
            # post-processed results outside the DBMS (paper section 6).
            bound = compile_query(self.query_template, self.registry)
            if isinstance(self.box, UserSelectionModel):
                value = self.box.sample_vectorized(
                    params, derive_seed(seed, 0)
                )
            else:
                row = bound.scenario.simulate(params, seed)
                value = row[next(iter(row))]
            samples.append(self._marshal_round_trip(params, value))
        return EngineRun(
            metrics=self.estimator.estimate(samples),
            samples_drawn=len(samples),
        )

    def _marshal_round_trip(self, params: Params, value: float) -> float:
        """Serialize the result row across the simulated process boundary."""
        payload = {"params": dict(params), "value": value}
        for _ in range(self.marshalling_rounds):
            payload = json.loads(json.dumps(payload))
        return float(payload["value"])


def _single_box_registry(box: BlackBox) -> BlackBoxRegistry:
    registry = BlackBoxRegistry()
    registry.register(box, box.name)
    return registry


def default_query_for(box: BlackBox) -> str:
    """A minimal scenario query template invoking ``box`` once.

    Declares each of the box's parameters over a small placeholder range;
    actual evaluation supplies concrete parameter values directly.
    """
    declares = "\n".join(
        f"DECLARE PARAMETER @{name} AS RANGE 0 TO 52 STEP BY 1;"
        for name in box.parameter_names
    )
    arguments = ", ".join(f"@{name}" for name in box.parameter_names)
    return (
        f"{declares}\n"
        f"SELECT {box.name}({arguments}) AS simulated INTO results;"
    )
