"""The UserSelection black box (paper Figure 6 and section 6.1).

"The UserSim black box simulates the per-user requirements of each of a set
of users."  This is the *data-dependent* model of the evaluation: one sample
touches a row per user, so its cost is dominated by bulk data handling rather
than model logic.  The paper uses it to show where the DBMS-backed prototype
beats the lightweight engine (Figure 7's last row); our wrapper engine takes
the vectorized bulk path while the core engine loops per user in Python,
preserving that crossover.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.blackbox.base import BlackBox, Params
from repro.blackbox.draws import DEFAULT_DRAW_CACHE
from repro.blackbox.fastrng import KIND_UNIFORM
from repro.blackbox.rng import DeterministicRng


class UserSelectionModel(BlackBox):
    """Aggregate stochastic requirement of a population of users.

    Each user has a lognormal-ish base requirement that grows with the
    current date and is active with a per-user probability; one sample sums
    the active users' requirements.
    """

    name = "UserSelect"
    parameter_names: Tuple[str, ...] = ("current_week",)

    def __init__(
        self,
        user_count: int = 5000,
        mean_requirement: float = 2.0,
        requirement_spread: float = 0.5,
        activity_probability: float = 0.8,
        weekly_growth: float = 0.01,
    ):
        super().__init__()
        if user_count <= 0:
            raise ValueError("user_count must be positive")
        if not 0.0 <= activity_probability <= 1.0:
            raise ValueError("activity_probability must lie in [0, 1]")
        if requirement_spread < 0:
            raise ValueError("requirement_spread must be non-negative")
        self.user_count = user_count
        self.mean_requirement = mean_requirement
        self.requirement_spread = requirement_spread
        self.activity_probability = activity_probability
        self.weekly_growth = weekly_growth

    def _growth_factor(self, week: float) -> float:
        return 1.0 + self.weekly_growth * max(week, 0.0)

    def _sample(self, params: Params, seed: int) -> float:
        """Row-at-a-time evaluation: one Python-level loop over users.

        Uses the same (uniform, uniform) draws per user as the bulk path,
        pushing the second through the normal quantile function, so the two
        paths produce bit-identical samples for a given seed.
        """
        week = float(params["current_week"])
        rng = DeterministicRng(seed)
        growth = self._growth_factor(week)
        total = 0.0
        for _ in range(self.user_count):
            activity_draw = rng.uniform()
            requirement_draw = rng.uniform()
            active = activity_draw < self.activity_probability
            requirement = self.mean_requirement + (
                self.requirement_spread
                * float(_normal_ppf(np.array([requirement_draw]))[0])
            )
            if active:
                total += max(requirement, 0.0) * growth
        return total

    def _sample_batch(
        self, params: Params, seeds: np.ndarray
    ) -> Optional[np.ndarray]:
        """All seeds at once: one (seeds × 2·users) standard-uniform matrix.

        Per-user arithmetic matches :meth:`_sample` lane for lane, and the
        user contributions are accumulated left to right, one column at a
        time, so the floating-point sum is bit-identical to the scalar loop
        without materializing a (seeds × users) cumulative-sum matrix.
        """
        week = float(params["current_week"])
        growth = self._growth_factor(week)
        kinds = (KIND_UNIFORM,) * (2 * self.user_count)
        draws = DEFAULT_DRAW_CACHE.matrix(seeds, kinds)
        activity_draws = draws[:, 0::2]
        requirement_draws = draws[:, 1::2]
        active = activity_draws < self.activity_probability
        requirement = self.mean_requirement + (
            self.requirement_spread * _normal_ppf(requirement_draws)
        )
        contributions = np.where(
            active, np.maximum(requirement, 0.0) * growth, 0.0
        )
        total = np.zeros(contributions.shape[0], dtype=np.float64)
        for column in range(contributions.shape[1]):
            total += contributions[:, column]
        return total

    def sample_vectorized(self, params: Params, seed: int) -> float:
        """Set-at-a-time evaluation: the bulk path a DBMS engine would take.

        Draws the same variates as :meth:`sample` (activity first, then
        requirement, per user, from one stream) so row and bulk paths agree
        exactly for a given seed.
        """
        week = float(params["current_week"])
        rng = DeterministicRng(seed)
        growth = self._growth_factor(week)
        draws = rng.uniforms(2 * self.user_count).reshape(self.user_count, 2)
        active = draws[:, 0] < self.activity_probability
        # Invert the uniform draw through the normal quantile function so the
        # per-user requirement matches the scalar path's normal() draw.
        requirement = (
            self.mean_requirement
            + self.requirement_spread * _normal_ppf(draws[:, 1])
        )
        self._invocations += 1
        contributions = np.where(active, np.maximum(requirement, 0.0), 0.0)
        return float(contributions.sum() * growth)


def _normal_ppf(u: np.ndarray) -> np.ndarray:
    """Acklam-style rational approximation of the standard normal quantile.

    Accurate to ~1e-9, sufficient for the bulk path, and dependency-free.
    """
    a = (
        -3.969683028665376e01,
        2.209460984245205e02,
        -2.759285104469687e02,
        1.383577518672690e02,
        -3.066479806614716e01,
        2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01,
        1.615858368580409e02,
        -1.556989798598866e02,
        6.680131188771972e01,
        -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e00,
        -2.549732539343734e00,
        4.374664141464968e00,
        2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e00,
        3.754408661907416e00,
    )
    u = np.clip(u, 1e-300, 1.0 - 1e-16)
    result = np.empty_like(u)

    low = u < 0.02425
    high = u > 1.0 - 0.02425
    mid = ~(low | high)

    if np.any(mid):
        q = u[mid] - 0.5
        r = q * q
        num = ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        den = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        result[mid] = num * q / den

    if np.any(low):
        q = np.sqrt(-2.0 * np.log(u[low]))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        result[low] = num / den

    if np.any(high):
        q = np.sqrt(-2.0 * np.log(1.0 - u[high]))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        result[high] = -num / den

    return result
