"""Unit tests for ASCII chart rendering (the GRAPH OVER display)."""

import pytest

from repro.interactive.plotting import ascii_chart, render_graph


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            [0.0, 1.0, 2.0],
            {"demand": [0.0, 1.0, 2.0]},
            width=20,
            height=6,
            title="demo",
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert "*" in chart
        assert "demand" in chart

    def test_two_series_two_glyphs(self):
        chart = ascii_chart(
            [0.0, 1.0],
            {"a": [0.0, 1.0], "b": [1.0, 0.0]},
            width=20,
            height=6,
        )
        assert "*" in chart and "o" in chart
        assert "a" in chart.splitlines()[-1]
        assert "b" in chart.splitlines()[-1]

    def test_y_axis_labels(self):
        chart = ascii_chart([0.0, 1.0], {"s": [5.0, 15.0]}, width=20, height=6)
        assert "15" in chart
        assert "5" in chart

    def test_x_axis_endpoints(self):
        chart = ascii_chart([2.0, 8.0], {"s": [0.0, 1.0]}, width=24, height=5)
        assert "2" in chart and "8" in chart

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart([0.0, 1.0], {"s": [3.0, 3.0]})
        assert "s" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([], {"s": []})
        with pytest.raises(ValueError):
            ascii_chart([0.0], {})
        with pytest.raises(ValueError):
            ascii_chart([0.0, 1.0], {"s": [1.0]})

    def test_minimum_dimensions_enforced(self):
        chart = ascii_chart([0.0, 1.0], {"s": [0.0, 1.0]}, width=1, height=1)
        assert len(chart.splitlines()) >= 6


class TestRenderGraph:
    def test_title_names_parameter(self):
        text = render_graph(
            "current_week",
            [0.0, 1.0, 2.0],
            {"expect overload": [0.0, 0.5, 1.0]},
        )
        assert "GRAPH OVER @current_week" in text
        assert "expect overload" in text
