"""Figure 11: indexing with the parameter space grown with the basis count.

Paper shape: with the basis held at 10% of the parameter space, per-point
cost under the Array scan grows linearly in the basis count while the hash
indexes grow sub-linearly.
"""

import pytest

from repro.bench.workloads import synth_basis_workload
from repro.core.explorer import ParameterExplorer

SAMPLES = 30
BASIS_COUNTS = (20, 80)
STRATEGIES = ("array", "normalization", "sorted_sid")


@pytest.mark.parametrize("basis_count", BASIS_COUNTS, ids=str)
@pytest.mark.parametrize("strategy", STRATEGIES, ids=str)
def test_scaled_space(benchmark, basis_count, strategy):
    workload = synth_basis_workload(basis_count, basis_count * 10)

    def run():
        explorer = ParameterExplorer(
            workload.simulation(),
            samples_per_point=SAMPLES,
            fingerprint_size=10,
            index_strategy=strategy,
        )
        return explorer.run(workload.points)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.stats.bases_created == basis_count


def test_fig11_shape():
    """Array candidate tests grow ~quadratically with the basis count
    (linear per lookup x linear lookups); hash indexes stay ~linear."""

    def candidates_tested(basis_count, strategy):
        workload = synth_basis_workload(basis_count, basis_count * 10)
        explorer = ParameterExplorer(
            workload.simulation(),
            samples_per_point=SAMPLES,
            fingerprint_size=10,
            index_strategy=strategy,
        )
        explorer.run(workload.points)
        return explorer.store.stats.candidates_tested

    small, large = BASIS_COUNTS
    growth = large / small
    array_growth = candidates_tested(large, "array") / candidates_tested(
        small, "array"
    )
    hash_growth = candidates_tested(
        large, "normalization"
    ) / candidates_tested(small, "normalization")
    assert array_growth > growth * 1.5  # super-linear
    assert hash_growth < array_growth / 2  # clearly flatter
