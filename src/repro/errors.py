"""Exception hierarchy for the Jigsaw reproduction.

All library-raised exceptions derive from :class:`JigsawError` so callers can
catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class JigsawError(Exception):
    """Base class for every error raised by this library."""


class MappingError(JigsawError):
    """A mapping function could not be constructed or applied."""


class FingerprintError(JigsawError):
    """A fingerprint is malformed or incompatible with an operation."""


class IndexError_(JigsawError):
    """A fingerprint index was used inconsistently.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class EstimatorError(JigsawError):
    """Output metrics could not be computed or remapped."""


class MarkovError(JigsawError):
    """A Markov process or jump evaluation was configured incorrectly."""


class OptimizationError(JigsawError):
    """An OPTIMIZE query has no feasible answer or is ill-formed."""


class SchemaError(JigsawError):
    """A probdb schema or relation was used inconsistently."""


class QueryError(JigsawError):
    """A probdb logical query plan is invalid."""


class ParseError(JigsawError):
    """The Jigsaw query language text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class BindingError(JigsawError):
    """A parsed query references unknown models, parameters, or columns."""


class InteractiveError(JigsawError):
    """The interactive session was driven with inconsistent requests."""


class PersistError(JigsawError):
    """A basis-store snapshot could not be written or read."""


class SnapshotCorruptionError(PersistError):
    """A snapshot file is truncated, bit-damaged, or structurally broken.

    Raised before any partial state reaches a store: a load either returns
    a complete, checksum-verified store or raises this.
    """


class SnapshotCompatibilityError(PersistError):
    """A snapshot is intact but was built under an incompatible
    configuration (mapping family, index strategy, tolerances, estimator,
    or seed bank).

    Reusing such a store would be silently wrong — fingerprints are only
    comparable under one seed bank and one tolerance regime — so the load
    refuses instead.
    """
