"""Unit tests for binding parsed scripts to executable objects."""

import pytest

from repro.blackbox import (
    BlackBoxRegistry,
    CapacityModel,
    DemandModel,
)
from repro.errors import BindingError
from repro.lang.binder import compile_query
from repro.scenario.parameter import (
    ChainParameter,
    RangeParameter,
    SetParameter,
)


def registry():
    reg = BlackBoxRegistry()
    reg.register(DemandModel(), "DemandModel")
    reg.register(CapacityModel(), "CapacityModel")
    return reg


FIG1 = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 8 STEP BY 2;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 8 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 8 STEP BY 4;
DECLARE PARAMETER @feature_release AS SET (2, 6);
SELECT DemandModel(@current_week, @feature_release) AS demand,
       CapacityModel(@current_week, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @feature_release, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.01
GROUP BY feature_release, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
"""


class TestBindFigure1:
    def test_parameters_bound(self):
        bound = compile_query(FIG1, registry())
        specs = {p.name: p for p in bound.scenario.parameters}
        assert isinstance(specs["current_week"], RangeParameter)
        assert isinstance(specs["feature_release"], SetParameter)
        assert specs["feature_release"].values() == (2.0, 6.0)

    def test_output_columns(self):
        bound = compile_query(FIG1, registry())
        assert bound.scenario.output_columns == (
            "demand",
            "capacity",
            "overload",
        )

    def test_selector_bound(self):
        bound = compile_query(FIG1, registry())
        assert bound.selector is not None
        assert bound.selector.group_by == (
            "feature_release",
            "purchase1",
            "purchase2",
        )
        assert bound.selector.constraints[0].column == "overload"

    def test_simulation_runs(self):
        bound = compile_query(FIG1, registry())
        row = bound.scenario.simulate(
            {
                "current_week": 4.0,
                "purchase1": 0.0,
                "purchase2": 4.0,
                "feature_release": 2.0,
            },
            seed=77,
        )
        assert set(row) == {"demand", "capacity", "overload"}
        assert row["overload"] in (0.0, 1.0)

    def test_call_sites_get_distinct_salts(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 2 STEP BY 1;
        SELECT DemandModel(@w, 50) AS a, DemandModel(@w, 50) AS b
        INTO results;
        """
        bound = compile_query(source, registry())
        row = bound.scenario.simulate({"w": 1.0}, seed=5)
        assert row["a"] != row["b"]


class TestChainBinding:
    def test_chain_offsets(self):
        reg = registry()
        for offset_text, expected in (
            ("@w", 0),
            ("@w - 1", -1),
            ("@w + 2", 2),
        ):
            source = f"""
            DECLARE PARAMETER @w AS RANGE 0 TO 4 STEP BY 1;
            DECLARE PARAMETER @c AS CHAIN out FROM @w : {offset_text}
                INITIAL VALUE 9;
            SELECT DemandModel(@w, @c) AS out INTO results;
            """
            bound = compile_query(source, reg)
            chain = bound.scenario.chain_parameters[0]
            assert isinstance(chain, ChainParameter)
            assert chain.driver_offset == expected

    def test_unsupported_offset_form_rejected(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 4 STEP BY 1;
        DECLARE PARAMETER @c AS CHAIN out FROM @w : @w * 2 INITIAL VALUE 9;
        SELECT DemandModel(@w, @c) AS out INTO results;
        """
        with pytest.raises(BindingError):
            compile_query(source, registry())

    def test_chain_driver_must_be_declared(self):
        source = """
        DECLARE PARAMETER @c AS CHAIN out FROM @nope : @nope - 1
            INITIAL VALUE 9;
        SELECT DemandModel(@c, @c) AS out INTO results;
        """
        with pytest.raises(BindingError):
            compile_query(source, registry())


class TestBindingErrors:
    def test_unknown_black_box(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 1 STEP BY 1;
        SELECT Mystery(@w) AS x INTO results;
        """
        with pytest.raises(BindingError):
            compile_query(source, registry())

    def test_wrong_arity(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 1 STEP BY 1;
        SELECT DemandModel(@w) AS x INTO results;
        """
        with pytest.raises(BindingError):
            compile_query(source, registry())

    def test_undeclared_parameter(self):
        source = "SELECT DemandModel(@w, @f) AS x INTO results;"
        with pytest.raises(BindingError):
            compile_query(source, registry())

    def test_unknown_column_reference(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 1 STEP BY 1;
        SELECT missing + 1 AS x INTO results;
        """
        with pytest.raises(BindingError):
            compile_query(source, registry())

    def test_duplicate_parameter_declaration(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 1 STEP BY 1;
        DECLARE PARAMETER @w AS RANGE 0 TO 2 STEP BY 1;
        SELECT DemandModel(@w, @w) AS x INTO results;
        """
        with pytest.raises(BindingError):
            compile_query(source, registry())

    def test_two_selects_rejected(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 1 STEP BY 1;
        SELECT DemandModel(@w, @w) AS x INTO results;
        SELECT DemandModel(@w, @w) AS y INTO other;
        """
        with pytest.raises(BindingError):
            compile_query(source, registry())

    def test_optimize_references_must_be_parameters(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 1 STEP BY 1;
        SELECT DemandModel(@w, @w) AS x INTO results;
        OPTIMIZE SELECT @w FROM results GROUP BY not_a_param FOR MAX @w;
        """
        with pytest.raises(BindingError):
            compile_query(source, registry())

    def test_optimize_unknown_constraint_column(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 1 STEP BY 1;
        SELECT DemandModel(@w, @w) AS x INTO results;
        OPTIMIZE SELECT @w FROM results WHERE MAX(EXPECT nope) < 1
        GROUP BY w FOR MAX @w;
        """
        with pytest.raises(BindingError):
            compile_query(source, registry())

    def test_graph_unknown_column(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 1 STEP BY 1;
        SELECT DemandModel(@w, @w) AS x INTO results;
        GRAPH OVER @w EXPECT nope;
        """
        with pytest.raises(BindingError):
            compile_query(source, registry())

    def test_graph_unknown_parameter(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 1 STEP BY 1;
        SELECT DemandModel(@w, @w) AS x INTO results;
        GRAPH OVER @zzz EXPECT x;
        """
        with pytest.raises(BindingError):
            compile_query(source, registry())


class TestGraphBinding:
    def test_graph_spec(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 4 STEP BY 1;
        SELECT DemandModel(@w, 2) AS demand INTO results;
        GRAPH OVER @w EXPECT demand WITH bold red;
        """
        bound = compile_query(source, registry())
        assert bound.graph is not None
        assert bound.graph.x_parameter == "w"
        assert bound.graph.series[0][:2] == ("expect", "demand")


class TestScalarFunctions:
    def test_abs_in_select(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 1 STEP BY 1;
        SELECT abs(0 - @w) AS magnitude INTO results;
        """
        bound = compile_query(source, registry())
        assert bound.scenario.simulate({"w": 1.0}, 0)["magnitude"] == 1.0

    def test_nested_from_subquery(self):
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 1 STEP BY 1;
        SELECT demand * 2 AS doubled
        FROM (SELECT DemandModel(@w, 50) AS demand)
        INTO results;
        """
        bound = compile_query(source, registry())
        row = bound.scenario.simulate({"w": 1.0}, 5)
        assert "doubled" in row
