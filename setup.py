"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so ``pip install -e . --no-use-pep517`` works in offline environments
where the ``wheel`` package (required by the PEP 517 editable path) is not
installed.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={
        # Optional JIT compute backend (repro.core.backend); the library
        # runs fully on numpy without it.
        "accel": ["numba"],
    },
    python_requires=">=3.9",
)
