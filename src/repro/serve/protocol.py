"""Length-prefixed JSON framing for the serving daemon's socket protocol.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object.  Requests and responses are the
:mod:`repro.api.messages` dicts — every float crosses as ``float.hex()``
(the snapshot manifest convention), so answers survive the wire
bitwise.  The framing is deliberately boring: any language can speak it
with a dozen lines, and a stuck peer can never desynchronize the stream
(the length is read before the body, oversized frames are refused
before allocation).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from repro.errors import ProtocolError

#: Refuse frames larger than this before reading the body — a corrupt or
#: hostile length prefix must not become an allocation.  64 MiB is far
#: beyond any legitimate request (a million-sample refine is ~24 MiB of
#: hex floats).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def encode_frame(body: dict) -> bytes:
    """One framed message as bytes (length prefix + UTF-8 JSON)."""
    payload = json.dumps(
        body, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def send_frame(sock: socket.socket, body: dict) -> None:
    """Write one framed message to a connected socket."""
    sock.sendall(encode_frame(body))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on clean EOF at a boundary,
    ProtocolError on EOF mid-message."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one framed message; None on clean EOF between frames."""
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame, over the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ProtocolError("connection closed between prefix and body")
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(
            f"frame body is not valid UTF-8 JSON "
            f"({type(error).__name__}: {error})"
        ) from error
    if not isinstance(body, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got "
            f"{type(body).__name__}"
        )
    return body
