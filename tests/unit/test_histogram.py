"""Unit tests for the histogram answer representation and its remapping."""

import numpy as np
import pytest

from repro.core.estimator import Estimator, Histogram
from repro.core.mapping import AffineMapping
from repro.errors import EstimatorError

SAMPLES = np.linspace(0.0, 10.0, 101)


class TestConstruction:
    def test_estimator_builds_histogram(self):
        metrics = Estimator(histogram_bins=5).estimate(SAMPLES)
        assert metrics.histogram is not None
        assert len(metrics.histogram.counts) == 5
        assert metrics.histogram.total == len(SAMPLES)
        assert metrics.histogram.edges[0] == 0.0
        assert metrics.histogram.edges[-1] == 10.0

    def test_histogram_off_by_default(self):
        assert Estimator().estimate(SAMPLES).histogram is None

    def test_negative_bins_rejected(self):
        with pytest.raises(EstimatorError):
            Estimator(histogram_bins=-1)

    def test_edge_count_validated(self):
        with pytest.raises(EstimatorError):
            Histogram((1, 2), (0.0, 1.0))

    def test_density_sums_to_one(self):
        histogram = Estimator(histogram_bins=4).estimate(SAMPLES).histogram
        assert sum(histogram.density()) == pytest.approx(1.0)


class TestRemap:
    def test_positive_alpha_maps_edges(self):
        histogram = Histogram((5, 10), (0.0, 1.0, 2.0))
        mapped = histogram.remap(AffineMapping(2.0, 1.0))
        assert mapped.edges == (1.0, 3.0, 5.0)
        assert mapped.counts == (5, 10)

    def test_negative_alpha_reverses_bins(self):
        histogram = Histogram((5, 10), (0.0, 1.0, 2.0))
        mapped = histogram.remap(AffineMapping(-1.0, 0.0))
        assert mapped.edges == (-2.0, -1.0, 0.0)
        assert mapped.counts == (10, 5)

    def test_remap_matches_recomputing(self):
        # Irregular samples keep values off computed bin edges: a value
        # exactly on an interior edge may switch bins under a negative-alpha
        # map because numpy bins are half-open (edges always agree exactly).
        # Equally spaced samples would sit on 1/4, 1/2, 3/4 edges.
        samples = np.random.default_rng(7).uniform(0.0, 10.0, 200)
        mapping = AffineMapping(-2.5, 4.0)
        estimator = Estimator(histogram_bins=8)
        remapped = estimator.estimate(samples).histogram.remap(mapping)
        direct = estimator.estimate(mapping.apply_array(samples)).histogram
        assert remapped.counts == direct.counts
        assert remapped.edges == pytest.approx(direct.edges)

    def test_metricset_remap_carries_histogram(self):
        metrics = Estimator(histogram_bins=4).estimate(SAMPLES)
        remapped = metrics.remap(AffineMapping(3.0, -1.0))
        assert remapped.histogram is not None
        assert remapped.histogram.edges[0] == pytest.approx(-1.0)


class TestProbabilityAbove:
    def test_exact_at_edges(self):
        histogram = Histogram((10, 30, 60), (0.0, 1.0, 2.0, 3.0))
        assert histogram.probability_above(1.0) == pytest.approx(0.9)
        assert histogram.probability_above(0.0) == pytest.approx(1.0)
        assert histogram.probability_above(3.0) == 0.0

    def test_interpolates_within_bin(self):
        histogram = Histogram((100,), (0.0, 1.0))
        assert histogram.probability_above(0.25) == pytest.approx(0.75)

    def test_matches_empirical_tail(self):
        histogram = Estimator(histogram_bins=50).estimate(SAMPLES).histogram
        empirical = float((SAMPLES > 7.3).mean())
        assert histogram.probability_above(7.3) == pytest.approx(
            empirical, abs=0.03
        )

    def test_empty_histogram_rejected(self):
        with pytest.raises(EstimatorError):
            Histogram((0, 0), (0.0, 1.0, 2.0)).probability_above(0.5)
