"""Columnar mirror of a basis store's fingerprints and index keys.

The scalar FindMatch loop touches one :class:`BasisDistribution` at a time;
every candidate costs a Python ``MappingFamily.find`` call.  This module
keeps the same data *columnar*: all basis fingerprints of one size live in a
contiguous, incrementally appended ``(n_bases, fingerprint_size)`` float
matrix, with parallel SID-order and normal-form key matrices alongside, so
one ``find_matrix`` call validates every candidate of a probe in a handful
of array operations.

Layout notes:

* Basis ids are dense (``BasisStore`` hands them out sequentially), so id →
  (size, row) lookups are plain integer-array indexing, not dict probes.
* Stores may hold fingerprints of several sizes (a candidate of the wrong
  size is untestable but still *counted* by the scalar loop); rows are
  therefore grouped into per-size blocks and gathered per probe.
* Matrices grow geometrically — appends are amortized O(row), and merges
  adopt another store's blocks with one concatenate per size.
* Key matrices are materialized lazily behind a fill watermark: a store
  whose family never consults SID orders (or normal forms) never pays for
  them, and the entries are read from each fingerprint's own cache, so the
  keys are bitwise the ones the hash indexes inserted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fingerprint import (
    Fingerprint,
    batch_normal_forms,
    batch_sid_orders,
)

_EMPTY_ROWS = np.empty(0, dtype=np.int64)

#: Tombstoned rows are compacted away once they exceed this fraction of a
#: store's total rows — removal stays O(1) amortized, matrices stay dense.
COMPACT_TOMBSTONE_FRACTION = 0.5


class _SizeBlock:
    """All stored fingerprints of one size, as contiguous matrices."""

    def __init__(self, size: int, capacity: int = 8):
        self.size = size
        self.count = 0
        self.matrix = np.empty((capacity, size), dtype=np.float64)
        self.ids: List[int] = []
        self.fingerprints: List[Fingerprint] = []
        self.dead = 0
        self._sid_matrix: Optional[np.ndarray] = None
        self._sid_filled = 0
        self._nf_matrix: Dict[float, Tuple[np.ndarray, int]] = {}

    def _reserve(self, extra: int) -> None:
        needed = self.count + extra
        capacity = len(self.matrix)
        # Copy-on-write promotion: a block restored from a snapshot holds
        # read-only memory-mapped matrices (shared across forked workers).
        # Any append first lands the matrices in fresh writable arrays; the
        # snapshot file on disk is never written through.
        if needed <= capacity and self.matrix.flags.writeable:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty((capacity, self.size), dtype=np.float64)
        grown[: self.count] = self.matrix[: self.count]
        self.matrix = grown
        if self._sid_matrix is not None:
            sid = np.empty((capacity, self.size), dtype=np.int64)
            sid[: self._sid_filled] = self._sid_matrix[: self._sid_filled]
            self._sid_matrix = sid
        for rel_tol, (nf, filled) in self._nf_matrix.items():
            grown_nf = np.empty((capacity, self.size), dtype=np.float64)
            grown_nf[:filled] = nf[:filled]
            self._nf_matrix[rel_tol] = (grown_nf, filled)

    def append(self, basis_id: int, fingerprint: Fingerprint) -> int:
        """Add one fingerprint row; returns its row index."""
        self._reserve(1)
        row = self.count
        self.matrix[row] = fingerprint.array
        self.ids.append(basis_id)
        self.fingerprints.append(fingerprint)
        self.count += 1
        return row

    def tombstone(self, row: int) -> None:
        """Mark one row dead.  The matrix row and the fingerprint object
        stay in place (lazy key fills must still walk every live row's
        cache) until :meth:`compact` rebuilds the block without them."""
        self.ids[row] = -1
        self.dead += 1

    def compact(self) -> int:
        """Rebuild the block without tombstoned rows; returns rows dropped.

        Fancy indexing materializes fresh writable matrices, so compacting
        a memory-mapped block is also a copy-on-write promotion — the
        snapshot file is never written through.  Fully filled key matrices
        are carried over row-for-row (they stay bitwise the inserted keys);
        partially filled ones are dropped and lazily refilled from the
        fingerprints' own caches, which yields the same bits.
        """
        if self.dead == 0:
            return 0
        keep = [row for row in range(self.count) if self.ids[row] >= 0]
        dropped = self.count - len(keep)
        self.matrix = self.matrix[keep]
        if self._sid_matrix is not None and self._sid_filled == self.count:
            self._sid_matrix = self._sid_matrix[keep]
            self._sid_filled = len(keep)
        else:
            self._sid_matrix = None
            self._sid_filled = 0
        self._nf_matrix = {
            rel_tol: (matrix[keep], len(keep))
            for rel_tol, (matrix, filled) in self._nf_matrix.items()
            if filled == self.count
        }
        self.ids = [self.ids[row] for row in keep]
        self.fingerprints = [self.fingerprints[row] for row in keep]
        self.count = len(keep)
        self.dead = 0
        return dropped

    def rows(self, row_indices: np.ndarray) -> np.ndarray:
        """Gathered fingerprint rows (a no-copy view for the full scan)."""
        active = self.matrix[: self.count]
        if len(row_indices) == self.count and bool(
            (row_indices == np.arange(self.count)).all()
        ):
            # The ArrayIndex full scan gathers every row in order; hand the
            # contiguous view back instead of materializing a copy.
            return active
        return active[row_indices]

    def sid_matrix(self, backend=None) -> np.ndarray:
        """Ascending SID-order keys, one row per stored fingerprint.

        Filled from each fingerprint's cached ``sid_order`` (computing the
        missing ones in one vectorized pass through ``backend``), so
        entries are bitwise the keys a :class:`SortedSIDIndex` hashed on
        insert.
        """
        if self._sid_matrix is None:
            self._sid_matrix = np.empty(
                (len(self.matrix), self.size), dtype=np.int64
            )
        if self._sid_filled < self.count:
            fresh = self.fingerprints[self._sid_filled : self.count]
            orders = batch_sid_orders(fresh, backend=backend)
            self._sid_matrix[self._sid_filled : self.count] = orders
            self._sid_filled = self.count
        return self._sid_matrix[: self.count]

    @classmethod
    def restore(
        cls,
        size: int,
        matrix: np.ndarray,
        ids: Sequence[int],
        fingerprints: Sequence[Fingerprint],
        sid_matrix: Optional[np.ndarray] = None,
        nf_matrices: Optional[Dict[float, np.ndarray]] = None,
    ) -> "_SizeBlock":
        """Rebuild a block from snapshot arrays (``repro.core.persist``).

        ``matrix`` (and the optional key matrices) may be read-only
        memory-mapped views; they are adopted as-is — capacity equals the
        row count, so the first append triggers :meth:`_reserve`'s
        copy-on-write promotion instead of writing through the mapping.
        Key matrices are marked fully filled: their rows were persisted
        from (and stay bitwise equal to) the fingerprints' cached keys.
        """
        block = cls.__new__(cls)
        block.size = size
        block.count = len(ids)
        block.matrix = matrix
        block.ids = list(ids)
        block.fingerprints = list(fingerprints)
        block.dead = 0
        block._sid_matrix = sid_matrix
        block._sid_filled = block.count if sid_matrix is not None else 0
        block._nf_matrix = {
            rel_tol: (nf, block.count)
            for rel_tol, nf in (nf_matrices or {}).items()
        }
        return block

    def nf_matrix(self, rel_tol: float, backend=None) -> np.ndarray:
        """Normal-form keys, one row per stored fingerprint (lazy, cached
        per tolerance like :meth:`Fingerprint.normal_form` itself)."""
        entry = self._nf_matrix.get(rel_tol)
        if entry is None:
            entry = (np.empty((len(self.matrix), self.size)), 0)
        matrix, filled = entry
        if filled < self.count:
            fresh = self.fingerprints[filled : self.count]
            matrix[filled : self.count] = batch_normal_forms(
                fresh, rel_tol, backend=backend
            )
            filled = self.count
        self._nf_matrix[rel_tol] = (matrix, filled)
        return matrix[: self.count]


class CandidateKeys:
    """Lazy per-candidate key-matrix view handed to ``find_matrix``.

    Families that prune on order statistics (monotone) read ``sid_asc()``;
    families that never ask keep the store from materializing anything.
    ``backend`` (carried from the owning store) routes lazy key fills
    through the store's compute backend.
    """

    def __init__(
        self, block: _SizeBlock, row_indices: np.ndarray, backend=None
    ):
        self._block = block
        self._rows = row_indices
        self._backend = backend

    def sid_asc(self) -> np.ndarray:
        """Ascending SID-order rows for the gathered candidates."""
        return self._block.sid_matrix(backend=self._backend)[self._rows]

    def normal_forms(self, rel_tol: float) -> np.ndarray:
        """Normal-form key rows for the gathered candidates."""
        return self._block.nf_matrix(rel_tol, backend=self._backend)[
            self._rows
        ]


class ColumnarStore:
    """Columnar companion of one :class:`repro.core.basis.BasisStore`."""

    def __init__(self) -> None:
        self._blocks: Dict[int, _SizeBlock] = {}
        self._size_of = np.zeros(8, dtype=np.int64)
        self._row_of = np.zeros(8, dtype=np.int64)
        self._known = 0
        self._tombstones = 0
        # Sticky: once any id has been retired, `gather` stops trusting
        # `_row_of` unconditionally (see the single-block fast path there).
        self._had_holes = False

    def __len__(self) -> int:
        return self._known

    @property
    def tombstones(self) -> int:
        """Rows currently marked dead but not yet compacted away."""
        return self._tombstones

    def _block(self, size: int) -> _SizeBlock:
        block = self._blocks.get(size)
        if block is None:
            block = _SizeBlock(size)
            self._blocks[size] = block
        return block

    def _register(self, basis_id: int, size: int, row: int) -> None:
        if basis_id >= len(self._size_of):
            capacity = len(self._size_of)
            while capacity <= basis_id:
                capacity *= 2
            for name in ("_size_of", "_row_of"):
                grown = np.zeros(capacity, dtype=np.int64)
                old = getattr(self, name)
                grown[: len(old)] = old
                setattr(self, name, grown)
        self._size_of[basis_id] = size
        self._row_of[basis_id] = row
        self._known = max(self._known, basis_id + 1)

    def add(self, basis_id: int, fingerprint: Fingerprint) -> None:
        """Mirror one stored basis into the columnar matrices."""
        row = self._block(fingerprint.size).append(basis_id, fingerprint)
        self._register(basis_id, fingerprint.size, row)

    def restore_blocks(self, blocks: Dict[int, _SizeBlock]) -> None:
        """Adopt fully built size blocks (the snapshot load path).

        Replaces this (empty) store's contents; the id -> (size, row)
        lookup arrays are rebuilt writable, so only the block matrices
        themselves stay memory-mapped.
        """
        self._blocks = dict(blocks)
        for size, block in self._blocks.items():
            for row, basis_id in enumerate(block.ids):
                self._register(basis_id, size, row)

    def discard(self, basis_id: int) -> None:
        """Retire one basis's row (tombstone now, compact past threshold).

        The id's dense-array entries are zeroed — ``_size_of == 0`` never
        equals a real fingerprint size, so a stale id handed to ``gather``
        is filtered out by the size check rather than aliasing a live row.
        """
        if (
            basis_id < 0
            or basis_id >= self._known
            or self._size_of[basis_id] == 0
        ):
            raise KeyError(basis_id)
        size = int(self._size_of[basis_id])
        block = self._blocks[size]
        block.tombstone(int(self._row_of[basis_id]))
        self._size_of[basis_id] = 0
        self._row_of[basis_id] = 0
        self._tombstones += 1
        self._had_holes = True
        total = sum(block.count for block in self._blocks.values())
        if self._tombstones > COMPACT_TOMBSTONE_FRACTION * total:
            self.compact()

    def compact(self) -> int:
        """Rebuild every block tombstone-free; returns rows dropped.

        Surviving rows keep their relative order (and their key-matrix
        bits), so a compacted store answers every probe exactly as the
        tombstoned one did — only ``_row_of`` is renumbered.
        """
        dropped = 0
        for size in list(self._blocks):
            block = self._blocks[size]
            dropped += block.compact()
            if block.count == 0:
                del self._blocks[size]
            else:
                for row, basis_id in enumerate(block.ids):
                    self._row_of[basis_id] = row
        self._tombstones = 0
        return dropped

    def adopt(self, other: "ColumnarStore", id_map: Dict[int, int]) -> None:
        """Bulk-append another store's rows under translated basis ids.

        The merge counterpart of :meth:`add`: each of ``other``'s size
        blocks lands in this store with one matrix concatenate (ids absent
        from ``id_map`` were collapsed into mappings and carry no row).
        Materialized key matrices are *not* copied — the adopted
        fingerprints keep their cached keys, so a later watermark fill is
        a cache read, not a recomputation.
        """
        for size, incoming in other._blocks.items():
            kept = [
                row
                for row in range(incoming.count)
                if incoming.ids[row] in id_map
            ]
            if not kept:
                continue
            block = self._block(size)
            block._reserve(len(kept))
            start = block.count
            block.matrix[start : start + len(kept)] = incoming.matrix[kept]
            for offset, row in enumerate(kept):
                basis_id = id_map[incoming.ids[row]]
                block.ids.append(basis_id)
                block.fingerprints.append(incoming.fingerprints[row])
                self._register(basis_id, size, start + offset)
            block.count += len(kept)

    def gather(
        self, candidates: Sequence[int], size: int
    ) -> Tuple[np.ndarray, np.ndarray, Optional[_SizeBlock]]:
        """Locate a probe's candidates in the columnar layout.

        Returns ``(positions, rows, block)``: ``positions`` are indices
        into ``candidates`` whose basis has the probe's fingerprint size
        (the only testable ones — the rest fail the scalar loop's size
        check), ``rows`` their rows in ``block``.
        """
        block = self._blocks.get(size)
        if block is None or not candidates:
            return _EMPTY_ROWS, _EMPTY_ROWS, None
        ids = np.fromiter(
            candidates, dtype=np.int64, count=len(candidates)
        )
        if len(self._blocks) == 1 and not self._had_holes:
            # Single-size store with no retired ids: every candidate is
            # testable and `_row_of` is authoritative for any id the index
            # can hand us.  Once a removal has happened neither holds (a
            # stale id's `_row_of` entry would alias row 0), so holey
            # stores always take the size-checked gather below.
            positions = np.arange(len(ids))
            rows = self._row_of[ids]
        else:
            testable = self._size_of[ids] == size
            positions = np.nonzero(testable)[0]
            rows = self._row_of[ids[positions]]
        return positions, rows, block
