"""Unit tests for deterministic variate generation.

The linearity tests are the crux: for a *fixed seed*, normal/uniform/
exponential draws must be exact location-scale transforms of their standard
draws, because that property is what makes fingerprints of different
parameter values affinely mappable (paper section 3.1).
"""

import math

import numpy as np
import pytest

from repro.blackbox.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(123)
        b = DeterministicRng(123)
        assert [a.normal() for _ in range(10)] == [
            b.normal() for _ in range(10)
        ]

    def test_different_seeds_different_streams(self):
        assert DeterministicRng(1).normal() != DeterministicRng(2).normal()

    def test_seed_property(self):
        assert DeterministicRng(77).seed == 77


class TestLocationScaleLinearity:
    """Draw k from two RNGs with the same seed but different parameters:
    outputs must be exact affine images of each other."""

    def test_normal_affine_in_mean_and_stddev(self):
        base = [DeterministicRng(5).normal(0.0, 1.0) for _ in range(1)][0]
        shifted = DeterministicRng(5).normal(10.0, 3.0)
        assert shifted == pytest.approx(10.0 + 3.0 * base, rel=1e-12)

    def test_uniform_affine_in_bounds(self):
        base = DeterministicRng(5).uniform(0.0, 1.0)
        mapped = DeterministicRng(5).uniform(-2.0, 6.0)
        assert mapped == pytest.approx(-2.0 + 8.0 * base, rel=1e-12)

    def test_exponential_linear_in_mean(self):
        base = DeterministicRng(5).exponential(1.0)
        scaled = DeterministicRng(5).exponential(4.0)
        assert scaled == pytest.approx(4.0 * base, rel=1e-12)

    def test_normal_from_variance_matches_sqrt(self):
        direct = DeterministicRng(5).normal(2.0, math.sqrt(0.49))
        via_variance = DeterministicRng(5).normal_from_variance(2.0, 0.49)
        assert direct == via_variance


class TestDistributions:
    def test_uniform_within_bounds(self):
        rng = DeterministicRng(11)
        for _ in range(200):
            value = rng.uniform(3.0, 4.0)
            assert 3.0 <= value < 4.0

    def test_normal_moments(self):
        rng = DeterministicRng(11)
        draws = np.array([rng.normal(5.0, 2.0) for _ in range(4000)])
        assert draws.mean() == pytest.approx(5.0, abs=0.15)
        assert draws.std() == pytest.approx(2.0, abs=0.15)

    def test_exponential_mean(self):
        rng = DeterministicRng(11)
        draws = np.array([rng.exponential(3.0) for _ in range(4000)])
        assert draws.mean() == pytest.approx(3.0, abs=0.25)
        assert (draws >= 0).all()

    def test_bernoulli_frequency(self):
        rng = DeterministicRng(11)
        hits = sum(rng.bernoulli(0.3) for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.3, abs=0.03)

    def test_bernoulli_extremes(self):
        rng = DeterministicRng(11)
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_poisson_mean(self):
        rng = DeterministicRng(11)
        draws = [rng.poisson(4.0) for _ in range(4000)]
        assert sum(draws) / 4000 == pytest.approx(4.0, abs=0.2)

    def test_choice_range(self):
        rng = DeterministicRng(11)
        values = {rng.choice(5) for _ in range(500)}
        assert values == {0, 1, 2, 3, 4}

    def test_bulk_draws_shapes(self):
        rng = DeterministicRng(11)
        assert rng.standard_normals(7).shape == (7,)
        assert rng.uniforms(7).shape == (7,)
        assert rng.standard_normals(0).shape == (0,)


class TestValidation:
    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).uniform(2.0, 1.0)

    def test_normal_rejects_negative_stddev(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).normal(0.0, -1.0)

    def test_variance_rejects_negative(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).normal_from_variance(0.0, -0.1)

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).exponential(0.0)

    def test_bernoulli_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).bernoulli(1.5)

    def test_poisson_rejects_negative_mean(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).poisson(-1.0)

    def test_choice_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).choice(0)

    def test_bulk_rejects_negative_count(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).standard_normals(-1)
        with pytest.raises(ValueError):
            DeterministicRng(1).uniforms(-1)
