"""Unit tests for adaptive search over fingerprint-reusing exploration."""

import pytest

from repro.blackbox.rng import DeterministicRng
from repro.core.explorer import ParameterExplorer
from repro.core.search import ExhaustiveSearch, HillClimbSearch
from repro.errors import OptimizationError
from repro.scenario.parameter import RangeParameter
from repro.scenario.space import ParameterSpace


def quadratic_simulation(params, seed):
    """Noisy concave bowl peaking at (a=6, b=4)."""
    rng = DeterministicRng(seed)
    mean = 100.0 - (params["a"] - 6.0) ** 2 - (params["b"] - 4.0) ** 2
    return rng.normal(mean, 1.0)


def space():
    return ParameterSpace(
        [
            RangeParameter("a", 0.0, 10.0, 1.0),
            RangeParameter("b", 0.0, 8.0, 1.0),
        ]
    )


def explorer():
    return ParameterExplorer(
        quadratic_simulation, samples_per_point=40, fingerprint_size=10
    )


def objective(metrics):
    return metrics.expectation


class TestHillClimb:
    def test_finds_global_optimum_of_concave_objective(self):
        search = HillClimbSearch(
            explorer(), space(), objective, restarts=2
        )
        result = search.run()
        assert result.best_point == {"a": 6.0, "b": 4.0}
        assert result.best_score == pytest.approx(100.0, abs=1.0)

    def test_visits_fewer_points_than_exhaustive(self):
        climb = HillClimbSearch(
            explorer(), space(), objective, restarts=2
        ).run()
        exhaustive = ExhaustiveSearch(explorer(), space(), objective).run()
        assert climb.trace.evaluations < exhaustive.trace.evaluations
        assert climb.best_point == exhaustive.best_point

    def test_feasibility_constraint_respected(self):
        def feasible(metrics):
            return metrics.expectation < 99.0  # exclude the peak

        result = HillClimbSearch(
            explorer(), space(), objective, feasible=feasible, restarts=3
        ).run()
        assert result.best_point is not None
        assert result.best_point != {"a": 6.0, "b": 4.0}
        assert result.best_metrics.expectation < 99.0

    def test_fingerprint_reuse_occurs_during_search(self):
        """Adaptive search still flows through the basis store (the point
        of paper section 2.3's note): correlated candidates reuse work."""
        result = HillClimbSearch(
            explorer(), space(), objective, restarts=3
        ).run()
        assert result.explorer_stats_reused > 0

    def test_trace_improvements_monotone(self):
        result = HillClimbSearch(
            explorer(), space(), objective, restarts=1
        ).run()
        scores = [score for _, score in result.trace.improvements]
        assert scores == sorted(scores)

    def test_validation(self):
        with pytest.raises(OptimizationError):
            HillClimbSearch(explorer(), space(), objective, restarts=0)
        with pytest.raises(OptimizationError):
            HillClimbSearch(explorer(), space(), objective, max_steps=0)

    def test_empty_space_degenerates_to_single_point(self):
        empty = ParameterSpace([])
        constant_explorer = ParameterExplorer(
            lambda params, seed: DeterministicRng(seed).normal(5.0),
            samples_per_point=20,
            fingerprint_size=10,
        )
        # The empty space has the single all-defaults point and no axes;
        # the search degenerates to evaluating that point.
        result = HillClimbSearch(constant_explorer, empty, objective).run()
        assert result.best_point == {}
        assert result.best_score == pytest.approx(5.0, abs=1.0)


class TestExhaustive:
    def test_covers_whole_space(self):
        result = ExhaustiveSearch(explorer(), space(), objective).run()
        assert result.trace.evaluations == space().size()
        assert result.best_point == {"a": 6.0, "b": 4.0}

    def test_infeasible_everywhere(self):
        result = ExhaustiveSearch(
            explorer(), space(), objective, feasible=lambda m: False
        ).run()
        assert result.best_point is None
        assert result.best_score == float("-inf")
