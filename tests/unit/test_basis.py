"""Unit tests for the basis-distribution store (paper Algorithm 3)."""

import numpy as np
import pytest

from repro.core.basis import BasisStore
from repro.core.estimator import Estimator
from repro.core.fingerprint import Fingerprint
from repro.core.index import ArrayIndex
from repro.core.mapping import (
    AffineMapping,
    IdentityMappingFamily,
    LinearMappingFamily,
    MonotoneMappingFamily,
)


def affine_fp(fp, alpha, beta):
    return Fingerprint(tuple(alpha * v + beta for v in fp.values))


BASE_FP = Fingerprint((0.0, 1.0, 0.5, 2.0, -1.0))
BASE_SAMPLES = np.linspace(-1.0, 2.0, 50)


class TestAddAndMatch:
    def test_empty_store_matches_nothing(self):
        store = BasisStore()
        assert store.match(BASE_FP) is None
        assert len(store) == 0

    def test_added_basis_matches_itself(self):
        store = BasisStore()
        store.add(BASE_FP, BASE_SAMPLES)
        matched = store.match(BASE_FP)
        assert matched is not None
        basis, mapping = matched
        assert isinstance(mapping, AffineMapping)
        assert mapping.is_identity
        assert basis.fingerprint == BASE_FP

    def test_affine_image_matches_with_mapping(self):
        store = BasisStore()
        store.add(BASE_FP, BASE_SAMPLES)
        probe = affine_fp(BASE_FP, 2.0, 1.0)
        basis, mapping = store.match(probe)
        assert mapping.alpha == pytest.approx(2.0)
        assert mapping.beta == pytest.approx(1.0)

    def test_unrelated_fingerprint_does_not_match(self):
        store = BasisStore()
        store.add(BASE_FP, BASE_SAMPLES)
        assert store.match(Fingerprint((0.0, 1.0, 0.9, 0.1, 0.2))) is None

    def test_ids_are_sequential(self):
        store = BasisStore()
        first = store.add(BASE_FP, BASE_SAMPLES)
        second = store.add(
            Fingerprint((0.0, 1.0, 0.9, 0.1, 0.2)), BASE_SAMPLES
        )
        assert (first.basis_id, second.basis_id) == (0, 1)
        assert store.get(1) is second

    def test_bases_property_sorted(self):
        store = BasisStore()
        store.add(BASE_FP, BASE_SAMPLES)
        store.add(Fingerprint((0.0, 1.0, 0.9, 0.1, 0.2)), BASE_SAMPLES)
        assert [b.basis_id for b in store.bases] == [0, 1]


class TestMetricsFor:
    def test_affine_reuse_uses_closed_form(self):
        store = BasisStore()
        basis = store.add(BASE_FP, BASE_SAMPLES)
        mapping = AffineMapping(3.0, -1.0)
        metrics = store.metrics_for(basis, mapping)
        direct = Estimator().estimate(mapping.apply_array(BASE_SAMPLES))
        assert metrics.expectation == pytest.approx(direct.expectation)
        assert metrics.stddev == pytest.approx(direct.stddev)

    def test_general_mapping_recomputes_from_samples(self):
        store = BasisStore(mapping_family=MonotoneMappingFamily())
        basis = store.add(BASE_FP, BASE_SAMPLES)
        cubed = Fingerprint(tuple(v**3 for v in BASE_FP.values))
        matched = store.match(cubed)
        assert matched is not None
        _, mapping = matched
        metrics = store.metrics_for(basis, mapping)
        assert metrics.count == len(BASE_SAMPLES)


class TestStats:
    def test_counters_track_activity(self):
        store = BasisStore()
        store.match(BASE_FP)
        store.add(BASE_FP, BASE_SAMPLES)
        store.match(affine_fp(BASE_FP, 2.0, 0.0))
        stats = store.stats
        assert stats.lookups == 2
        assert stats.matches == 1
        assert stats.bases_created == 1
        assert stats.candidates_tested >= 1
        assert set(stats.as_dict()) == {
            "lookups",
            "candidates_tested",
            "matches",
            "bases_created",
        }


class TestExtendBasis:
    def test_extension_updates_metrics(self):
        store = BasisStore()
        basis = store.add(BASE_FP, np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        before = basis.metrics.count
        store.extend_basis(basis.basis_id, np.array([6.0, 7.0]))
        assert store.get(basis.basis_id).metrics.count == before + 2
        assert store.get(basis.basis_id).metrics.maximum == 7.0


class TestFamilyIndexInteraction:
    def test_identity_family_falls_back_to_array_index(self):
        store = BasisStore(mapping_family=IdentityMappingFamily())
        assert isinstance(store.index, ArrayIndex)

    def test_explicit_index_respected(self):
        index = ArrayIndex()
        store = BasisStore(
            mapping_family=LinearMappingFamily(), index=index
        )
        assert store.index is index

    def test_identity_family_still_matches_equal(self):
        store = BasisStore(mapping_family=IdentityMappingFamily())
        store.add(BASE_FP, BASE_SAMPLES)
        matched = store.match(Fingerprint(BASE_FP.values))
        assert matched is not None
        _, mapping = matched
        assert mapping.is_identity

    def test_identity_family_rejects_affine_image(self):
        store = BasisStore(mapping_family=IdentityMappingFamily())
        store.add(BASE_FP, BASE_SAMPLES)
        assert store.match(affine_fp(BASE_FP, 2.0, 0.0)) is None
