"""Command-line interface: run Jigsaw query files from a shell.

Usage::

    python -m repro run scenario.sql [--samples N] [--fingerprint M]
                                     [--store DIR] [--save-store DIR]
    python -m repro graph scenario.sql [--samples N]
    python -m repro explain scenario.sql
    python -m repro serve --store DIR [--port P] [--save-store DIR]
    python -m repro bench [--store DIR] [--rate R] [--concurrency N,M]
    python -m repro store info DIR | verify DIR
    python -m repro store compact DIR [--out DIR]
    python -m repro store evict DIR --max-bases N [--max-bytes B]
                                    [--keep value|recent] [--out DIR]

``run`` executes the batch pipeline (explore + OPTIMIZE) and prints the
answer; ``graph`` renders the query's GRAPH clause as an ASCII chart over
its x parameter; ``explain`` parses and binds the query, reporting the
scenario structure without simulating.  ``--save-store`` persists the
per-column basis stores after a run and ``--store`` warm-starts a later
run from them (one snapshot surface: :class:`repro.api.Session`):
repeated queries over the same scenario then pay only fingerprint rounds
for covered points.  Models are resolved against
:func:`repro.blackbox.default_registry`; applications embedding the library
register their own boxes and call the same functions programmatically.

Every simulating command accepts ``--backend NAME`` (see
:mod:`repro.core.backend`): it selects the process-active compute
backend before any store is built, so sampling and matching kernels —
including the ones fork-pool shard workers run — go through that
backend.  Unknown or unavailable names are refused up front with exit
code 2; they never fall back silently.  ``store info`` reports which
backend would serve the snapshot alongside the manifest summary.

``serve`` opens a snapshot as a warm :class:`~repro.api.Session` and
serves estimate/match/refine over the socket protocol
(:mod:`repro.serve`), printing one parseable ``SERVE_READY`` line when
listening; SIGTERM drains and exits 0, Ctrl-C drains and exits 130.
``bench`` drives the open-loop load generator against an ephemeral
daemon and prints a JSON latency/throughput summary.  ``store`` inspects
(``info``) or load-checks (``verify``) a snapshot without serving it,
and runs the lifecycle maintenance passes offline: ``compact`` rewrites
a snapshot tombstone-free at the current format version (so it also
migrates version-1 snapshots), ``evict`` applies a reuse-value-aware
:class:`~repro.core.basis.EvictionPolicy` bound and rewrites.

Sweeps are fault tolerant (see :mod:`repro.core.supervise`):
``--shard-timeout``/``--shard-retries`` tune the supervision policy,
``--checkpoint DIR`` persists completed-shard outcomes so an interrupted
run resumes from where it stopped, and Ctrl-C exits with code 130 after
flushing any ``--save-store`` snapshot — never a half-written one (saves
are atomic).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.blackbox import BlackBoxRegistry, default_registry
from repro.core.adaptive import (
    AdaptiveBudget,
    fixed_budget_samples,
    saved_fraction,
)
from repro.core.supervise import SupervisionPolicy
from repro.errors import JigsawError
from repro.interactive.plotting import render_graph
from repro.lang.binder import BoundQuery, compile_query
from repro.scenario import ScenarioRunner
from repro.util.tables import format_table


def _apply_backend(args: argparse.Namespace) -> None:
    """Install ``--backend`` as the process-active compute backend.

    Runs before the command handler touches any store, so every
    subsequently built :class:`~repro.core.basis.BasisStore` (and every
    fork-pool worker, via the pool initializer) resolves to it.  Unknown
    or unavailable names raise :class:`~repro.errors.BackendError`,
    which ``main`` maps to exit code 2 — selection never degrades to a
    different backend silently.
    """
    name = getattr(args, "backend", None)
    if name is not None:
        from repro.core.backend import use_backend

        use_backend(name)


def _load(path: str, registry: Optional[BlackBoxRegistry]) -> BoundQuery:
    with open(path) as handle:
        source = handle.read()
    return compile_query(source, registry or default_registry())


def _command_explain(args: argparse.Namespace) -> int:
    bound = _load(args.query, None)
    scenario = bound.scenario
    rows = []
    for spec in scenario.parameters:
        if spec.is_chain:
            rows.append([f"@{spec.name}", "CHAIN", "(evolved)"])
        else:
            values = spec.values()
            preview = ", ".join(f"{v:g}" for v in values[:6])
            if len(values) > 6:
                preview += ", ..."
            rows.append([f"@{spec.name}", type(spec).__name__, preview])
    print(format_table(["parameter", "kind", "values"], rows))
    print(f"\noutput columns : {', '.join(scenario.output_columns)}")
    print(f"parameter space: {scenario.space.size()} points")
    print(f"optimize clause: {'yes' if bound.selector else 'no'}")
    print(f"graph clause   : {'yes' if bound.graph else 'no'}")
    return 0


def _adaptive_policy(args: argparse.Namespace) -> Optional[AdaptiveBudget]:
    """Build the stopping policy from ``--rtol``/``--confidence`` (or None)."""
    if args.rtol is None:
        return None
    return AdaptiveBudget(rtol=args.rtol, confidence=args.confidence)


def _supervision_policy(
    args: argparse.Namespace,
) -> Optional[SupervisionPolicy]:
    """Build the shard-supervision policy from ``--shard-timeout`` /
    ``--shard-retries`` (None keeps the library default)."""
    overrides = {}
    if args.shard_timeout is not None:
        overrides["timeout"] = args.shard_timeout
    if args.shard_retries is not None:
        overrides["max_attempts"] = args.shard_retries
    return SupervisionPolicy(**overrides) if overrides else None


def _build_runner(
    bound: BoundQuery, args: argparse.Namespace
) -> ScenarioRunner:
    return ScenarioRunner(
        bound.scenario,
        samples_per_point=args.samples,
        fingerprint_size=args.fingerprint,
        workers=args.workers,
        adaptive=_adaptive_policy(args),
        supervision=_supervision_policy(args),
        checkpoint=args.checkpoint,
    )


def _adaptive_note(args, stats) -> str:
    """Header annotation for an adaptive run: rounds saved vs fixed budget."""
    fixed = fixed_budget_samples(
        stats.points_total,
        stats.points_reused,
        args.samples,
        args.fingerprint,
    )
    saved = saved_fraction(stats.rounds_executed, fixed)
    return (
        f" [adaptive rtol={args.rtol:g} @ {args.confidence:.0%}: "
        f"saved {saved:.0%} of {fixed} fixed-budget rounds]"
    )


def _warm_start(runner: ScenarioRunner, args: argparse.Namespace) -> str:
    """Apply ``--store`` (load) before a run; returns the header note."""
    if not args.store:
        return ""
    runner.load_stores(args.store)
    return (
        f" [warm store: {runner.basis_count()} bases from {args.store}]"
    )


def _save_after(runner: ScenarioRunner, args: argparse.Namespace) -> None:
    """Apply ``--save-store`` after a run (atomic snapshot write)."""
    if args.save_store:
        runner.save_stores(args.save_store)
        print(
            f"stores saved to {args.save_store} "
            f"({runner.basis_count()} bases)",
            file=sys.stderr,
        )


def _interrupted(runner: ScenarioRunner, args: argparse.Namespace) -> int:
    """Ctrl-C landing: flush recoverable state, exit with code 130.

    Completed shards are already persisted by ``--checkpoint`` (each
    record is written atomically as it arrives); any bases the stores
    gathered are flushed to ``--save-store`` here via the atomic snapshot
    writer, so no half-written snapshot can be left behind either way.
    """
    try:
        _save_after(runner, args)
    except JigsawError as error:
        print(f"error while flushing stores: {error}", file=sys.stderr)
    note = ""
    if args.checkpoint:
        note = f"; completed shards checkpointed in {args.checkpoint}"
    print(f"interrupted{note}", file=sys.stderr)
    return 130


def _command_run(args: argparse.Namespace) -> int:
    bound = _load(args.query, None)
    runner = _build_runner(bound, args)
    warm_note = _warm_start(runner, args)
    try:
        result = runner.run()
    except KeyboardInterrupt:
        return _interrupted(runner, args)
    _save_after(runner, args)
    stats = result.stats
    sharding = ""
    if result.parallel is not None:
        sharding = (
            f" [{result.parallel.workers} workers, "
            f"{result.parallel.bases_collapsed} shard bases collapsed]"
        )
    adaptive_note = ""
    if args.rtol is not None:
        adaptive_note = _adaptive_note(args, stats)
    print(
        f"explored {stats.points_total} points | "
        f"{stats.rounds_executed} rounds "
        f"(reuse {stats.reuse_fraction:.0%}, {stats.bases_created} bases)"
        + sharding
        + adaptive_note
        + warm_note
    )
    if bound.selector is None:
        print("query has no OPTIMIZE clause; printing per-point expectations")
        rows = []
        for key, columns in sorted(result.metrics.items()):
            label = ", ".join(f"{n}={v:g}" for n, v in key)
            rows.append(
                [label]
                + [columns[c].expectation for c in bound.scenario.output_columns]
            )
        print(
            format_table(
                ["point"] + list(bound.scenario.output_columns), rows
            )
        )
        return 0
    answer = result.optimize(bound.selector)
    print(
        f"feasible groups: {len(answer.feasible_groups)} / "
        f"{len(answer.groups)}"
    )
    if answer.best is None:
        print("no feasible group satisfies the constraints")
        return 1
    best = answer.best_parameters()
    print(
        "best: " + ", ".join(f"@{name}={value:g}" for name, value in best.items())
    )
    return 0


def _command_graph(args: argparse.Namespace) -> int:
    bound = _load(args.query, None)
    if bound.graph is None:
        print("query has no GRAPH clause", file=sys.stderr)
        return 2
    runner = _build_runner(bound, args)
    _warm_start(runner, args)
    try:
        result = runner.run()
    except KeyboardInterrupt:
        return _interrupted(runner, args)
    _save_after(runner, args)
    x_parameter = bound.graph.x_parameter
    x_values = sorted(
        {params[x_parameter] for params in result.points.values()}
    )
    series = {}
    for metric, column, _ in bound.graph.series:
        points = []
        for x in x_values:
            matching = [
                result.metrics[key]
                for key, params in result.points.items()
                if params[x_parameter] == x
            ]
            values = [
                columns[column].expectation
                if metric == "expect"
                else columns[column].stddev
                for columns in matching
            ]
            points.append(sum(values) / len(values))
        series[f"{metric} {column}"] = points
    print(render_graph(x_parameter, x_values, series))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Serve a snapshot over the socket protocol until told to stop."""
    from repro.api import Session
    from repro.serve import BasisServer

    session = Session.open(args.store, mmap=not args.no_mmap)
    server = BasisServer(
        session,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        save_path=args.save_store,
    )
    server.start()
    # Handlers go in before the readiness line: an orchestrator may
    # signal the moment it reads it, and must still get a drain.
    server.install_signal_handlers()
    host, port = server.address
    # One parseable line for orchestrators (CI, the bench harness):
    # everything needed to connect, nothing that varies per host.
    print(
        f"SERVE_READY host={host} port={port} "
        f"bases={session.basis_count()}",
        flush=True,
    )
    return server.serve_forever(install_signals=False)


def _command_bench(args: argparse.Namespace) -> int:
    """Open-loop load against an ephemeral daemon; JSON summary out."""
    import json

    from repro.api import Session
    from repro.serve import (
        BasisServer,
        build_fixture_session,
        build_request_stream,
        run_open_loop,
    )

    if args.store:
        serve_session = Session.open(args.store)
        probe_session = Session.open(args.store)
    else:
        serve_session = build_fixture_session(seed=args.seed)
        probe_session = build_fixture_session(seed=args.seed)
    requests = build_request_stream(
        probe_session, args.requests, seed=args.seed
    )
    concurrency_levels = [
        int(level) for level in args.concurrency.split(",") if level
    ]
    runs = []
    server = BasisServer(serve_session).start()
    try:
        host, port = server.address
        for concurrency in concurrency_levels:
            result = run_open_loop(
                host,
                port,
                requests,
                rate=args.rate,
                concurrency=concurrency,
                seed=args.seed,
            )
            runs.append(result.summarize())
    finally:
        server.stop()
    document = {
        "requests": len(requests),
        "seed": args.seed,
        "store": args.store or "(seeded fixture)",
        "runs": runs,
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"bench summary written to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _command_store(args: argparse.Namespace) -> int:
    """Inspect, load-check, compact, or evict a snapshot directory."""
    import json

    from repro.core.persist import snapshot_info

    info = snapshot_info(args.path)
    if args.action == "info":
        from repro.core.backend import active_backend

        # The manifest records what is on disk; the backend descriptor
        # says which compute backend a load of this snapshot would use
        # (the process-active one — snapshots never pin a backend).
        document = dict(info, backend=active_backend().describe())
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    from repro.api import CompactRequest, EvictRequest, Session

    if args.action in ("compact", "evict"):
        # Lifecycle rewrites materialize the arrays (no mmap): the write
        # may replace the very files a mapped load would keep pages from.
        session = Session.open(args.path, mmap=False)
        target = args.out or args.path
        if args.action == "compact":
            response = session.compact(CompactRequest())
            session.save(target)
            print(
                f"compacted: dropped {sum(response.rows_dropped.values())} "
                f"tombstoned row(s); saved "
                f"{sum(response.bases.values())} bases to {target} "
                f"[version {snapshot_info(target)['version']}]"
            )
            return 0
        if args.max_bases is None and args.max_bytes is None:
            print(
                "error: evict needs --max-bases and/or --max-bytes",
                file=sys.stderr,
            )
            return 2
        response = session.evict(
            EvictRequest(
                max_bases=args.max_bases,
                max_bytes=args.max_bytes,
                keep=args.keep,
            )
        )
        session.save(target)
        evicted_total = sum(len(ids) for ids in response.evicted.values())
        print(
            f"evicted {evicted_total} basis/bases "
            f"({json.dumps({k: list(v) for k, v in sorted(response.evicted.items())})}); "
            f"saved {sum(response.bases.values())} bases to {target}"
        )
        return 0
    # verify: actually load every store (mmap) through the Session
    # surface, so index rebuild + CRC + compatibility checks all run.
    session = Session.open(args.path)
    counts = {
        name: len(store) for name, store in session.stores.items()
    }
    recorded = {
        name: entry["bases"] for name, entry in info["stores"].items()
    }
    if counts != recorded:
        print(
            f"error: snapshot at {args.path} loads {counts} bases but "
            f"records {recorded}",
            file=sys.stderr,
        )
        return 2
    print(
        f"snapshot OK: {sum(counts.values())} bases across "
        f"{len(counts)} store(s) [version {info['version']}]"
    )
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0.0:
        raise argparse.ArgumentTypeError("must be positive")
    return value


def _open_unit_float(text: str) -> float:
    value = float(text)
    if not 0.0 < value < 1.0:
        raise argparse.ArgumentTypeError("must be strictly between 0 and 1")
    return value


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help=(
            "compute backend for the sampling/matching kernels (default: "
            "the always-on 'numpy' reference; accelerated backends "
            "self-verify against it and refuse with exit 2 when their "
            "optional dependency is missing)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Jigsaw query runner"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, handler in (
        ("run", _command_run),
        ("graph", _command_graph),
        ("explain", _command_explain),
    ):
        sub = subparsers.add_parser(name)
        sub.add_argument("query", help="path to a Jigsaw query file")
        sub.add_argument("--samples", type=int, default=200)
        sub.add_argument("--fingerprint", type=int, default=10)
        sub.add_argument(
            "--workers",
            type=_positive_int,
            default=1,
            help=(
                "shard the sweep across this many processes (per-point "
                "estimates are bit-identical to --workers 1)"
            ),
        )
        sub.add_argument(
            "--rtol",
            type=_positive_float,
            default=None,
            help=(
                "adaptive sampling: stop each point once the confidence "
                "interval on every output's mean is within this relative "
                "tolerance (--samples stays the hard cap); omit for the "
                "fixed budget"
            ),
        )
        sub.add_argument(
            "--confidence",
            type=_open_unit_float,
            default=0.95,
            help="confidence level for --rtol stopping (default 0.95)",
        )
        sub.add_argument(
            "--store",
            default=None,
            help=(
                "warm-start the per-column basis stores from this snapshot "
                "directory (must match the query's mapping families, "
                "tolerances, and seed bank; incompatible snapshots are "
                "refused)"
            ),
        )
        sub.add_argument(
            "--save-store",
            default=None,
            help=(
                "after the run, save the (possibly warm-started) basis "
                "stores to this snapshot directory for later --store runs"
            ),
        )
        sub.add_argument(
            "--checkpoint",
            default=None,
            help=(
                "persist completed-shard outcomes to this directory as the "
                "sweep runs; an interrupted run re-invoked with the same "
                "arguments resumes from them (results stay bit-identical "
                "to an uninterrupted run)"
            ),
        )
        sub.add_argument(
            "--shard-timeout",
            type=_positive_float,
            default=None,
            help=(
                "per-shard-attempt deadline in seconds; a shard past it is "
                "abandoned and retried on a fresh pool (default: none)"
            ),
        )
        sub.add_argument(
            "--shard-retries",
            type=_positive_int,
            default=None,
            help=(
                "total attempts per shard before degrading to in-process "
                "recomputation (default 3; crashes and timeouts are "
                "retried, application errors are not)"
            ),
        )
        _add_backend_argument(sub)
        sub.set_defaults(handler=handler)

    serve = subparsers.add_parser(
        "serve", help="serve a snapshot over the socket protocol"
    )
    serve.add_argument(
        "--store",
        required=True,
        help="snapshot directory to serve (opened zero-copy via mmap)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to listen on (0 picks a free one; see SERVE_READY)",
    )
    serve.add_argument(
        "--max-batch",
        type=_positive_int,
        default=64,
        help="largest micro-batch the dispatcher forms (default 64)",
    )
    serve.add_argument(
        "--save-store",
        default=None,
        help=(
            "flush the (possibly refined) stores to this snapshot "
            "directory on shutdown (atomic)"
        ),
    )
    serve.add_argument(
        "--no-mmap",
        action="store_true",
        help="materialize arrays instead of memory-mapping the snapshot",
    )
    _add_backend_argument(serve)
    serve.set_defaults(handler=_command_serve)

    bench = subparsers.add_parser(
        "bench", help="open-loop load against an ephemeral daemon"
    )
    bench.add_argument(
        "--store",
        default=None,
        help=(
            "snapshot to serve and probe (default: a seeded built-in "
            "fixture store)"
        ),
    )
    bench.add_argument(
        "--requests",
        type=_positive_int,
        default=400,
        help="length of the seeded request stream (default 400)",
    )
    bench.add_argument(
        "--rate",
        type=_positive_float,
        default=1000.0,
        help="target open-loop arrival rate, requests/second",
    )
    bench.add_argument(
        "--concurrency",
        default="1,4",
        help="comma-separated client connection counts (default 1,4)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--out",
        default=None,
        help="write the JSON summary here instead of stdout",
    )
    _add_backend_argument(bench)
    bench.set_defaults(handler=_command_bench)

    store = subparsers.add_parser(
        "store",
        help="inspect, verify, compact, or evict a snapshot directory",
    )
    store.add_argument(
        "action",
        choices=("info", "verify", "compact", "evict"),
        help=(
            "info: print the manifest summary; verify: load-check it; "
            "compact: rewrite tombstone-free at the current snapshot "
            "version (migrates older formats); evict: apply an eviction "
            "policy and rewrite"
        ),
    )
    store.add_argument("path", help="snapshot directory")
    store.add_argument(
        "--max-bases",
        type=int,
        default=None,
        help="evict: bound each store to this many bases",
    )
    store.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict: bound each store's resident sample bytes",
    )
    store.add_argument(
        "--keep",
        choices=("value", "recent"),
        default="value",
        help=(
            "evict: ranking — 'value' retires the least-hit bases first, "
            "'recent' the oldest (default value)"
        ),
    )
    store.add_argument(
        "--out",
        default=None,
        help=(
            "compact/evict: write the result here instead of rewriting "
            "the snapshot in place"
        ),
    )
    _add_backend_argument(store)
    store.set_defaults(handler=_command_store)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _apply_backend(args)
        return args.handler(args)
    except KeyboardInterrupt:
        # Interrupts inside a sweep are flushed by the command handlers;
        # this is the boundary for everything outside one.
        print("interrupted", file=sys.stderr)
        return 130
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except JigsawError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
