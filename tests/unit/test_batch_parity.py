"""Scalar-vs-batch parity: the batch engine must be bit-identical.

The batch sampling subsystem's contract is that every vectorized path —
stream seeding, standard draws, black-box sampling, Markov stepping, and
the explorer's reuse decisions — produces *bitwise* the same numbers as the
scalar path it replaces.  These tests enforce that contract for every
built-in box and both Markov models, including the rare ziggurat-rejection
lanes that fall back to per-seed generators.
"""

import numpy as np
import pytest

from repro.blackbox import fastrng
from repro.blackbox.base import MarkovModel
from repro.blackbox.capacity import CapacityModel
from repro.blackbox.demand import DemandModel
from repro.blackbox.draws import StandardDrawCache, derived_seed_array_cached
from repro.blackbox.markov_branch import MarkovBranchModel
from repro.blackbox.markov_step import DemandObservedMarkovStep, MarkovStepModel
from repro.blackbox.overload import OverloadModel
from repro.blackbox.rng import DeterministicRng
from repro.blackbox.synth_basis import SynthBasisModel
from repro.blackbox.user_selection import UserSelectionModel
from repro.core.estimator import MetricSet
from repro.core.explorer import NaiveExplorer, ParameterExplorer
from repro.core.markov import MarkovJumpRunner, NaiveMarkovRunner
from repro.core.seeds import SeedBank, derive_seed, derive_seed_array

BANK = SeedBank()
SEEDS = BANK.seed_array(64)


class TestFastRngStreamParity:
    def test_fast_path_self_test_passes(self):
        assert fastrng.fast_path_available()

    @pytest.mark.parametrize(
        "kinds",
        [
            (fastrng.KIND_UNIFORM,),
            (fastrng.KIND_NORMAL,),
            (fastrng.KIND_EXPONENTIAL,),
            (
                fastrng.KIND_NORMAL,
                fastrng.KIND_EXPONENTIAL,
                fastrng.KIND_EXPONENTIAL,
            ),
            (fastrng.KIND_UNIFORM,) * 6,
        ],
    )
    def test_draw_matrix_matches_deterministic_rng(self, kinds):
        # Enough seeds that ziggurat rejection lanes occur (~1.5%/draw).
        seeds = np.arange(4000, dtype=np.uint64)
        matrix = fastrng.draw_matrix(seeds, kinds)
        draw = {
            fastrng.KIND_UNIFORM: DeterministicRng.standard_uniform,
            fastrng.KIND_NORMAL: DeterministicRng.standard_normal,
            fastrng.KIND_EXPONENTIAL: DeterministicRng.standard_exponential,
        }
        for i in (0, 1, 17, 1234, 3999):
            rng = DeterministicRng(int(seeds[i]))
            expected = [draw[kind](rng) for kind in kinds]
            assert matrix[i].tolist() == expected

    def test_rejection_lanes_are_bitwise_exact(self):
        seeds = np.arange(30000, dtype=np.uint64)
        fast = fastrng.draw_matrix(seeds, (fastrng.KIND_NORMAL,))[:, 0]
        sample = np.random.default_rng(7).choice(30000, size=400, replace=False)
        for i in sample:
            assert fast[i] == DeterministicRng(int(i)).standard_normal()

    def test_seed_arrays_match_scalar_derivation(self):
        assert [int(s) for s in BANK.seed_array(50)] == BANK.seeds(50)
        matrix = BANK.step_seed_matrix(7, 5, start_step=3)
        for row, step in enumerate(range(3, 8)):
            for i in range(7):
                assert int(matrix[row, i]) == BANK.step_seed(i, step)
        assert int(derive_seed_array(9, np.arange(4))[3]) == derive_seed(9, 3)

    def test_derived_seed_cache_matches_uncached(self):
        derived = derived_seed_array_cached(SEEDS, 2)
        assert np.array_equal(derived, derive_seed_array(SEEDS, 2))
        again = derived_seed_array_cached(SEEDS, 2)
        assert again is derived  # memoized


BOX_CASES = [
    (
        DemandModel(),
        {"current_week": 20.0, "feature_release": 12.0},
    ),
    (
        DemandModel(),
        {"current_week": 5.0, "feature_release": 12.0},
    ),
    (
        CapacityModel(),
        {"current_week": 20.0, "purchase1": 8.0, "purchase2": 16.0},
    ),
    (
        CapacityModel(structure_size=0.0, weekly_failure_rate=0.01),
        {"current_week": 20.0, "purchase1": 8.0, "purchase2": 16.0},
    ),
    (
        OverloadModel(
            capacity=CapacityModel(base_capacity=10.0, purchase_volume=10.0)
        ),
        {"current_week": 30.0, "purchase1": 8.0, "purchase2": 16.0},
    ),
    (SynthBasisModel(basis_count=7), {"point": 23.0}),
    (SynthBasisModel(basis_count=3, work_per_sample=4), {"point": 5.0}),
    (UserSelectionModel(user_count=50), {"current_week": 6.0}),
]


class TestBlackBoxBatchParity:
    @pytest.mark.parametrize(
        "box,params", BOX_CASES, ids=lambda case: getattr(case, "name", "")
    )
    def test_sample_batch_bitwise_equals_scalar_loop(self, box, params):
        batch = box.sample_batch(params, SEEDS)
        scalars = [box.sample(params, int(seed)) for seed in SEEDS]
        assert batch.tolist() == scalars

    def test_batch_and_scalar_count_invocations_equally(self):
        box = DemandModel()
        params = {"current_week": 8.0, "feature_release": 3.0}
        box.sample_batch(params, SEEDS)
        assert box.invocations == len(SEEDS)
        for seed in SEEDS:
            box.sample(params, int(seed))
        assert box.invocations == 2 * len(SEEDS)

    def test_batch_validates_parameters_once(self):
        box = DemandModel()
        with pytest.raises(KeyError):
            box.sample_batch({"current_week": 1.0}, SEEDS)
        assert box.invocations == 0

    def test_scalar_fallback_used_without_native_batch(self):
        class LoopOnly(DemandModel):
            def _sample_batch(self, params, seeds):
                return None

        box = LoopOnly()
        params = {"current_week": 20.0, "feature_release": 12.0}
        assert (
            box.sample_batch(params, SEEDS).tolist()
            == DemandModel().sample_batch(params, SEEDS).tolist()
        )


class _ScalarOnly(MarkovModel):
    """Wrap a Markov model, hiding its vectorized hooks (reference path)."""

    def __init__(self, inner):
        super().__init__()
        self.inner = inner
        self.name = inner.name

    def initial_state(self):
        return self.inner.initial_state()

    def _step(self, state, step_index, seed):
        return self.inner._step(state, step_index, seed)

    def output(self, state, step_index):
        return self.inner.output(state, step_index)


MARKOV_CASES = [
    MarkovStepModel(),
    DemandObservedMarkovStep(),
    MarkovBranchModel(branching=0.25, work_per_step=2),
]


class TestMarkovBatchParity:
    @pytest.mark.parametrize("model", MARKOV_CASES, ids=lambda m: m.name)
    def test_step_batch_bitwise_equals_scalar_loop(self, model):
        states = np.full(24, model.initial_state())
        states[4:9] = 3.0
        seeds = BANK.step_seed_array(np.arange(24), 11)
        batch = model.step_batch(states, 11, seeds)
        scalars = [
            model.step(float(state), 11, int(seed))
            for state, seed in zip(states, seeds)
        ]
        assert batch.tolist() == scalars

    @pytest.mark.parametrize("model", MARKOV_CASES, ids=lambda m: m.name)
    def test_run_block_with_planned_draws_matches_step_loop(self, model):
        states = np.full(16, model.initial_state())
        seed_matrix = BANK.step_seed_matrix(16, 6, start_step=2)
        draws = model.plan_step_draws(seed_matrix)
        trajectory = model.run_block(states, 2, seed_matrix, draws)
        current = [float(state) for state in states]
        for offset in range(6):
            current = [
                model.step(state, 2 + offset, int(seed))
                for state, seed in zip(current, seed_matrix[offset])
            ]
            assert trajectory[offset].tolist() == current

    @pytest.mark.parametrize("model", MARKOV_CASES, ids=lambda m: m.name)
    def test_output_batch_matches_scalar_output(self, model):
        states = np.linspace(-2.0, 40.0, 9)
        batch = model.output_batch(states, 5)
        assert batch.tolist() == [
            model.output(float(state), 5) for state in states
        ]

    def test_naive_runner_matches_scalar_only_model(self):
        vectorized = NaiveMarkovRunner(
            MarkovBranchModel(branching=0.1), instance_count=40
        ).run(30)
        scalar = NaiveMarkovRunner(
            _ScalarOnly(MarkovBranchModel(branching=0.1)), instance_count=40
        ).run(30)
        assert vectorized.states.tolist() == scalar.states.tolist()
        assert vectorized.step_invocations == scalar.step_invocations
        assert vectorized.full_steps == scalar.full_steps

    @pytest.mark.parametrize(
        "model_factory",
        [
            lambda: MarkovStepModel(),
            lambda: MarkovBranchModel(branching=0.02),
        ],
        ids=["MarkovStep", "MarkovBranch"],
    )
    def test_jump_runner_matches_scalar_only_model(self, model_factory):
        vectorized = MarkovJumpRunner(
            model_factory(), instance_count=60, fingerprint_size=8
        ).run(50)
        scalar = MarkovJumpRunner(
            _ScalarOnly(model_factory()), instance_count=60, fingerprint_size=8
        ).run(50)
        assert vectorized.states.tolist() == scalar.states.tolist()
        assert vectorized.full_steps == scalar.full_steps
        assert [
            (jump.from_step, jump.to_step) for jump in vectorized.jumps
        ] == [(jump.from_step, jump.to_step) for jump in scalar.jumps]
        assert vectorized.step_invocations == scalar.step_invocations


def _strip_batch(box):
    """A scalar-only view of a box: forces the explorer's fallback loop."""

    def simulation(params, seed):
        return box.sample(params, seed)

    return simulation


class TestExplorerBatchParity:
    def _space(self):
        return [
            {"current_week": float(week), "feature_release": 6.0}
            for week in range(12)
        ]

    def test_explorer_reuse_decisions_match_scalar_path(self):
        batch_explorer = ParameterExplorer(
            DemandModel(), samples_per_point=40, fingerprint_size=10
        )
        scalar_explorer = ParameterExplorer(
            _strip_batch(DemandModel()), samples_per_point=40, fingerprint_size=10
        )
        batch_result = batch_explorer.run(self._space())
        scalar_result = scalar_explorer.run(self._space())
        assert batch_result.stats == scalar_result.stats
        for key, batch_point in batch_result.points.items():
            scalar_point = scalar_result.points[key]
            assert batch_point.reused == scalar_point.reused
            assert batch_point.basis_id == scalar_point.basis_id
            assert (
                batch_point.fingerprint.values
                == scalar_point.fingerprint.values
            )
            assert batch_point.metrics == scalar_point.metrics

    def test_naive_explorer_metrics_match_scalar_path(self):
        params = {"current_week": 9.0, "feature_release": 6.0}
        batch = NaiveExplorer(DemandModel(), samples_per_point=50)
        scalar = NaiveExplorer(
            _strip_batch(DemandModel()), samples_per_point=50
        )
        assert batch.explore_point(params) == scalar.explore_point(params)


class TestStandardDrawCache:
    def test_hit_returns_same_matrix(self):
        cache = StandardDrawCache()
        first = cache.matrix(SEEDS, (fastrng.KIND_NORMAL,))
        second = cache.matrix(SEEDS, (fastrng.KIND_NORMAL,))
        assert first is second
        assert cache.stats["hits"] == 1 and cache.stats["misses"] == 1

    def test_matrices_are_read_only(self):
        cache = StandardDrawCache()
        matrix = cache.matrix(SEEDS, (fastrng.KIND_UNIFORM,))
        with pytest.raises(ValueError):
            matrix[0, 0] = 0.0

    def test_budget_eviction_recomputes_identically(self):
        cache = StandardDrawCache(max_floats=128)
        first = cache.matrix(SEEDS, (fastrng.KIND_NORMAL,)).copy()
        cache.matrix(SEEDS, (fastrng.KIND_UNIFORM,))
        cache.matrix(SEEDS, (fastrng.KIND_EXPONENTIAL,))
        again = cache.matrix(SEEDS, (fastrng.KIND_NORMAL,))
        assert np.array_equal(first, again)

    def test_oversized_requests_are_served_uncached(self):
        cache = StandardDrawCache(max_floats=4)
        matrix = cache.matrix(SEEDS, (fastrng.KIND_UNIFORM,))
        assert matrix.shape == (len(SEEDS), 1)
        assert len(cache) == 0


class TestQueryBatchParity:
    QUERY = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 8 STEP BY 4;
DECLARE PARAMETER @feature_release AS SET (4);
SELECT DemandModel(@current_week, @feature_release) AS demand,
       demand * 2.0 + 1.0 AS scaled,
       CASE WHEN demand > 8.0 THEN 1 ELSE 0 END AS high
INTO results;
"""

    def _scenario(self):
        from repro.blackbox.base import BlackBoxRegistry
        from repro.lang.binder import compile_query

        registry = BlackBoxRegistry()
        registry.register(DemandModel(), "DemandModel")
        return compile_query(self.QUERY, registry).scenario

    def test_simulate_batch_matches_per_world_simulate(self):
        scenario = self._scenario()
        params = {"current_week": 8.0, "feature_release": 4.0}
        seeds = BANK.seed_array(32)
        columns = scenario.simulate_batch(params, seeds)
        for k, seed in enumerate(seeds):
            row = scenario.simulate(params, int(seed))
            for name, values in columns.items():
                assert float(values[k]) == row[name], (name, k)

    def test_executor_scalar_samples_batch_matches_loop(self):
        from repro.probdb.executor import MonteCarloExecutor

        scenario = self._scenario()
        params = {"current_week": 8.0, "feature_release": 4.0}
        executor = MonteCarloExecutor(world_count=40)
        batched = executor.scalar_samples(scenario.plan, "scaled", params)
        looped = [
            scenario.simulate(params, BANK.seed(index))["scaled"]
            for index in range(40)
        ]
        assert batched.tolist() == looped

    def test_column_simulation_exposes_matching_batch(self):
        scenario = self._scenario()
        params = {"current_week": 8.0, "feature_release": 4.0}
        simulation = scenario.column_simulation("demand")
        seeds = BANK.seed_array(16)
        batch = simulation.sample_batch(params, seeds)
        assert batch.tolist() == [
            simulation(params, int(seed)) for seed in seeds
        ]

    def test_fallback_rolls_back_composite_children_counters(self):
        from repro.blackbox import default_registry
        from repro.probdb import expressions as E
        from repro.probdb.query import Project, SingletonScan

        overload = default_registry().lookup("OverloadModel")
        demand, capacity = overload.component_boxes()
        def counters():
            return (
                overload.invocations,
                demand.invocations,
                capacity.invocations,
            )
        before = counters()
        mid = {}

        class Boom(E.Expression):
            def references(self):
                return ()

            def children(self):
                return ()

            def evaluate(self, context):
                return 0.0

            def evaluate_batch(self, context):
                mid["counters"] = counters()
                raise E.BatchUnsupported("boom")

        call = E.BlackBoxCall(
            box=overload,
            argument_names=("current_week", "purchase1", "purchase2"),
            arguments=(E.Constant(1.0), E.Constant(2.0), E.Constant(3.0)),
        )
        project = Project(
            child=SingletonScan(), items=[("o", call), ("g", Boom())]
        )
        with pytest.raises(E.BatchUnsupported):
            project.execute_batch({}, np.arange(8, dtype=np.uint64))
        # The batch really sampled the composite and its children ...
        assert mid["counters"] == tuple(c + 8 for c in before)
        # ... and the rollback restored every counter, children included.
        assert counters() == before


class TestQuantileTolerantLookup:
    def test_remapped_probability_stays_retrievable(self):
        metrics = MetricSet(
            count=10,
            expectation=0.0,
            stddev=1.0,
            minimum=-1.0,
            maximum=1.0,
            quantiles=((1.0 - 0.95, -1.5), (0.5, 0.0), (0.95, 1.5)),
        )
        # 1.0 - 0.95 = 0.050000000000000044 in IEEE arithmetic; the exact
        # 0.05 the caller asks for must still resolve.
        assert metrics.quantile(0.05) == -1.5
        assert metrics.quantile(0.95) == 1.5
