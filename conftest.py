"""Repo-wide pytest options.

``--workers N`` caps the shard-worker counts the fault-tolerance chaos
suite (``tests/integration/test_fault_tolerance.py``) parametrizes over:
the suite runs every fault plan at workers 1, 2, and 4 by default, and CI
invokes it explicitly with ``--workers 4`` so the pooled (real fork)
paths are always exercised there.  ``--workers 1`` keeps a quick local
run in-process.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        type=int,
        default=4,
        help=(
            "maximum shard-worker count the fault-tolerance chaos suite "
            "exercises (it parametrizes workers over {1, 2, 4} up to "
            "this cap)"
        ),
    )
