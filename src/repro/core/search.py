"""Adaptive parameter search on top of fingerprint reuse.

Paper section 2.3: brute-force enumeration is *necessary* for arbitrary
black boxes, "but Jigsaw's fingerprinting techniques remain applicable to
more advanced techniques that use additional information about the
black-box (e.g., gradient-descent, if the black-box is known to be
continuous)."  This module provides that advanced path: a hill-climbing
search over the discrete parameter space which evaluates candidate points
through the same :class:`~repro.core.explorer.ParameterExplorer`, so every
candidate still benefits from (and contributes to) the shared basis store.

The searcher optimizes a scalar objective derived from a point's metrics
subject to a feasibility predicate — the same contract as the OPTIMIZE
Selector, restricted to one group per point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.blackbox.base import ParamKey, param_key
from repro.core.estimator import MetricSet
from repro.core.explorer import ParameterExplorer, PointResult
from repro.errors import OptimizationError
from repro.scenario.space import ParameterSpace

#: Scalar score of a point's metrics (higher is better).
ObjectiveFn = Callable[[MetricSet], float]

#: Feasibility predicate over a point's metrics.
FeasibleFn = Callable[[MetricSet], bool]


@dataclass
class SearchTrace:
    """What the search visited, for inspection and testing."""

    visited: List[Dict[str, float]] = field(default_factory=list)
    improvements: List[Tuple[Dict[str, float], float]] = field(
        default_factory=list
    )

    @property
    def evaluations(self) -> int:
        return len(self.visited)


@dataclass
class SearchResult:
    """Best feasible point found, its metrics, and the trace."""

    best_point: Optional[Dict[str, float]]
    best_metrics: Optional[MetricSet]
    best_score: float
    trace: SearchTrace
    explorer_stats_reused: int


class HillClimbSearch:
    """Greedy neighborhood ascent with random restarts.

    From each start point, repeatedly moves to the best strictly improving
    feasible neighbor (axis-adjacent values in the declared parameter
    domains) until no neighbor improves; multiple restarts guard against
    local optima.  Deterministic: restarts are spread evenly through the
    enumerated space rather than drawn randomly, keeping runs reproducible.
    """

    def __init__(
        self,
        explorer: ParameterExplorer,
        space: ParameterSpace,
        objective: ObjectiveFn,
        feasible: Optional[FeasibleFn] = None,
        restarts: int = 3,
        max_steps: int = 100,
    ):
        if restarts < 1:
            raise OptimizationError("restarts must be positive")
        if max_steps < 1:
            raise OptimizationError("max_steps must be positive")
        self.explorer = explorer
        self.space = space
        self.objective = objective
        self.feasible = feasible or (lambda metrics: True)
        self.restarts = restarts
        self.max_steps = max_steps
        self._cache: Dict[ParamKey, PointResult] = {}

    def _evaluate(
        self, point: Dict[str, float], trace: SearchTrace
    ) -> PointResult:
        key = param_key(point)
        if key not in self._cache:
            self._cache[key] = self.explorer.explore_point(point)
            trace.visited.append(dict(point))
        return self._cache[key]

    def _start_points(self) -> List[Dict[str, float]]:
        points = self.space.points_list()
        if not points:
            raise OptimizationError("cannot search an empty space")
        stride = max(1, len(points) // self.restarts)
        return [points[i * stride % len(points)] for i in range(self.restarts)]

    def run(self) -> SearchResult:
        trace = SearchTrace()
        best_point: Optional[Dict[str, float]] = None
        best_metrics: Optional[MetricSet] = None
        best_score = float("-inf")

        for start in self._start_points():
            current = dict(start)
            outcome = self._evaluate(current, trace)
            current_score = (
                self.objective(outcome.metrics)
                if self.feasible(outcome.metrics)
                else float("-inf")
            )
            for _ in range(self.max_steps):
                best_neighbor = None
                best_neighbor_score = current_score
                best_neighbor_metrics = None
                for parameter in self.space.names:
                    for neighbor in self.space.neighbors(current, parameter):
                        neighbor_outcome = self._evaluate(neighbor, trace)
                        if not self.feasible(neighbor_outcome.metrics):
                            continue
                        score = self.objective(neighbor_outcome.metrics)
                        if score > best_neighbor_score:
                            best_neighbor = neighbor
                            best_neighbor_score = score
                            best_neighbor_metrics = neighbor_outcome.metrics
                if best_neighbor is None:
                    break
                current = best_neighbor
                current_score = best_neighbor_score
                trace.improvements.append((dict(current), current_score))
                if current_score > best_score:
                    best_score = current_score
                    best_point = dict(current)
                    best_metrics = best_neighbor_metrics
            if current_score > best_score:
                best_score = current_score
                best_point = dict(current)
                best_metrics = self._cache[param_key(current)].metrics

        reused = sum(
            1 for outcome in self._cache.values() if outcome.reused
        )
        return SearchResult(
            best_point=best_point,
            best_metrics=best_metrics,
            best_score=best_score,
            trace=trace,
            explorer_stats_reused=reused,
        )


class ExhaustiveSearch:
    """Reference brute-force search over the same objective contract.

    Equivalent to the paper's Parameter Enumerator + Selector for a
    single-point group; used to validate hill climbing and to quantify how
    many evaluations adaptivity saves.
    """

    def __init__(
        self,
        explorer: ParameterExplorer,
        space: ParameterSpace,
        objective: ObjectiveFn,
        feasible: Optional[FeasibleFn] = None,
    ):
        self.explorer = explorer
        self.space = space
        self.objective = objective
        self.feasible = feasible or (lambda metrics: True)

    def run(self) -> SearchResult:
        trace = SearchTrace()
        best_point: Optional[Dict[str, float]] = None
        best_metrics: Optional[MetricSet] = None
        best_score = float("-inf")
        reused = 0
        for point in self.space.points():
            outcome = self.explorer.explore_point(point)
            trace.visited.append(dict(point))
            if outcome.reused:
                reused += 1
            if not self.feasible(outcome.metrics):
                continue
            score = self.objective(outcome.metrics)
            if score > best_score:
                best_score = score
                best_point = dict(point)
                best_metrics = outcome.metrics
        return SearchResult(
            best_point=best_point,
            best_metrics=best_metrics,
            best_score=best_score,
            trace=trace,
            explorer_stats_reused=reused,
        )
