"""Symbolic execution over mapped random variables (paper section 6.2).

The Overload experiment exposes a limit of pure fingerprint reuse: a query
that compares two black-box outputs and returns a boolean destroys the affine
structure reuse depends on.  The paper sketches the fix — a database engine
with a symbolic execution strategy (as in PIP): keep each VG output as a
*mapped random variable* ``M(B)`` over a basis distribution ``B`` and resolve
arithmetic between variables sharing a basis in closed form, e.g.

    X = 2·f + 2,  Y = 3·f + 3   ⇒   X + Y = 5·f + 5
    P(X > Y) computable from a histogram of f.

This module implements that strategy.  Variables over *different* bases are
combined samplewise: because every basis stores its samples under the same
global seed set, the k-th samples of two bases live in the same possible
world, so pairing them is statistically sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.basis import BasisDistribution
from repro.core.estimator import Estimator, MetricSet
from repro.core.mapping import AffineMapping
from repro.errors import EstimatorError

Scalar = Union[int, float]


@dataclass(frozen=True)
class MappedVariable:
    """An affine image ``alpha·B + beta`` of a basis distribution ``B``."""

    basis: BasisDistribution
    mapping: AffineMapping

    @classmethod
    def of(
        cls, basis: BasisDistribution, mapping: AffineMapping = None
    ) -> "MappedVariable":
        return cls(basis, mapping or AffineMapping(1.0, 0.0))

    # -- closed-form arithmetic (same basis) / samplewise (cross basis) -----

    def __add__(
        self, other: Union["MappedVariable", Scalar]
    ) -> Union["MappedVariable", "SampleVariable"]:
        if isinstance(other, (int, float)):
            return MappedVariable(
                self.basis,
                AffineMapping(self.mapping.alpha, self.mapping.beta + other),
            )
        if isinstance(other, MappedVariable):
            if other.basis is self.basis:
                # (αx+β) + (α'x+β') = (α+α')x + (β+β')   — the paper's
                # (M_X + M_Y)(f) example, resolved without sampling.
                return MappedVariable(
                    self.basis,
                    AffineMapping(
                        self.mapping.alpha + other.mapping.alpha,
                        self.mapping.beta + other.mapping.beta,
                    ),
                )
            return SampleVariable(self.samples() + other.samples())
        return NotImplemented

    def __radd__(self, other: Scalar) -> "MappedVariable":
        return self.__add__(other)

    def __neg__(self) -> "MappedVariable":
        return MappedVariable(
            self.basis,
            AffineMapping(-self.mapping.alpha, -self.mapping.beta),
        )

    def __sub__(
        self, other: Union["MappedVariable", Scalar]
    ) -> Union["MappedVariable", "SampleVariable"]:
        if isinstance(other, (int, float)):
            return self + (-other)
        if isinstance(other, MappedVariable):
            return self + (-other)
        return NotImplemented

    def __mul__(self, factor: Scalar) -> "MappedVariable":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return MappedVariable(
            self.basis,
            AffineMapping(
                self.mapping.alpha * factor, self.mapping.beta * factor
            ),
        )

    def __rmul__(self, factor: Scalar) -> "MappedVariable":
        return self.__mul__(factor)

    # -- evaluation ----------------------------------------------------------

    def samples(self) -> np.ndarray:
        """Materialized samples (world-aligned under the global seed set)."""
        return self.mapping.apply_array(self.basis.samples)

    def metrics(self) -> MetricSet:
        return self.basis.metrics.remap(self.mapping)

    def expectation(self) -> float:
        return self.mapping.apply(self.basis.metrics.expectation)

    def stddev(self) -> float:
        return abs(self.mapping.alpha) * self.basis.metrics.stddev

    def probability_greater(
        self, other: Union["MappedVariable", Scalar]
    ) -> float:
        """P(self > other), resolved in closed form when possible.

        Same-basis comparisons reduce to a deterministic sign test plus a
        threshold query against the basis's sample histogram — no fresh
        Monte Carlo.  Cross-basis comparisons pair world-aligned samples.
        """
        if isinstance(other, (int, float)):
            return self._probability_above_constant(float(other))
        if isinstance(other, MappedVariable):
            difference = self - other
            if isinstance(difference, MappedVariable):
                return difference._probability_above_constant(0.0)
            return float((difference.values > 0.0).mean())
        raise EstimatorError(f"cannot compare with {type(other).__name__}")

    def _probability_above_constant(self, threshold: float) -> float:
        alpha, beta = self.mapping.alpha, self.mapping.beta
        samples = self.basis.samples
        if samples.size == 0:
            raise EstimatorError("basis has no samples to compare against")
        if alpha == 0:
            return 1.0 if beta > threshold else 0.0
        cut = (threshold - beta) / alpha
        if alpha > 0:
            return float((samples > cut).mean())
        return float((samples < cut).mean())


@dataclass(frozen=True)
class SampleVariable:
    """Fallback representation: explicit world-aligned samples."""

    values: np.ndarray

    def samples(self) -> np.ndarray:
        return self.values

    def expectation(self) -> float:
        return float(self.values.mean())

    def metrics(self) -> MetricSet:
        return Estimator().estimate(self.values)

    def probability_greater(self, other: Union[Scalar, "SampleVariable"]) -> float:
        if isinstance(other, (int, float)):
            return float((self.values > other).mean())
        return float((self.values > other.values).mean())
