"""Typed request/response messages for the unified session API.

One message vocabulary serves two transports: in-process calls on
:class:`repro.api.Session` pass these dataclasses directly, and the
serving daemon (:mod:`repro.serve`) moves them over a socket through
:func:`encode_request`/:func:`decode_response`.  Because both sides speak
the same types — and every float crosses the wire as ``float.hex()``,
the snapshot manifest convention — a daemon response is *bitwise* equal
to the in-process result for the same request, which is what the serve
parity suite pins.

Requests
--------

* :class:`MatchRequest` — probe the store with a fingerprint; answers
  with the matched basis id and the witness mapping (paper FindMatch).
* :class:`EstimateRequest` — FindMatch plus the remapped output metrics
  (``Mest``): the full interactive what-if answer for a covered point.
* :class:`RefineRequest` — fold fresh samples (already mapped into basis
  coordinates through M⁻¹, the interactive engine's convention) into a
  stored basis and return its refreshed metrics.
* :class:`StatsRequest` — the deterministic :class:`StoreStats` counters
  and basis counts per store (bench gates diff these exactly).
* :class:`EvictRequest` — admin: apply a reuse-value-aware
  :class:`~repro.core.basis.EvictionPolicy` bound (``max_bases`` /
  ``max_bytes``) to one store or all of them.
* :class:`CompactRequest` — admin: force the columnar matrices
  tombstone-free now instead of at the next threshold crossing or save.
* :class:`ShutdownRequest` — ask a daemon to drain and exit (the
  signal-free alternative to SIGTERM, for tests and orchestrators).

``request_id`` is an opaque caller token echoed on the response, so
pipelined clients can correlate answers; ``store`` names the target
store in a multi-store snapshot (``"default"`` for single-store ones).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.estimator import MetricSet
from repro.core.mapping import Mapping
from repro.core.persist import (
    decode_float,
    decode_mapping,
    decode_metrics,
    encode_float,
    encode_mapping,
    encode_metrics,
)
from repro.errors import ProtocolError

DEFAULT_STORE = "default"


def _float_tuple(values) -> Tuple[float, ...]:
    return tuple(float(v) for v in values)


# ---------------------------------------------------------------------------
# Requests


@dataclass(frozen=True)
class MatchRequest:
    """FindMatch probe: which stored basis (if any) maps onto this
    fingerprint, and through which mapping?"""

    fingerprint: Tuple[float, ...]
    store: str = DEFAULT_STORE
    request_id: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "fingerprint", _float_tuple(self.fingerprint)
        )

    kind = "match"


@dataclass(frozen=True)
class EstimateRequest:
    """FindMatch plus metric remapping: the full cheap-answer path."""

    fingerprint: Tuple[float, ...]
    store: str = DEFAULT_STORE
    request_id: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "fingerprint", _float_tuple(self.fingerprint)
        )

    kind = "estimate"


@dataclass(frozen=True)
class RefineRequest:
    """Extend a stored basis with fresh samples (basis coordinates)."""

    basis_id: int
    samples: Tuple[float, ...]
    store: str = DEFAULT_STORE
    request_id: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "samples", _float_tuple(self.samples))

    kind = "refine"


@dataclass(frozen=True)
class StatsRequest:
    """Deterministic store counters and basis counts."""

    request_id: Optional[int] = None

    kind = "stats"


@dataclass(frozen=True)
class EvictRequest:
    """Admin: bound a store (or every store) by an eviction policy.

    At least one of ``max_bases``/``max_bytes`` must be set; ``keep``
    selects the :class:`~repro.core.basis.EvictionPolicy` ranking
    (``"value"`` or ``"recent"``).  ``store=None`` applies the bound to
    every store in the session.
    """

    max_bases: Optional[int] = None
    max_bytes: Optional[int] = None
    keep: str = "value"
    store: Optional[str] = None
    request_id: Optional[int] = None

    kind = "evict"


@dataclass(frozen=True)
class CompactRequest:
    """Admin: compact the columnar matrices tombstone-free now.

    ``store=None`` compacts every store in the session.
    """

    store: Optional[str] = None
    request_id: Optional[int] = None

    kind = "compact"


@dataclass(frozen=True)
class ShutdownRequest:
    """Drain in-flight requests, flush state, and stop the daemon."""

    request_id: Optional[int] = None

    kind = "shutdown"


Request = (
    MatchRequest,
    EstimateRequest,
    RefineRequest,
    StatsRequest,
    EvictRequest,
    CompactRequest,
    ShutdownRequest,
)


# ---------------------------------------------------------------------------
# Responses


@dataclass(frozen=True)
class MatchResponse:
    """Outcome of a FindMatch probe.

    ``candidates_tested`` is the probe's deterministic work counter —
    candidates visited up to and including the first match (all of them
    on a miss) — identical between the scalar and columnar engines, so
    parity suites can pin it across transports too.
    """

    matched: bool
    basis_id: Optional[int] = None
    mapping: Optional[Mapping] = None
    candidates_tested: int = 0
    store: str = DEFAULT_STORE
    request_id: Optional[int] = None

    kind = "match"


@dataclass(frozen=True)
class EstimateResponse:
    """A covered point's remapped metrics (``metrics is None`` on a miss:
    the caller must fall back to real simulation — the daemon never
    simulates)."""

    matched: bool
    basis_id: Optional[int] = None
    mapping: Optional[Mapping] = None
    metrics: Optional[MetricSet] = None
    candidates_tested: int = 0
    store: str = DEFAULT_STORE
    request_id: Optional[int] = None

    kind = "estimate"


@dataclass(frozen=True)
class RefineResponse:
    """A basis's refreshed state after folding in refinement samples."""

    basis_id: int
    sample_count: int
    metrics: MetricSet
    store: str = DEFAULT_STORE
    request_id: Optional[int] = None

    kind = "refine"


@dataclass(frozen=True)
class StatsResponse:
    """Per-store deterministic counters (``StoreStats.as_dict``) and
    basis counts; wall-clock fields are deliberately absent."""

    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    bases: Dict[str, int] = field(default_factory=dict)
    backend: Dict[str, str] = field(default_factory=dict)
    request_id: Optional[int] = None

    kind = "stats"


@dataclass(frozen=True)
class EvictResponse:
    """Outcome of an eviction bound: which ids each store retired (in
    eviction order) and how many bases each store holds afterwards."""

    evicted: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    bases: Dict[str, int] = field(default_factory=dict)
    request_id: Optional[int] = None

    kind = "evict"


@dataclass(frozen=True)
class CompactResponse:
    """Outcome of a forced compaction: tombstoned rows dropped per store
    and the (unchanged) per-store basis counts."""

    rows_dropped: Dict[str, int] = field(default_factory=dict)
    bases: Dict[str, int] = field(default_factory=dict)
    request_id: Optional[int] = None

    kind = "compact"


@dataclass(frozen=True)
class ShutdownResponse:
    """Acknowledged; the daemon drains and exits after answering."""

    draining: bool = True
    request_id: Optional[int] = None

    kind = "shutdown"


@dataclass(frozen=True)
class ErrorResponse:
    """A request that could not be served (the stream keeps going)."""

    code: str
    message: str
    request_id: Optional[int] = None

    kind = "error"


Response = (
    MatchResponse,
    EstimateResponse,
    RefineResponse,
    StatsResponse,
    EvictResponse,
    CompactResponse,
    ShutdownResponse,
    ErrorResponse,
)


# ---------------------------------------------------------------------------
# Wire codec (hex floats throughout; see module docstring)


def encode_request(request) -> dict:
    """Request dataclass -> JSON-able dict (floats hex-encoded)."""
    body: dict = {"kind": request.kind, "id": request.request_id}
    if isinstance(request, (MatchRequest, EstimateRequest)):
        body["store"] = request.store
        body["fingerprint"] = [encode_float(v) for v in request.fingerprint]
    elif isinstance(request, RefineRequest):
        body["store"] = request.store
        body["basis_id"] = int(request.basis_id)
        body["samples"] = [encode_float(v) for v in request.samples]
    elif isinstance(request, EvictRequest):
        body["max_bases"] = (
            None if request.max_bases is None else int(request.max_bases)
        )
        body["max_bytes"] = (
            None if request.max_bytes is None else int(request.max_bytes)
        )
        body["keep"] = str(request.keep)
        body["store"] = request.store
    elif isinstance(request, CompactRequest):
        body["store"] = request.store
    elif isinstance(request, (StatsRequest, ShutdownRequest)):
        pass
    else:
        raise ProtocolError(
            f"cannot encode request of type {type(request).__name__}"
        )
    return body


def decode_request(body: dict):
    """JSON dict -> request dataclass (inverse of :func:`encode_request`)."""
    try:
        kind = body["kind"]
        request_id = body.get("id")
        if kind == "match":
            return MatchRequest(
                fingerprint=tuple(
                    decode_float(v) for v in body["fingerprint"]
                ),
                store=body.get("store", DEFAULT_STORE),
                request_id=request_id,
            )
        if kind == "estimate":
            return EstimateRequest(
                fingerprint=tuple(
                    decode_float(v) for v in body["fingerprint"]
                ),
                store=body.get("store", DEFAULT_STORE),
                request_id=request_id,
            )
        if kind == "refine":
            return RefineRequest(
                basis_id=int(body["basis_id"]),
                samples=tuple(decode_float(v) for v in body["samples"]),
                store=body.get("store", DEFAULT_STORE),
                request_id=request_id,
            )
        if kind == "stats":
            return StatsRequest(request_id=request_id)
        if kind == "evict":
            max_bases = body.get("max_bases")
            max_bytes = body.get("max_bytes")
            return EvictRequest(
                max_bases=None if max_bases is None else int(max_bases),
                max_bytes=None if max_bytes is None else int(max_bytes),
                keep=str(body.get("keep", "value")),
                store=body.get("store"),
                request_id=request_id,
            )
        if kind == "compact":
            return CompactRequest(
                store=body.get("store"),
                request_id=request_id,
            )
        if kind == "shutdown":
            return ShutdownRequest(request_id=request_id)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(
            f"malformed {body.get('kind', '?')!r} request "
            f"({type(error).__name__}: {error})"
        ) from error
    raise ProtocolError(f"unknown request kind {body.get('kind')!r}")


def _encode_optional_mapping(mapping: Optional[Mapping]):
    return None if mapping is None else encode_mapping(mapping)


def _decode_optional_mapping(obj) -> Optional[Mapping]:
    return None if obj is None else decode_mapping(obj)


def encode_response(response) -> dict:
    """Response dataclass -> JSON-able dict (floats hex-encoded)."""
    body: dict = {"kind": response.kind, "id": response.request_id}
    if isinstance(response, MatchResponse):
        body.update(
            matched=bool(response.matched),
            basis_id=response.basis_id,
            mapping=_encode_optional_mapping(response.mapping),
            candidates_tested=int(response.candidates_tested),
            store=response.store,
        )
    elif isinstance(response, EstimateResponse):
        body.update(
            matched=bool(response.matched),
            basis_id=response.basis_id,
            mapping=_encode_optional_mapping(response.mapping),
            metrics=(
                None
                if response.metrics is None
                else encode_metrics(response.metrics)
            ),
            candidates_tested=int(response.candidates_tested),
            store=response.store,
        )
    elif isinstance(response, RefineResponse):
        body.update(
            basis_id=int(response.basis_id),
            sample_count=int(response.sample_count),
            metrics=encode_metrics(response.metrics),
            store=response.store,
        )
    elif isinstance(response, StatsResponse):
        body.update(
            counters={
                name: {k: int(v) for k, v in counters.items()}
                for name, counters in response.counters.items()
            },
            bases={name: int(v) for name, v in response.bases.items()},
            backend={name: str(v) for name, v in response.backend.items()},
        )
    elif isinstance(response, EvictResponse):
        body.update(
            evicted={
                name: [int(i) for i in ids]
                for name, ids in response.evicted.items()
            },
            bases={name: int(v) for name, v in response.bases.items()},
        )
    elif isinstance(response, CompactResponse):
        body.update(
            rows_dropped={
                name: int(v) for name, v in response.rows_dropped.items()
            },
            bases={name: int(v) for name, v in response.bases.items()},
        )
    elif isinstance(response, ShutdownResponse):
        body["draining"] = bool(response.draining)
    elif isinstance(response, ErrorResponse):
        body.update(code=response.code, message=response.message)
    else:
        raise ProtocolError(
            f"cannot encode response of type {type(response).__name__}"
        )
    return body


def decode_response(body: dict):
    """JSON dict -> response dataclass (inverse of :func:`encode_response`)."""
    try:
        kind = body["kind"]
        request_id = body.get("id")
        if kind == "match":
            return MatchResponse(
                matched=bool(body["matched"]),
                basis_id=body.get("basis_id"),
                mapping=_decode_optional_mapping(body.get("mapping")),
                candidates_tested=int(body.get("candidates_tested", 0)),
                store=body.get("store", DEFAULT_STORE),
                request_id=request_id,
            )
        if kind == "estimate":
            metrics = body.get("metrics")
            return EstimateResponse(
                matched=bool(body["matched"]),
                basis_id=body.get("basis_id"),
                mapping=_decode_optional_mapping(body.get("mapping")),
                metrics=None if metrics is None else decode_metrics(metrics),
                candidates_tested=int(body.get("candidates_tested", 0)),
                store=body.get("store", DEFAULT_STORE),
                request_id=request_id,
            )
        if kind == "refine":
            return RefineResponse(
                basis_id=int(body["basis_id"]),
                sample_count=int(body["sample_count"]),
                metrics=decode_metrics(body["metrics"]),
                store=body.get("store", DEFAULT_STORE),
                request_id=request_id,
            )
        if kind == "stats":
            return StatsResponse(
                counters={
                    name: {k: int(v) for k, v in counters.items()}
                    for name, counters in body.get("counters", {}).items()
                },
                bases={
                    name: int(v) for name, v in body.get("bases", {}).items()
                },
                backend={
                    name: str(v)
                    for name, v in body.get("backend", {}).items()
                },
                request_id=request_id,
            )
        if kind == "evict":
            return EvictResponse(
                evicted={
                    name: tuple(int(i) for i in ids)
                    for name, ids in body.get("evicted", {}).items()
                },
                bases={
                    name: int(v) for name, v in body.get("bases", {}).items()
                },
                request_id=request_id,
            )
        if kind == "compact":
            return CompactResponse(
                rows_dropped={
                    name: int(v)
                    for name, v in body.get("rows_dropped", {}).items()
                },
                bases={
                    name: int(v) for name, v in body.get("bases", {}).items()
                },
                request_id=request_id,
            )
        if kind == "shutdown":
            return ShutdownResponse(
                draining=bool(body.get("draining", True)),
                request_id=request_id,
            )
        if kind == "error":
            return ErrorResponse(
                code=str(body["code"]),
                message=str(body["message"]),
                request_id=request_id,
            )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(
            f"malformed {body.get('kind', '?')!r} response "
            f"({type(error).__name__}: {error})"
        ) from error
    raise ProtocolError(f"unknown response kind {body.get('kind')!r}")
