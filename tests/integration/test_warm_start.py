"""Cross-run warm start: cold sweep -> save -> warm rerun.

The amortization contract end to end, for every engine that can be
warm-started:

* the warm rerun's per-point estimates are **bitwise equal** to the cold
  run's (a warm probe matches the basis the cold run built for — or
  reused at — that point, and identity/first-match remapping reproduces
  the metrics bit for bit);
* the warm rerun draws **strictly fewer** samples (fingerprint rounds
  only, for covered points);
* warm decisions and counters are **worker-invariant**: sharded warm
  sweeps at 1/2/4 workers all agree exactly (the canonical replay probes
  the loaded store, so parallel warm == serial warm == the warm serial
  algorithm).
"""

import numpy as np
import pytest

from repro.blackbox import BlackBoxRegistry, CapacityModel, DemandModel
from repro.cli import main as cli_main
from repro.core import persist
from repro.core.basis import BasisStore
from repro.core.explorer import ParameterExplorer
from repro.core.parallel import ParallelExplorer
from repro.lang.binder import compile_query
from repro.scenario import ScenarioRunner


def simulation(params, seed):
    """Deterministic-under-seed toy F: affine in x across points, so warm
    probes can also *remap* (not just identity-match) stored bases."""
    noise = float(seed % 100003) / 100003.0
    return params["x"] * (noise - 0.5) + 0.25 * params["y"]


def batched(params, seeds):
    seeds = np.atleast_1d(np.asarray(seeds, dtype=np.uint64))
    noise = (seeds % np.uint64(100003)).astype(float) / 100003.0
    return params["x"] * (noise - 0.5) + 0.25 * params["y"]


batched_simulation = type(
    "BatchedSim",
    (),
    {
        "__call__": staticmethod(simulation),
        "sample_batch": staticmethod(batched),
    },
)()

POINTS = [
    {"x": x, "y": y} for x in (1.0, 2.0, 3.0, 4.0) for y in (0.0, 1.0)
]


def make_explorer(store=None, workers=1):
    if workers > 1:
        return ParallelExplorer(
            batched_simulation,
            workers=workers,
            samples_per_point=64,
            fingerprint_size=8,
            basis_store=store,
        )
    return ParameterExplorer(
        batched_simulation,
        samples_per_point=64,
        fingerprint_size=8,
        basis_store=store,
    )


class TestExplorerWarmStart:
    def test_warm_rerun_reproduces_cold_exactly(self, tmp_path):
        cold = make_explorer()
        cold_run = cold.run(POINTS)
        path = str(tmp_path / "store")
        persist.save_store(cold.store, path)

        warm = make_explorer(store=persist.load_store(path, like=BasisStore()))
        warm_run = warm.run(POINTS)

        assert len(warm_run) == len(cold_run)
        for key, cold_point in cold_run.points.items():
            warm_point = warm_run.points[key]
            # Estimates: bitwise.
            assert warm_point.metrics == cold_point.metrics
            # Decisions: every point is covered by the saved store.
            assert warm_point.reused
        # Strictly fewer samples: fingerprints only.
        assert (
            warm_run.stats.samples_drawn < cold_run.stats.samples_drawn
        )
        assert warm_run.stats.samples_drawn == len(POINTS) * 8
        assert warm_run.stats.bases_created == 0

    def test_warm_workers_all_agree(self, tmp_path):
        cold = make_explorer()
        cold.run(POINTS)
        path = str(tmp_path / "store")
        persist.save_store(cold.store, path)

        outcomes = {}
        for workers in (1, 2, 4):
            store = persist.load_store(path, like=BasisStore())
            explorer = make_explorer(store=store, workers=workers)
            run = explorer.run(POINTS)
            outcomes[workers] = run

        reference = outcomes[1]
        for workers in (2, 4):
            run = outcomes[workers]
            assert run.stats == reference.stats
            for key, want in reference.points.items():
                got = run.points[key]
                assert got.metrics == want.metrics
                assert got.reused == want.reused
                assert got.basis_id == want.basis_id
                assert got.mapping == want.mapping
                assert got.samples_drawn == want.samples_drawn

    def test_partial_coverage_still_saves_work(self, tmp_path):
        """A warm store covering only some points reuses those and
        simulates the rest — then re-saving covers everything."""
        cold = make_explorer()
        cold.run(POINTS[:4])
        path = str(tmp_path / "store")
        persist.save_store(cold.store, path)

        warm = make_explorer(store=persist.load_store(path, like=BasisStore()))
        warm_run = warm.run(POINTS)
        full_cold = make_explorer()
        full_cold_run = full_cold.run(POINTS)
        for key, want in full_cold_run.points.items():
            assert warm_run.points[key].metrics == want.metrics
        assert (
            warm_run.stats.samples_drawn
            < full_cold_run.stats.samples_drawn
        )
        persist.save_store(warm.store, path)
        rewarm = make_explorer(
            store=persist.load_store(path, like=BasisStore())
        )
        rewarm_run = rewarm.run(POINTS)
        assert rewarm_run.stats.points_reused == len(POINTS)


def registry():
    reg = BlackBoxRegistry()
    reg.register(DemandModel(), "DemandModel")
    reg.register(
        CapacityModel(base_capacity=10.0, purchase_volume=10.0),
        "CapacityModel",
    )
    return reg


SOURCE = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 8 STEP BY 2;
DECLARE PARAMETER @purchase1 AS SET (0, 4);
SELECT DemandModel(@current_week, 50) AS demand,
       CapacityModel(@current_week, @purchase1, 50) AS capacity
INTO results;
"""


@pytest.fixture
def scenario():
    return compile_query(SOURCE, registry()).scenario


def make_runner(scenario, workers=1):
    return ScenarioRunner(
        scenario,
        samples_per_point=48,
        fingerprint_size=8,
        workers=workers,
    )


class TestScenarioRunnerWarmStart:
    def test_warm_rerun_reproduces_cold_exactly(self, scenario, tmp_path):
        cold = make_runner(scenario)
        cold_result = cold.run()
        path = str(tmp_path / "stores")
        cold.save_stores(path)

        warm = make_runner(scenario)
        warm.load_stores(path)
        warm_result = warm.run()

        assert set(warm_result.metrics) == set(cold_result.metrics)
        for key, columns in cold_result.metrics.items():
            for column, want in columns.items():
                assert warm_result.metrics[key][column] == want
        assert warm_result.stats.points_reused == len(cold_result.metrics)
        assert (
            warm_result.stats.rounds_executed
            < cold_result.stats.rounds_executed
        )
        assert warm_result.stats.bases_created == 0

    def test_warm_workers_all_agree(self, scenario, tmp_path):
        cold = make_runner(scenario)
        cold.run()
        path = str(tmp_path / "stores")
        cold.save_stores(path)

        results = {}
        for workers in (1, 2, 4):
            runner = make_runner(scenario, workers=workers)
            runner.load_stores(path)
            results[workers] = runner.run()

        reference = results[1]
        for workers in (2, 4):
            result = results[workers]
            assert result.stats == reference.stats
            assert set(result.metrics) == set(reference.metrics)
            for key, columns in reference.metrics.items():
                assert result.metrics[key] == columns

    def test_snapshot_column_mismatch_refused(self, scenario, tmp_path):
        from repro.errors import SnapshotCompatibilityError

        cold = make_runner(scenario)
        cold.run()
        path = str(tmp_path / "stores")
        cold.save_stores(path)

        other = compile_query(
            """
            DECLARE PARAMETER @current_week AS RANGE 0 TO 8 STEP BY 2;
            SELECT DemandModel(@current_week, 50) AS demand INTO results;
            """,
            registry(),
        ).scenario
        runner = ScenarioRunner(
            other, samples_per_point=48, fingerprint_size=8
        )
        with pytest.raises(SnapshotCompatibilityError):
            runner.load_stores(path)


CLI_QUERY = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 6 STEP BY 2;
DECLARE PARAMETER @feature_release AS SET (2, 4);
SELECT DemandModel(@current_week, @feature_release) AS demand
INTO results;
OPTIMIZE SELECT @feature_release FROM results
WHERE MAX(EXPECT demand) < 1000
GROUP BY feature_release
FOR MAX @feature_release;
"""


class TestCliWarmStart:
    @pytest.fixture
    def query_file(self, tmp_path):
        path = tmp_path / "scenario.sql"
        path.write_text(CLI_QUERY)
        return str(path)

    def test_save_then_warm_start(self, query_file, tmp_path, capsys):
        store = str(tmp_path / "stores")
        assert cli_main(
            ["run", query_file, "--samples", "40", "--save-store", store]
        ) == 0
        cold_out = capsys.readouterr().out
        assert cli_main(
            ["run", query_file, "--samples", "40", "--store", store]
        ) == 0
        warm_out = capsys.readouterr().out
        assert "reuse 100%" in warm_out
        assert "warm store:" in warm_out
        # Same OPTIMIZE answer either way.
        assert cold_out.splitlines()[-1] == warm_out.splitlines()[-1]

    def test_incompatible_store_is_typed_refusal(
        self, query_file, tmp_path, capsys
    ):
        store = str(tmp_path / "stores")
        assert cli_main(
            ["run", query_file, "--samples", "40", "--save-store", store]
        ) == 0
        capsys.readouterr()
        # A different fingerprint-size run still loads (sizes may differ
        # per basis), but a different-column query must be refused.
        graph_query = tmp_path / "other.sql"
        graph_query.write_text(
            """
            DECLARE PARAMETER @current_week AS RANGE 0 TO 6 STEP BY 2;
            SELECT DemandModel(@current_week, 3) AS other_name
            INTO results;
            """
        )
        code = cli_main(
            ["run", str(graph_query), "--samples", "40", "--store", store]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
