"""Fingerprints of stochastic black-box functions (paper section 3.1).

    fingerprint({σk}, F(Pi)) = {θk = F(Pi, σk) | 0 ≤ k < m}

A fingerprint is the vector of a stochastic function's outputs under the
fixed global seed sequence.  Because the seeds are shared, two parameter
points whose output distributions are related by a mapping function produce
fingerprints related *entrywise* by that same mapping — turning a hard
distribution-matching problem into a cheap vector comparison.

Fingerprints are array-backed: construction accepts any float sequence
(including ``numpy`` sample vectors straight from the batch sampling path),
``array`` exposes the entries as a read-only ``float64`` vector for the
vectorized mapping/validation kernels, and the index keys
(:meth:`Fingerprint.normal_form`, :meth:`Fingerprint.sid_order`) are
computed once and cached — index insert and probe never recompute them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.seeds import SeedBank
from repro.errors import FingerprintError

#: Relative tolerance used when two fingerprint entries are compared; IEEE
#: arithmetic noise in exact affine relationships sits around 1e-12, so 1e-9
#: accepts true matches while rejecting genuinely different distributions.
DEFAULT_REL_TOL = 1e-9
DEFAULT_ABS_TOL = 1e-12

#: Decimal places normalized entries are rounded to when used as hash keys.
#: Normal forms are O(1) by construction, so absolute rounding is safe.
NORMAL_FORM_DECIMALS = 6

FingerprintValues = Union[Sequence[float], np.ndarray]


def values_close(
    a: float,
    b: float,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """Tolerant equality used throughout fingerprint validation."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


@dataclass(frozen=True)
class Fingerprint:
    """An immutable m-entry output vector under the global seed set."""

    values: Tuple[float, ...]
    _cache: Dict[str, object] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(
                self,
                "values",
                tuple(float(v) for v in np.asarray(self.values, dtype=float)),
            )
        if len(self.values) == 0:
            raise FingerprintError("a fingerprint needs at least one entry")

    @property
    def array(self) -> np.ndarray:
        """Entries as a shared read-only float64 vector (do not mutate)."""
        cached = self._cache.get("array")
        if cached is None:
            cached = np.asarray(self.values, dtype=np.float64)
            cached.setflags(write=False)
            self._cache["array"] = cached
        return cached  # type: ignore[return-value]

    @property
    def size(self) -> int:
        return len(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> float:
        return self.values[index]

    def __iter__(self):
        return iter(self.values)

    def scale(self) -> float:
        """Characteristic magnitude used to set relative comparison scales."""
        cached = self._cache.get("scale")
        if cached is None:
            cached = float(np.max(np.abs(self.array))) or 1.0
            self._cache["scale"] = cached
        return cached  # type: ignore[return-value]

    def is_constant(self, rel_tol: float = DEFAULT_REL_TOL) -> bool:
        """True when every entry equals the first (up to tolerance)."""
        return self.first_distinct_pair(rel_tol) is None

    def first_distinct_pair(
        self, rel_tol: float = DEFAULT_REL_TOL
    ) -> Optional[Tuple[int, int]]:
        """Indices of the first two meaningfully different entries.

        Algorithm 2 anchors the candidate linear map on two distinct values;
        returns ``None`` for constant fingerprints (no such pair exists).
        """
        key = ("distinct", rel_tol)
        if key not in self._cache:
            array = self.array
            tol = rel_tol * max(self.scale(), 1.0)
            distinct = np.abs(array - array[0]) > tol
            distinct[0] = False
            position = int(np.argmax(distinct))
            self._cache[key] = (0, position) if distinct[position] else None
        return self._cache[key]  # type: ignore[return-value]

    def normal_form(
        self, rel_tol: float = DEFAULT_REL_TOL
    ) -> Tuple[float, ...]:
        """Canonical affine-invariant form (paper section 3.2, Normalization).

        The paper suggests mapping "the first two distinct sample values" to
        two constants; anchoring on the *minimum and maximum* instead keeps
        every normalized entry inside [0, 1], so the fixed-precision
        rounding that makes the tuple a hash key is uniformly conditioned
        (first-two anchoring can scale entries arbitrarily and destabilize
        the key).  A negative-α image reflects the form (x -> 1 - x), so the
        lexicographically smaller of the form and its reflection is chosen,
        making the key invariant under *any* non-degenerate affine map.
        Constant fingerprints normalize to all zeros.  The result is cached:
        index insert and probe reuse one computation.
        """
        key = ("normal_form", rel_tol)
        if key not in self._cache:
            self._cache[key] = self._compute_normal_form(rel_tol)
        return self._cache[key]  # type: ignore[return-value]

    def _compute_normal_form(self, rel_tol: float) -> Tuple[float, ...]:
        if self.first_distinct_pair(rel_tol) is None:
            return tuple(0.0 for _ in self.values)
        array = self.array
        lowest = float(array.min())
        highest = float(array.max())
        span = highest - lowest
        normalized = (array - lowest) / span
        forward = np.round(normalized, NORMAL_FORM_DECIMALS)
        forward[forward == 0] = 0.0  # collapse -0.0 and 0.0 keys
        reflected = np.round(1.0 - forward, NORMAL_FORM_DECIMALS)
        reflected[reflected == 0] = 0.0
        return min(tuple(forward.tolist()), tuple(reflected.tolist()))

    def sid_order(self, descending: bool = False) -> Tuple[int, ...]:
        """Sample-identifier order (paper section 3.2, Sorted SID).

        The sequence of entry indices after sorting entries by value (ties
        broken by ascending index, making the key deterministic).
        Monotonically increasing mappings preserve this order exactly; a
        decreasing mapping turns a source's ascending order into its image's
        ``descending`` order.  Ties must break by ascending index in *both*
        orders — a mapping sends equal entries to equal entries, so the tie
        order is never reversed (plain list reversal would get this wrong).
        Both orders are cached after first computation.
        """
        key = ("sid_desc" if descending else "sid_asc")
        if key not in self._cache:
            array = -self.array if descending else self.array
            order = np.argsort(array, kind="stable")
            self._cache[key] = tuple(int(i) for i in order)
        return self._cache[key]  # type: ignore[return-value]

    def __repr__(self) -> str:
        preview = ", ".join(f"{v:.4g}" for v in self.values[:4])
        suffix = ", ..." if len(self.values) > 4 else ""
        return f"Fingerprint([{preview}{suffix}], m={len(self.values)})"


def rows_first_distinct(
    matrix: np.ndarray, rel_tol: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise :meth:`Fingerprint.first_distinct_pair`, one array pass.

    Returns ``(has_pair, position)`` — ``position[r]`` is the second anchor
    index for row ``r`` (the first anchor is always entry 0), meaningful
    where ``has_pair[r]``.  Mirrors the scalar arithmetic exactly: the same
    per-row scale (``max(|entries|)`` with zero collapsing to 1.0), the same
    tolerance, the same ``argmax`` tie behavior.
    """
    scales = np.abs(matrix).max(axis=1)
    scales[scales == 0.0] = 1.0  # Fingerprint.scale's `or 1.0`
    tolerances = rel_tol * np.maximum(scales, 1.0)
    distinct = np.abs(matrix - matrix[:, :1]) > tolerances[:, None]
    distinct[:, 0] = False
    position = distinct.argmax(axis=1)
    has_pair = distinct[np.arange(len(matrix)), position]
    return has_pair, position


def _pending_by_size(
    fingerprints: Sequence[Fingerprint], cache_key: object
) -> Dict[int, list]:
    """Group the indices of fingerprints missing ``cache_key`` by size."""
    pending: Dict[int, list] = {}
    for index, fingerprint in enumerate(fingerprints):
        if cache_key not in fingerprint._cache:
            pending.setdefault(fingerprint.size, []).append(index)
    return pending


def _normal_forms_matrix(
    matrix: np.ndarray, rel_tol: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Normal-form components for a stack of same-size fingerprints.

    Returns ``(has_pair, position, forward, reflected)`` with matrix
    arithmetic elementwise identical to the scalar computation.  This is
    the ``normal_forms`` compute-backend kernel's numpy reference.
    """
    has_pair, position = rows_first_distinct(matrix, rel_tol)
    lows = matrix.min(axis=1)
    spans = matrix.max(axis=1) - lows
    # Constant rows never read their (possibly zero) span.
    safe_spans = np.where(has_pair, spans, 1.0)
    normalized = (matrix - lows[:, None]) / safe_spans[:, None]
    forward = np.round(normalized, NORMAL_FORM_DECIMALS)
    forward[forward == 0] = 0.0  # collapse -0.0 and 0.0 keys
    reflected = np.round(1.0 - forward, NORMAL_FORM_DECIMALS)
    reflected[reflected == 0] = 0.0
    return has_pair, position, forward, reflected


def batch_normal_forms(
    fingerprints: Sequence[Fingerprint],
    rel_tol: float = DEFAULT_REL_TOL,
    backend=None,
) -> list:
    """:meth:`Fingerprint.normal_form` for many probes in vectorized passes.

    Uncached fingerprints are grouped by size and normalized with matrix
    arithmetic that is elementwise identical to the scalar computation, so
    the resulting hash keys are bitwise the same; each key is written back
    into its fingerprint's cache (later scalar probes reuse it for free).
    ``backend`` routes the matrix kernel through a compute backend
    (default: the process-active one) — every backend returns the same
    bits or degrades trying.
    """
    from repro.core.backend import resolve_backend

    cache_key = ("normal_form", rel_tol)
    distinct_key = ("distinct", rel_tol)
    pending = _pending_by_size(fingerprints, cache_key)
    if pending:
        backend = resolve_backend(backend)
    for size, indices in pending.items():
        matrix = np.stack([fingerprints[i].array for i in indices])
        has_pair, position, forward, reflected = backend.normal_forms(
            matrix, rel_tol
        )
        for row, i in enumerate(indices):
            fingerprint = fingerprints[i]
            if distinct_key not in fingerprint._cache:
                fingerprint._cache[distinct_key] = (
                    (0, int(position[row])) if has_pair[row] else None
                )
            if has_pair[row]:
                key = min(
                    tuple(forward[row].tolist()),
                    tuple(reflected[row].tolist()),
                )
            else:
                key = tuple(0.0 for _ in range(size))
            fingerprint._cache[cache_key] = key
    return [fp.normal_form(rel_tol) for fp in fingerprints]


def batch_sid_orders(
    fingerprints: Sequence[Fingerprint],
    descending: bool = False,
    backend=None,
) -> list:
    """:meth:`Fingerprint.sid_order` for many probes in vectorized passes.

    Stable row-wise argsort over a size-grouped matrix equals the scalar
    per-fingerprint argsort entry for entry; results land in each
    fingerprint's cache, exactly as a scalar probe would have left them.
    ``backend`` routes the argsort kernel through a compute backend
    (default: the process-active one).
    """
    from repro.core.backend import resolve_backend

    cache_key = "sid_desc" if descending else "sid_asc"
    pending = _pending_by_size(fingerprints, cache_key)
    if pending:
        backend = resolve_backend(backend)
    for _, indices in pending.items():
        matrix = np.stack([fingerprints[i].array for i in indices])
        if descending:
            matrix = -matrix
        orders = backend.sid_orders(matrix)
        for row, i in enumerate(indices):
            fingerprints[i]._cache[cache_key] = tuple(
                int(entry) for entry in orders[row]
            )
    return [fp.sid_order(descending=descending) for fp in fingerprints]


def compute_fingerprint(
    sample: Callable[[int], float],
    seed_bank: SeedBank,
    size: int,
) -> Fingerprint:
    """Evaluate ``sample(σk)`` for the first ``size`` seeds of the bank."""
    if size < 1:
        raise FingerprintError("fingerprint size must be at least 1")
    return Fingerprint(
        tuple(float(sample(seed)) for seed in seed_bank.seeds(size))
    )


def fingerprint_from_values(values: FingerprintValues) -> Fingerprint:
    """Build a fingerprint from precomputed output values."""
    return Fingerprint(tuple(float(v) for v in values))
