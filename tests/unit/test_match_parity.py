"""Batched vs scalar FindMatch parity (the columnar engine's invariant).

The columnar match engine must return, for every probe, the same basis id,
the same mapping parameters, and the same candidates-tested counters as the
scalar reference loop — first-match-wins tie-breaking included — across
every mapping family, index strategy, and store shape.  These tests force
the vectorized path (``columnar_min_candidates = 0``, self-verification
exhausted) and compare against stores built with ``columnar=False``.
"""

import numpy as np
import pytest

from repro.core.basis import BasisStore, MatchResult
from repro.core.columnar import CandidateKeys
from repro.core.fingerprint import (
    Fingerprint,
    batch_normal_forms,
    batch_sid_orders,
)
from repro.core.index import INDEX_STRATEGIES, SortedSIDIndex
from repro.core.mapping import (
    AffineMapping,
    IdentityMappingFamily,
    LinearMappingFamily,
    MonotoneMappingFamily,
    PiecewiseLinearMapping,
    ScaleMappingFamily,
    ShiftMappingFamily,
    _NegatedPiecewise,
)

FAMILY_FACTORIES = {
    "linear": LinearMappingFamily,
    "identity": IdentityMappingFamily,
    "shift": ShiftMappingFamily,
    "scale": ScaleMappingFamily,
    "monotone": MonotoneMappingFamily,
}

BASE = Fingerprint((0.0, 1.0, 0.5, 2.0, -1.0))
SAMPLES = np.linspace(-1.0, 2.0, 40)


def _affine(fp, alpha, beta):
    return Fingerprint(tuple(alpha * v + beta for v in fp.values))


def _cubic(fp):
    return Fingerprint(tuple(v**3 for v in fp.values))


#: Store contents: name -> list of fingerprints added in order.
CONTENTS = {
    "empty": [],
    "singleton": [BASE],
    "duplicates": [BASE, Fingerprint(BASE.values), _affine(BASE, 1.0, 0.0)],
    "mixed": [
        BASE,
        _affine(BASE, 2.0, 3.0),
        _cubic(BASE),
        Fingerprint((4.0, 4.0, 4.0, 4.0, 4.0)),  # constant
        Fingerprint((0.0, 0.0, 0.0, 0.0, 0.0)),  # zero
        Fingerprint((1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)),  # other size
        _affine(BASE, -1.5, 0.25),
    ],
}

#: Probes covering every family's accept/reject cases plus size mismatches.
PROBES = [
    BASE,
    _affine(BASE, 1.0, 0.0),
    _affine(BASE, 3.0, -2.0),
    _affine(BASE, 1.0, 4.5),  # pure shift
    _affine(BASE, 2.5, 0.0),  # pure scale
    _affine(BASE, -2.0, 1.0),  # decreasing affine
    _cubic(BASE),  # monotone, not affine
    Fingerprint(tuple(-(v**3) for v in BASE.values)),  # decreasing monotone
    Fingerprint((4.0, 4.0, 4.0, 4.0, 4.0)),  # constant hit
    Fingerprint((7.5, 7.5, 7.5, 7.5, 7.5)),  # constant shift image
    Fingerprint((0.0, 0.0, 0.0, 0.0, 0.0)),  # zero
    Fingerprint((0.3, 0.1, 0.9, 0.2, 0.8)),  # unrelated: miss
    Fingerprint((1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)),  # other size, exact
    Fingerprint((2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0)),  # other size, 2x
]


def build_store(family_name, strategy, content_name, columnar):
    store = BasisStore(
        mapping_family=FAMILY_FACTORIES[family_name](),
        index_strategy=strategy,
        columnar=columnar,
    )
    if columnar:
        store.columnar_min_candidates = 0
        store._verify_remaining = 0  # parity is asserted here, not masked
    for fingerprint in CONTENTS[content_name]:
        store.add(fingerprint, SAMPLES)
    return store


def assert_same_match(expected, actual):
    assert (expected is None) == (actual is None)
    if expected is None:
        return
    assert actual.basis.basis_id == expected.basis.basis_id
    assert type(actual.mapping) is type(expected.mapping)
    assert actual.mapping == expected.mapping


class TestMatchParity:
    @pytest.mark.parametrize("content_name", sorted(CONTENTS))
    @pytest.mark.parametrize("strategy", INDEX_STRATEGIES)
    @pytest.mark.parametrize("family_name", sorted(FAMILY_FACTORIES))
    def test_match_and_match_batch_agree_with_scalar(
        self, family_name, strategy, content_name
    ):
        reference = build_store(family_name, strategy, content_name, False)
        single = build_store(family_name, strategy, content_name, True)
        batched = build_store(family_name, strategy, content_name, True)
        assert single.columnar_enabled

        expected = [reference.match(probe) for probe in PROBES]
        actual = [single.match(probe) for probe in PROBES]
        via_batch = batched.match_batch(PROBES)

        for want, got_single, got_batch in zip(expected, actual, via_batch):
            assert_same_match(want, got_single)
            assert_same_match(want, got_batch)
        assert single.stats.as_dict() == reference.stats.as_dict()
        assert batched.stats.as_dict() == reference.stats.as_dict()

    def test_wrong_size_candidates_are_counted(self):
        """The array scan visits (and counts) untestable sizes, both paths."""
        reference = build_store("linear", "array", "mixed", False)
        columnar = build_store("linear", "array", "mixed", True)
        probe = Fingerprint((1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0))
        want = reference.match(probe)
        got = columnar.match(probe)
        assert_same_match(want, got)
        # Candidate list holds all 7 bases; the size-7 basis sits at
        # position 5, so exactly 6 candidates are tested either way.
        assert reference.stats.candidates_tested == 6
        assert columnar.stats.candidates_tested == 6

    def test_match_returns_namedtuple(self):
        store = build_store("linear", "array", "singleton", True)
        matched = store.match(_affine(BASE, 2.0, 1.0))
        assert isinstance(matched, MatchResult)
        basis, mapping = matched  # tuple unpacking stays supported
        assert basis.basis_id == 0
        assert mapping == AffineMapping(2.0, 1.0)

    def test_scalar_cutover_threshold_is_transparent(self):
        """Below the candidate threshold the scalar loop answers; results
        and counters cannot depend on which path ran."""
        forced = build_store("linear", "array", "mixed", True)
        lazy = build_store("linear", "array", "mixed", True)
        lazy.columnar_min_candidates = 10_000  # always scalar
        for probe in PROBES:
            assert_same_match(lazy.match(probe), forced.match(probe))
        assert lazy.stats.as_dict() == forced.stats.as_dict()


class TestMergeParity:
    LEFT = [BASE, _cubic(BASE), Fingerprint((3.0, 3.0, 3.0, 3.0, 3.0))]
    RIGHT = [
        _affine(BASE, 4.0, -1.0),  # collapses into BASE under linear
        Fingerprint((0.2, 0.7, 0.1, 0.9, 0.4)),  # new basis
        Fingerprint(BASE.values),  # duplicate of BASE
    ]

    def _filled(self, fingerprints, family_name, strategy, columnar):
        store = BasisStore(
            mapping_family=FAMILY_FACTORIES[family_name](),
            index_strategy=strategy,
            columnar=columnar,
        )
        if columnar:
            store.columnar_min_candidates = 0
            store._verify_remaining = 0
        for fingerprint in fingerprints:
            store.add(fingerprint, SAMPLES)
        return store

    @pytest.mark.parametrize("strategy", INDEX_STRATEGIES)
    @pytest.mark.parametrize("family_name", sorted(FAMILY_FACTORIES))
    def test_reprobe_merge_matches_scalar_merge(self, family_name, strategy):
        ref_left = self._filled(self.LEFT, family_name, strategy, False)
        ref_right = self._filled(self.RIGHT, family_name, strategy, False)
        col_left = self._filled(self.LEFT, family_name, strategy, True)
        col_right = self._filled(self.RIGHT, family_name, strategy, True)

        expected = ref_left.merge(ref_right)
        actual = col_left.merge(col_right)

        assert set(actual) == set(expected)
        for incoming_id in expected:
            want_id, want_mapping = expected[incoming_id]
            got_id, got_mapping = actual[incoming_id]
            assert got_id == want_id
            assert got_mapping == want_mapping
        assert len(col_left) == len(ref_left)
        assert col_left.stats.as_dict() == ref_left.stats.as_dict()
        # The merged columnar store still answers probes like the scalar one.
        for probe in PROBES:
            assert_same_match(ref_left.match(probe), col_left.match(probe))
        assert col_left.stats.as_dict() == ref_left.stats.as_dict()

    @pytest.mark.parametrize("strategy", INDEX_STRATEGIES)
    def test_verbatim_merge_adopts_columnar_matrices(self, strategy):
        ref_left = self._filled(self.LEFT, "linear", strategy, False)
        ref_right = self._filled(self.RIGHT, "linear", strategy, False)
        col_left = self._filled(self.LEFT, "linear", strategy, True)
        col_right = self._filled(self.RIGHT, "linear", strategy, True)

        expected = ref_left.merge(ref_right, reprobe=False)
        actual = col_left.merge(col_right, reprobe=False)
        assert actual == expected
        assert len(col_left.columnar) == len(col_left)
        for probe in PROBES:
            assert_same_match(ref_left.match(probe), col_left.match(probe))
        assert col_left.stats.as_dict() == ref_left.stats.as_dict()


class TestSelfVerification:
    class _LyingLinearFamily(LinearMappingFamily):
        """Claims no candidate ever matches (a broken vectorized kernel)."""

        def find_matrix(self, sources, target, rel_tol=1e-9, abs_tol=1e-12,
                        keys=None, backend=None):
            plausible, build = super().find_matrix(
                sources, target, rel_tol, abs_tol, keys, backend
            )
            return np.zeros_like(plausible), build

    def test_disagreement_warns_and_falls_back(self):
        store = BasisStore(
            mapping_family=self._LyingLinearFamily(), index_strategy="array"
        )
        store.columnar_min_candidates = 0
        store.add(BASE, SAMPLES)
        probe = _affine(BASE, 2.0, 1.0)
        with pytest.warns(RuntimeWarning, match="columnar FindMapping"):
            matched = store.match(probe)
        # The scalar reference answer is served and the store degrades.
        assert matched is not None
        assert matched.mapping == AffineMapping(2.0, 1.0)
        assert store.columnar_enabled is False
        assert store.match(probe) is not None  # scalar path from now on
        assert store.stats.matches == 2

    def test_agreement_keeps_columnar_enabled(self):
        store = BasisStore(index_strategy="array")
        store.columnar_min_candidates = 0
        store.add(BASE, SAMPLES)
        for _ in range(6):  # beyond VERIFY_LOOKUPS
            assert store.match(_affine(BASE, 2.0, 1.0)) is not None
        assert store.columnar_enabled is True

    def test_columnar_false_forces_scalar(self):
        store = BasisStore(columnar=False)
        store.add(BASE, SAMPLES)
        assert store.columnar_enabled is False
        assert store.match(_affine(BASE, 2.0, 1.0)) is not None


class TestBatchedKeys:
    def test_batch_normal_forms_bitwise_equal(self):
        values = [
            BASE.values,
            (5.0, 5.0, 5.0, 5.0, 5.0),
            (-2.0, 0.0, 1.0, 0.5, 3.0),
            (0.0, 0.0, 0.0, 0.0, 0.0),
            (1.0, 2.0, 3.0),
        ]
        fresh = [Fingerprint(v) for v in values]
        batched = batch_normal_forms(fresh)
        scalar = [Fingerprint(v).normal_form() for v in values]
        assert batched == scalar

    def test_batch_sid_orders_bitwise_equal(self):
        values = [
            BASE.values,
            (5.0, 5.0, 5.0, 5.0, 5.0),
            (3.0, 1.0, 2.0, 1.0, 0.0),  # ties break by ascending index
            (1.0, 2.0, 3.0),
        ]
        for descending in (False, True):
            fresh = [Fingerprint(v) for v in values]
            batched = batch_sid_orders(fresh, descending=descending)
            scalar = [
                Fingerprint(v).sid_order(descending=descending)
                for v in values
            ]
            assert batched == scalar

    def test_candidates_batch_matches_candidates(self):
        for strategy in INDEX_STRATEGIES:
            store = build_store("linear", strategy, "mixed", True)
            per_probe = [store.index.candidates(p) for p in PROBES]
            batched = store.index.candidates_batch(PROBES)
            assert batched == per_probe

    def test_columnar_key_matrices_mirror_fingerprint_keys(self):
        """The parallel SID-order and normal-form key matrices must hold,
        row for row, exactly the keys the hash indexes inserted — that is
        what makes pruning on them sound."""
        store = build_store("linear", "array", "mixed", True)
        blocks = store.columnar._blocks
        assert sum(block.count for block in blocks.values()) == len(store)
        for block in blocks.values():
            sid_rows = block.sid_matrix()
            nf_rows = block.nf_matrix(store.rel_tol)
            for row, fingerprint in enumerate(block.fingerprints):
                assert tuple(sid_rows[row]) == fingerprint.sid_order()
                assert (
                    tuple(nf_rows[row])
                    == fingerprint.normal_form(store.rel_tol)
                )
        # The gathered per-candidate view families receive sees the same.
        block = blocks[BASE.size]
        keys = CandidateKeys(block, np.arange(block.count))
        np.testing.assert_array_equal(keys.sid_asc(), block.sid_matrix())
        np.testing.assert_array_equal(
            keys.normal_forms(store.rel_tol), block.nf_matrix(store.rel_tol)
        )


class TestSortedSIDFastPaths:
    def test_ascending_only_probe(self):
        index = SortedSIDIndex()
        index.insert(BASE, 0)
        index.insert(_affine(BASE, 2.0, 0.0), 1)
        assert index.candidates(BASE) == [0, 1]

    def test_descending_only_probe(self):
        index = SortedSIDIndex()
        index.insert(BASE, 0)
        probe = _affine(BASE, -1.0, 0.0)
        assert index.candidates(probe) == [0]

    def test_tied_fingerprint_probes_one_bucket_once(self):
        index = SortedSIDIndex()
        constant = Fingerprint((2.0, 2.0, 2.0))
        index.insert(constant, 0)
        # asc and desc keys coincide for fully tied entries; the candidate
        # list must not duplicate the bucket.
        assert constant.sid_order() == constant.sid_order(descending=True)
        assert index.candidates(Fingerprint((7.0, 7.0, 7.0))) == [0]

    def test_mixed_buckets_preserve_order_and_dedup(self):
        index = SortedSIDIndex()
        index.insert(BASE, 0)
        index.insert(_affine(BASE, -3.0, 1.0), 1)
        # Ascending bucket first, then the descending bucket's entries.
        assert index.candidates(BASE) == [0, 1]
        assert index.candidates(_affine(BASE, -1.0, 0.0)) == [1, 0]


class TestPiecewiseApplyArray:
    MAPPING = PiecewiseLinearMapping(
        (0.0, 0.5, 1.25, 3.0), (1.0, -0.5, 2.0, 2.5)
    )

    def test_bitwise_equal_to_scalar_apply(self):
        values = np.concatenate(
            [
                np.linspace(-2.0, 5.0, 113),  # interior + both extrapolations
                np.asarray(self.MAPPING.knots_x),  # exact knot hits
            ]
        )
        expected = np.array(
            [self.MAPPING.apply(float(v)) for v in values], dtype=float
        )
        actual = self.MAPPING.apply_array(values)
        assert actual.dtype == np.float64
        np.testing.assert_array_equal(actual, expected)

    def test_negated_piecewise_bitwise(self):
        negated = _NegatedPiecewise(self.MAPPING)
        values = np.linspace(-1.0, 4.0, 57)
        expected = np.array([negated.apply(float(v)) for v in values])
        np.testing.assert_array_equal(negated.apply_array(values), expected)

    def test_empty_input(self):
        assert self.MAPPING.apply_array(np.empty(0)).shape == (0,)
