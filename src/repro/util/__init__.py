"""Small shared utilities: statistics, timing, and text tables."""

from repro.util.stats import RunningStats, histogram, quantiles
from repro.util.tables import format_table
from repro.util.timing import InvocationCounter, Stopwatch

__all__ = [
    "RunningStats",
    "histogram",
    "quantiles",
    "format_table",
    "InvocationCounter",
    "Stopwatch",
]
