"""Logical query operators executed within one possible world.

A deliberately small relational algebra — scan, filter, map/project, group
aggregate, nested-loop join, limit — sufficient for the paper's scenario
queries.  Plans are trees of :class:`Operator`; ``execute`` materializes a
:class:`Relation` for a given world context.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QueryError
from repro.probdb.expressions import (
    BatchEvalContext,
    BatchUnsupported,
    EvalContext,
    Expression,
    _contains_blackbox,
    _iter_blackbox_calls,
    assert_batchable,
)
from repro.probdb.relation import Relation, Row
from repro.probdb.schema import Column, Schema

_AGGREGATES: Dict[str, Callable[[Sequence[float]], float]] = {
    "sum": lambda vs: float(sum(vs)),
    "avg": lambda vs: float(sum(vs) / len(vs)),
    "min": lambda vs: float(min(vs)),
    "max": lambda vs: float(max(vs)),
    "count": lambda vs: float(len(vs)),
}


@dataclass
class WorldContext:
    """Bindings shared by every operator while evaluating one world."""

    params: Mapping[str, float]
    world_seed: int


class Operator(ABC):
    """A node of a logical query plan."""

    @abstractmethod
    def schema(self) -> Schema:
        """Output schema of this operator."""

    @abstractmethod
    def execute(self, world: WorldContext) -> Relation:
        """Materialize this operator's output for one possible world."""

    def execute_batch(
        self, params: Mapping[str, float], world_seeds: np.ndarray
    ) -> Dict[str, object]:
        """Evaluate a single-row plan across every world in one pass.

        Returns column name → scalar (world-independent) or per-world
        vector; lane ``k`` matches ``execute`` under ``world_seeds[k]``.
        Raises :class:`BatchUnsupported` for plan shapes the batch engine
        does not cover — callers fall back to the per-world loop.
        """
        raise BatchUnsupported(type(self).__name__)


@dataclass
class TableScan(Operator):
    """Scan a fixed (deterministic) relation."""

    relation: Relation

    def schema(self) -> Schema:
        return self.relation.schema

    def execute(self, world: WorldContext) -> Relation:
        return self.relation


@dataclass
class GeneratorScan(Operator):
    """Produce rows from a callable — the hook VG-style tables plug into.

    ``generator(world)`` must return an iterable of rows matching
    ``output_schema``; it is invoked once per world.
    """

    output_schema: Schema
    generator: Callable[[WorldContext], Sequence[Sequence[object]]]

    def schema(self) -> Schema:
        return self.output_schema

    def execute(self, world: WorldContext) -> Relation:
        return Relation(self.output_schema, self.generator(world))


@dataclass
class SingletonScan(Operator):
    """A one-row, zero-column relation: the FROM-less SELECT's input."""

    def schema(self) -> Schema:
        return Schema(())

    def execute(self, world: WorldContext) -> Relation:
        return Relation(Schema(()), [()])


@dataclass
class Project(Operator):
    """SELECT list: named expressions computed per input row.

    Select items may reference earlier items by alias (paper Figure 1's
    ``overload`` reads ``capacity`` and ``demand``), so items are evaluated
    left to right with the growing row visible to later items.
    """

    child: Operator
    items: Tuple[Tuple[str, Expression], ...]

    def schema(self) -> Schema:
        return Schema(tuple(Column(name) for name, _ in self.items))

    def execute(self, world: WorldContext) -> Relation:
        output_rows: List[Row] = []
        for row in self.child.execute(world):
            visible = dict(
                zip(self.child.schema().names, row)
            )  # type: Dict[str, object]
            values: List[object] = []
            for name, expression in self.items:
                value = expression.evaluate(
                    EvalContext(visible, world.params, world.world_seed)
                )
                visible[name] = value
                values.append(value)
            output_rows.append(tuple(values))
        return Relation(self.schema(), output_rows)

    def execute_batch(
        self, params: Mapping[str, float], world_seeds: np.ndarray
    ) -> Dict[str, object]:
        # Batchable when the input row is single and world-independent —
        # the shape of every scenario SELECT (FROM-less or over a one-row
        # deterministic table).  Aliases stay visible to later items,
        # mirroring the scalar left-to-right evaluation.
        child = self.child
        if isinstance(child, SingletonScan):
            visible: Dict[str, object] = {}
        elif isinstance(child, TableScan) and len(child.relation) == 1:
            visible = dict(
                zip(child.relation.schema.names, child.relation.rows[0])
            )
        else:
            raise BatchUnsupported(type(child).__name__)
        # Reject unsupported shapes *before* evaluating anything: batch
        # evaluation samples black boxes (counted work), so a mid-stream
        # fallback would redo — and double-count — that sampling.
        stochastic: set = set()
        for name, expression in self.items:
            assert_batchable(expression, frozenset(stochastic))
            if _contains_blackbox(expression) or (
                set(expression.references()) & stochastic
            ):
                stochastic.add(name)
        context = BatchEvalContext(
            row=visible, params=params, world_seeds=world_seeds
        )
        # Runtime fallbacks (e.g. a CASE branch erroring under eager
        # evaluation) rerun everything on the scalar path; rolling the
        # invocation counters back keeps the machine-independent work
        # accounting identical to a scalar-only execution.  Composite boxes
        # sample their children, so the snapshot must cover those too.
        boxes = [
            call.box
            for _, expression in self.items
            for call in _iter_blackbox_calls(expression)
        ]
        seen = set()
        closure = []
        while boxes:
            box = boxes.pop()
            if id(box) in seen:
                continue
            seen.add(id(box))
            closure.append(box)
            boxes.extend(box.component_boxes())
        snapshots = [(box, box.invocations) for box in closure]
        try:
            for name, expression in self.items:
                visible[name] = expression.evaluate_batch(context)
        except BatchUnsupported:
            for box, count in snapshots:
                box._invocations = count
            raise
        return {name: visible[name] for name, _ in self.items}


@dataclass
class Filter(Operator):
    """WHERE: keep rows whose predicate evaluates truthy."""

    child: Operator
    predicate: Expression

    def schema(self) -> Schema:
        return self.child.schema()

    def execute(self, world: WorldContext) -> Relation:
        names = self.child.schema().names
        kept = [
            row
            for row in self.child.execute(world)
            if bool(
                self.predicate.evaluate(
                    EvalContext(
                        dict(zip(names, row)), world.params, world.world_seed
                    )
                )
            )
        ]
        return Relation(self.schema(), kept)


@dataclass
class GroupAggregate(Operator):
    """GROUP BY with SUM/AVG/MIN/MAX/COUNT aggregates.

    ``aggregates`` maps output name to (kind, input expression).  An empty
    ``group_by`` produces the single global group.
    """

    child: Operator
    group_by: Tuple[str, ...]
    aggregates: Tuple[Tuple[str, str, Expression], ...]

    def schema(self) -> Schema:
        columns = [self.child.schema().column(g) for g in self.group_by]
        columns += [Column(name) for name, _, _ in self.aggregates]
        return Schema(tuple(columns))

    def execute(self, world: WorldContext) -> Relation:
        child_schema = self.child.schema()
        for kind_name in {kind for _, kind, _ in self.aggregates}:
            if kind_name.lower() not in _AGGREGATES:
                raise QueryError(f"unknown aggregate {kind_name!r}")
        groups: Dict[Tuple[object, ...], List[Row]] = {}
        for row in self.child.execute(world):
            key = tuple(
                row[child_schema.index_of(g)] for g in self.group_by
            )
            groups.setdefault(key, []).append(row)
        output_rows: List[Row] = []
        for key in sorted(groups, key=repr):
            rows = groups[key]
            values: List[object] = list(key)
            for _, kind, expression in self.aggregates:
                inputs = [
                    float(
                        expression.evaluate(  # type: ignore[arg-type]
                            EvalContext(
                                dict(zip(child_schema.names, row)),
                                world.params,
                                world.world_seed,
                            )
                        )
                    )
                    for row in rows
                ]
                values.append(_AGGREGATES[kind.lower()](inputs))
            output_rows.append(tuple(values))
        return Relation(self.schema(), output_rows)


@dataclass
class NestedLoopJoin(Operator):
    """Inner join with an arbitrary predicate over the concatenated row."""

    left: Operator
    right: Operator
    predicate: Optional[Expression] = None

    def schema(self) -> Schema:
        return self.left.schema().concat(self.right.schema())

    def execute(self, world: WorldContext) -> Relation:
        names = self.schema().names
        output_rows: List[Row] = []
        right_rows = list(self.right.execute(world))
        for left_row in self.left.execute(world):
            for right_row in right_rows:
                combined = left_row + right_row
                if self.predicate is not None:
                    keep = bool(
                        self.predicate.evaluate(
                            EvalContext(
                                dict(zip(names, combined)),
                                world.params,
                                world.world_seed,
                            )
                        )
                    )
                    if not keep:
                        continue
                output_rows.append(combined)
        return Relation(self.schema(), output_rows)


@dataclass
class Limit(Operator):
    """Keep at most ``count`` rows (deterministic prefix)."""

    child: Operator
    count: int

    def schema(self) -> Schema:
        return self.child.schema()

    def execute(self, world: WorldContext) -> Relation:
        if self.count < 0:
            raise QueryError("LIMIT must be non-negative")
        return Relation(
            self.schema(), list(self.child.execute(world))[: self.count]
        )
