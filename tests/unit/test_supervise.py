"""Unit tests for the shard-supervision layer (:mod:`repro.core.supervise`).

Everything here runs with fake pools, fake clocks, and scripted fault
plans — no real processes, signals, or wall-clock waits — so each
supervision path (retry, backoff, deadline expiry, pool rebuild,
degradation) is pinned with exact assertions.  The end-to-end behavior
over real fork pools lives in ``tests/integration/test_fault_tolerance.py``.
"""

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core.supervise import (
    DEFAULT_POLICY,
    ShardSupervisor,
    SupervisionPolicy,
)
from repro.errors import (
    ExecutionError,
    JigsawError,
    ShardCrashError,
    ShardRetryExhaustedError,
    ShardTimeoutError,
)
from repro.testing import FaultPlan, use_faults
from repro.util.timing import FakeClock


def double(context, index):
    return context * index


class RecordingSleep:
    """Collects requested delays; optionally advances a fake clock."""

    def __init__(self, clock=None):
        self.calls = []
        self.clock = clock

    def __call__(self, seconds):
        self.calls.append(seconds)
        if self.clock is not None:
            self.clock.advance(seconds)


class FakePool:
    """A supervisable pool that runs submissions in-process, immediately.

    Each ``submit`` resolves a real :class:`concurrent.futures.Future`
    (so the supervisor's ``wait`` sees genuine completions) either with
    the runner's value or with a scripted exception for that
    ``(index, submission_number)``.
    """

    def __init__(self, runner, context, scripted=None):
        self.runner = runner
        self.context = context
        self.scripted = dict(scripted or {})
        self.submissions = []
        self.abandoned = 0
        self.closed = 0

    def submit(self, index):
        count = sum(1 for i in self.submissions if i == index) + 1
        self.submissions.append(index)
        future = Future()
        error = self.scripted.get((index, count))
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(self.runner(self.context, index))
        return future

    def abandon(self):
        self.abandoned += 1

    def close(self):
        self.closed += 1


class FakePoolFactory:
    def __init__(self, runner, context, scripts=()):
        """``scripts[k]`` scripts the k-th pool built (missing = clean)."""
        self.runner = runner
        self.context = context
        self.scripts = list(scripts)
        self.pools = []

    def __call__(self):
        scripted = (
            self.scripts[len(self.pools)]
            if len(self.pools) < len(self.scripts)
            else None
        )
        pool = FakePool(self.runner, self.context, scripted)
        self.pools.append(pool)
        return pool


class TestSupervisionPolicy:
    def test_defaults_are_the_documented_contract(self):
        assert DEFAULT_POLICY.max_attempts == 3
        assert DEFAULT_POLICY.timeout is None
        assert DEFAULT_POLICY.degrade is True

    @pytest.mark.parametrize(
        "overrides",
        [
            {"max_attempts": 0},
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_cap": -1.0},
            {"poll_interval": 0.0},
        ],
    )
    def test_invalid_knobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            SupervisionPolicy(**overrides)

    def test_backoff_is_capped_exponential(self):
        policy = SupervisionPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.35
        )
        assert policy.backoff(1) == 0.1
        assert policy.backoff(2) == 0.2
        assert policy.backoff(3) == 0.35  # 0.4 capped
        assert policy.backoff(10) == 0.35

    def test_backoff_rejects_zeroth_attempt(self):
        with pytest.raises(ValueError):
            DEFAULT_POLICY.backoff(0)


class TestInlineSupervision:
    def test_happy_path_runs_every_shard_once(self):
        supervisor = ShardSupervisor(double, 3, [0, 1, 2])
        assert supervisor.run() == {0: 0, 1: 3, 2: 6}
        report = supervisor.report
        assert report.retries == 0
        assert report.failures == 0
        assert report.degraded_shards == ()
        assert report.backoff_delays == []

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError):
            ShardSupervisor(double, 3, [0, 0])

    def test_empty_indices_is_a_noop(self):
        assert ShardSupervisor(double, 3, []).run() == {}

    def test_crash_fault_is_retried_with_backoff(self):
        sleep = RecordingSleep()
        policy = SupervisionPolicy(backoff_base=0.25, backoff_factor=2.0)
        supervisor = ShardSupervisor(
            double, 3, [0, 1], policy, sleep=sleep
        )
        plan = FaultPlan.fail_n_then_succeed(1, failures=2, kind="crash")
        with use_faults(plan):
            assert supervisor.run() == {0: 0, 1: 3}
        shard = supervisor.report.shards[1]
        assert shard.attempts == 3
        assert [type(f) for f in shard.failures] == [
            ShardCrashError,
            ShardCrashError,
        ]
        assert shard.failures[0].shard_index == 1
        assert shard.failures[0].attempt == 1
        assert sleep.calls == [0.25, 0.5]
        assert supervisor.report.retries == 2
        assert plan.triggered == [(1, 1, "crash"), (1, 2, "crash")]

    def test_hang_fault_classifies_as_timeout_inline(self):
        supervisor = ShardSupervisor(
            double, 3, [0], SupervisionPolicy(backoff_base=0.0)
        )
        with use_faults(FaultPlan({(0, 1): "hang"})):
            assert supervisor.run() == {0: 0}
        failure = supervisor.report.shards[0].failures[0]
        assert isinstance(failure, ShardTimeoutError)
        assert failure.timeout is None

    def test_exhaustion_degrades_in_process_by_default(self):
        supervisor = ShardSupervisor(
            double,
            3,
            [0, 1],
            SupervisionPolicy(max_attempts=2, backoff_base=0.0),
        )
        with use_faults(FaultPlan.fail_n_then_succeed(0, failures=5)):
            assert supervisor.run() == {0: 0, 1: 3}
        report = supervisor.report
        assert report.degraded_shards == (0,)
        assert report.shards[0].attempts == 2
        assert len(report.shards[0].failures) == 2

    def test_exhaustion_without_degrade_raises_typed_error(self):
        supervisor = ShardSupervisor(
            double,
            3,
            [0],
            SupervisionPolicy(
                max_attempts=2, backoff_base=0.0, degrade=False
            ),
        )
        with use_faults(FaultPlan.fail_n_then_succeed(0, failures=5)):
            with pytest.raises(ShardRetryExhaustedError) as excinfo:
                supervisor.run()
        error = excinfo.value
        assert isinstance(error, JigsawError)
        assert error.shard_index == 0
        assert error.attempts == 2
        assert len(error.failures) == 2

    def test_application_exception_propagates_unretried(self):
        boom = ValueError("deterministic application bug")
        supervisor = ShardSupervisor(double, 3, [0])
        with use_faults(FaultPlan({(0, 1): boom})):
            with pytest.raises(ValueError, match="deterministic"):
                supervisor.run()
        # One attempt only: a re-run of a pure shard would fail identically.
        assert supervisor.report.shards[0].attempts == 1

    def test_on_shard_complete_fires_per_acceptance(self):
        accepted = []
        supervisor = ShardSupervisor(
            double,
            3,
            [0, 1],
            on_shard_complete=lambda i, value: accepted.append((i, value)),
        )
        supervisor.run()
        assert accepted == [(0, 0), (1, 3)]


class TestPooledSupervision:
    def test_happy_path_uses_the_pool_once_per_shard(self):
        factory = FakePoolFactory(double, 3)
        supervisor = ShardSupervisor(
            double, 3, [0, 1, 2], pool_factory=factory
        )
        assert supervisor.run() == {0: 0, 1: 3, 2: 6}
        (pool,) = factory.pools
        assert sorted(pool.submissions) == [0, 1, 2]
        assert pool.closed == 1
        assert pool.abandoned == 0

    def test_broken_pool_is_rebuilt_and_shard_retried(self):
        clock = FakeClock(tick=0.0)
        sleep = RecordingSleep(clock)
        factory = FakePoolFactory(
            double,
            3,
            scripts=[{(1, 1): BrokenProcessPool("worker died")}],
        )
        supervisor = ShardSupervisor(
            double,
            3,
            [0, 1],
            SupervisionPolicy(backoff_base=0.0),
            pool_factory=factory,
            clock=clock,
            sleep=sleep,
        )
        assert supervisor.run() == {0: 0, 1: 3}
        report = supervisor.report
        assert report.pools_rebuilt == 1
        assert len(factory.pools) == 2
        assert factory.pools[0].abandoned == 1
        assert isinstance(report.shards[1].failures[0], ShardCrashError)

    def test_injected_crash_retries_without_rebuilding(self):
        factory = FakePoolFactory(double, 3)
        supervisor = ShardSupervisor(
            double,
            3,
            [0, 1],
            SupervisionPolicy(backoff_base=0.0),
            pool_factory=factory,
        )
        with use_faults(FaultPlan({(1, 1): "crash"})):
            assert supervisor.run() == {0: 0, 1: 3}
        assert supervisor.report.pools_rebuilt == 0
        assert len(factory.pools) == 1

    def test_hang_without_timeout_is_a_configuration_error(self):
        factory = FakePoolFactory(double, 3)
        supervisor = ShardSupervisor(
            double, 3, [0], pool_factory=factory
        )
        with use_faults(FaultPlan({(0, 1): "hang"})):
            with pytest.raises(ExecutionError, match="no timeout"):
                supervisor.run()
        # The failure path abandons rather than closing: workers may be
        # stuck, so a clean shutdown could block forever.
        assert factory.pools[0].abandoned == 1

    def test_hung_shard_expires_at_its_deadline_and_retries(self):
        clock = FakeClock(tick=0.0)
        sleep = RecordingSleep(clock)
        factory = FakePoolFactory(double, 3)
        supervisor = ShardSupervisor(
            double,
            3,
            [0, 1],
            SupervisionPolicy(
                timeout=5.0, backoff_base=0.0, poll_interval=1.0
            ),
            pool_factory=factory,
            clock=clock,
            sleep=sleep,
        )
        with use_faults(FaultPlan({(1, 1): "hang"})):
            assert supervisor.run() == {0: 0, 1: 3}
        failure = supervisor.report.shards[1].failures[0]
        assert isinstance(failure, ShardTimeoutError)
        assert failure.timeout == 5.0
        assert supervisor.report.shards[1].attempts == 2
        # The hang was injected (no real stuck worker), so no pool had to
        # be torn down to get rid of it.
        assert supervisor.report.pools_rebuilt == 0
        # Virtual time only advanced through the injected sleep.
        assert sleep.calls, "deadline expiry requires waiting"

    def test_keyboard_interrupt_abandons_the_pool_and_propagates(self):
        factory = FakePoolFactory(double, 3)
        supervisor = ShardSupervisor(
            double, 3, [0, 1], pool_factory=factory
        )
        with use_faults(FaultPlan({(0, 1): "interrupt"})):
            with pytest.raises(KeyboardInterrupt):
                supervisor.run()
        assert factory.pools[0].abandoned == 1
        assert factory.pools[0].closed == 0

    def test_application_exception_propagates_unretried_pooled(self):
        factory = FakePoolFactory(
            double, 3, scripts=[{(0, 1): RuntimeError("app bug")}]
        )
        supervisor = ShardSupervisor(
            double, 3, [0], pool_factory=factory
        )
        with pytest.raises(RuntimeError, match="app bug"):
            supervisor.run()
        assert supervisor.report.shards[0].attempts == 1
