"""The wire framing: length-prefixed JSON, EOF discipline, frame caps."""

import socket
import struct
import threading

import pytest

from repro.errors import ProtocolError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    recv_frame,
    send_frame,
)


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip(self, pair):
        left, right = pair
        body = {"kind": "match", "fingerprint": ["0x1.8p+0"], "id": 3}
        send_frame(left, body)
        assert recv_frame(right) == body

    def test_many_frames_stay_in_order(self, pair):
        left, right = pair
        for index in range(50):
            send_frame(left, {"i": index})
        for index in range(50):
            assert recv_frame(right) == {"i": index}

    def test_empty_object(self, pair):
        left, right = pair
        send_frame(left, {})
        assert recv_frame(right) == {}

    def test_encode_is_prefix_plus_utf8_json(self):
        frame = encode_frame({"a": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert frame[4:] == b'{"a":1}'


class TestEofDiscipline:
    def test_clean_eof_between_frames_is_none(self, pair):
        left, right = pair
        send_frame(left, {"x": 1})
        left.close()
        assert recv_frame(right) == {"x": 1}
        assert recv_frame(right) is None

    def test_eof_mid_prefix_is_protocol_error(self, pair):
        left, right = pair
        left.sendall(b"\x00\x00")  # half a length prefix
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(right)

    def test_eof_mid_body_is_protocol_error(self, pair):
        left, right = pair
        frame = encode_frame({"kind": "stats"})
        left.sendall(frame[:-3])
        left.close()
        with pytest.raises(ProtocolError):
            recv_frame(right)


class TestRefusals:
    def test_oversized_announcement_refused_before_allocation(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="over the"):
            recv_frame(right)

    def test_oversized_body_refused_at_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 16)})

    def test_non_json_body_refused(self, pair):
        left, right = pair
        payload = b"\xff\xfe not json"
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="not valid UTF-8 JSON"):
            recv_frame(right)

    def test_non_object_body_refused(self, pair):
        left, right = pair
        payload = b"[1,2,3]"
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="JSON object"):
            recv_frame(right)


class TestChunkedDelivery:
    def test_frame_split_across_many_sends(self, pair):
        """recv_frame reassembles however the kernel fragments it."""
        left, right = pair
        frame = encode_frame({"kind": "estimate", "fingerprint": []})
        received = {}

        def reader():
            received["body"] = recv_frame(right)

        thread = threading.Thread(target=reader)
        thread.start()
        for offset in range(0, len(frame), 3):
            left.sendall(frame[offset : offset + 3])
        thread.join(timeout=5)
        assert received["body"] == {"kind": "estimate", "fingerprint": []}
