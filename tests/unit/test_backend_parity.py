"""Backend seam parity and self-verification degrade semantics.

Three contracts are enforced here:

* **Parity** — every available compute backend produces *bitwise* the
  same draws, mapping parameters, match decisions, and
  ``candidates_tested`` counters as the numpy reference, across all
  five mapping families and all three index strategies.  On the default
  CI matrix only ``numpy`` is available (the parametrization then pins
  the plumbing); the optional-deps job installs numba and runs the same
  tests against the JIT kernels.
* **Degrade** — a lying backend is caught by the first-N cross-check,
  warns exactly once, and answers through the reference from then on;
  the degrade is scoped to the instance (one bad store never poisons
  the process), visible via ``describe()``/``fast_path_status()``, and
  re-armable only through the test-only reset hooks.
* **Refusal** — unknown or unavailable backend names raise a typed
  :class:`~repro.errors.BackendError` (CLI exit code 2); selection
  never falls back silently.
"""

import warnings

import numpy as np
import pytest

from repro.blackbox import fastrng
from repro.core.backend import (
    VERIFY_CALLS,
    ComputeBackend,
    NumpyBackend,
    active_backend,
    backend_available,
    backend_names,
    create_backend,
    resolve_backend,
    use_backend,
)
from repro.core.basis import BasisStore
from repro.core.fingerprint import Fingerprint
from repro.core.mapping import (
    IdentityMappingFamily,
    LinearMappingFamily,
    MonotoneMappingFamily,
    ScaleMappingFamily,
    ShiftMappingFamily,
)
from repro.errors import BackendError, JigsawError

AVAILABLE = tuple(
    name for name in backend_names() if backend_available(name)
)

needs_numba = pytest.mark.skipif(
    not backend_available("numba"), reason="numba is not installed"
)

#: (family factory, per-probe transform builder): the transform maps a
#: stored base row to a probe the family must match.  All transforms are
#: strictly increasing, so the monotone family accepts them too.
FAMILIES = {
    "linear": (LinearMappingFamily, lambda i, row: 1.5 * row + float(i % 3)),
    "identity": (IdentityMappingFamily, lambda i, row: row.copy()),
    "shift": (ShiftMappingFamily, lambda i, row: row + float(i % 5) - 2.0),
    "scale": (ScaleMappingFamily, lambda i, row: (1.0 + 0.5 * (i % 3)) * row),
    "monotone": (
        MonotoneMappingFamily,
        lambda i, row: 2.0 * row + float(i % 2),
    ),
}

STRATEGIES = ("array", "normalization", "sorted_sid")

KINDS = (
    fastrng.KIND_NORMAL,
    fastrng.KIND_UNIFORM,
    fastrng.KIND_EXPONENTIAL,
    fastrng.KIND_NORMAL,
)


def _probe_mix(family_key, bases):
    """Deterministic probes: matching images plus guaranteed misses."""
    transform = FAMILIES[family_key][1]
    probes = []
    for i, row in enumerate(bases):
        values = transform(i, row)
        if i % 4 == 3:
            values = values.copy()
            values[i % len(values)] += 0.37  # break the relation: a miss
        probes.append(Fingerprint(values))
    return probes


def _match_digest(store, probes):
    """Everything parity pins: decisions, params, and work counters."""
    digest = []
    for probe in probes:
        before = store.stats.candidates_tested
        result = store.match(probe)
        work = store.stats.candidates_tested - before
        if result is None:
            digest.append((None, None, work))
        else:
            digest.append((result.basis.basis_id, result.mapping, work))
    return digest


class TestKernelParity:
    @pytest.mark.parametrize("name", AVAILABLE)
    def test_draw_matrix_bitwise_matches_scalar(self, name):
        backend = create_backend(name)
        # Enough seeds for ziggurat-rejection lanes (~1.5% per draw).
        seeds = np.arange(3000, dtype=np.uint64)
        matrix = fastrng.draw_matrix(seeds, KINDS, backend=backend)
        scalar = fastrng._draw_matrix_scalar(seeds, KINDS)
        assert np.array_equal(matrix, scalar)
        assert backend.degraded_kernels() == ()

    @pytest.mark.parametrize("name", AVAILABLE)
    @pytest.mark.parametrize("family_key", sorted(FAMILIES))
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_match_parity_with_reference(self, name, family_key, strategy):
        factory = FAMILIES[family_key][0]
        rng = np.random.default_rng(20110614)
        bases = rng.standard_normal((24, 10))
        probes = _probe_mix(family_key, bases)

        reference = BasisStore(
            mapping_family=factory(), index_strategy=strategy,
            backend=NumpyBackend(),
        )
        under_test = BasisStore(
            mapping_family=factory(), index_strategy=strategy, backend=name
        )
        # Force the columnar engine so the backend kernels actually run
        # (small candidate sets would otherwise scalar-match).
        reference.columnar_min_candidates = 0
        under_test.columnar_min_candidates = 0
        for row in bases:
            reference.add(Fingerprint(row), row)
            under_test.add(Fingerprint(row), row)

        assert _match_digest(under_test, probes) == _match_digest(
            reference, probes
        )
        assert under_test.backend.degraded_kernels() == ()

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_backend_kernels_bitwise_match_reference(self, name):
        backend = create_backend(name)
        reference = NumpyBackend()
        rng = np.random.default_rng(7)
        seeds = np.arange(64, dtype=np.uint64)
        for _ in range(VERIFY_CALLS + 2):  # beyond the verification window
            ours = backend.draw_block(seeds, KINDS)
            theirs = reference.draw_block(seeds, KINDS)
            assert np.array_equal(ours[0], theirs[0])
            assert np.array_equal(ours[1], theirs[1])
            sources = rng.standard_normal((32, 10))
            alpha = 1.0 + 0.25 * (np.arange(32, dtype=np.float64) % 7)
            beta = np.arange(32, dtype=np.float64) % 5 - 2.0
            target = alpha[3] * sources[3] + beta[3]
            assert np.array_equal(
                backend.affine_validate(sources, alpha, beta, target, 1e-8),
                reference.affine_validate(sources, alpha, beta, target, 1e-8),
            )
        assert backend.degraded_kernels() == ()

    @needs_numba
    def test_numba_backend_actually_overrides_kernels(self):
        backend = create_backend("numba")
        assert backend._verify_remaining["draw_block"] == VERIFY_CALLS
        assert backend._verify_remaining["affine_validate"] == VERIFY_CALLS
        # Key kernels inherit the reference: numpy-internal semantics
        # (stable argsort, decimal rounding) are not JIT-delegated.
        assert backend._verify_remaining["sid_orders"] == 0
        assert backend._verify_remaining["normal_forms"] == 0


class _LyingAffineBackend(ComputeBackend):
    """Self-identifies as accelerated, flips one validation bit."""

    name = "lying-affine"

    def _affine_validate(self, sources, alpha, beta, target, tol):
        valid = super()._affine_validate(sources, alpha, beta, target, tol)
        valid = valid.copy()
        valid[0] = not valid[0]
        return valid


class _LyingDrawBackend(ComputeBackend):
    name = "lying-draw"

    def _draw_block(self, seeds, kinds):
        out, ok = super()._draw_block(seeds, kinds)
        out = out.copy()
        out[0, 0] += 1.0
        return out, ok


class _StreamLyingBackend(ComputeBackend):
    """Corrupts draws *and* opts out of kernel-level verification, so the
    lie can only be caught by the fastrng whole-pipeline self-test."""

    name = "stream-liar"
    is_reference = True

    def _draw_block(self, seeds, kinds):
        out, ok = super()._draw_block(seeds, kinds)
        out = out.copy()
        out += 1.0
        return out, ok


class TestDegradeSemantics:
    def test_lying_kernel_warns_once_and_answers_via_reference(self):
        backend = _LyingDrawBackend()
        seeds = np.arange(16, dtype=np.uint64)
        expected = NumpyBackend().draw_block(seeds, KINDS)
        with pytest.warns(RuntimeWarning, match="lying-draw"):
            first = backend.draw_block(seeds, KINDS)
        assert np.array_equal(first[0], expected[0])
        assert backend.degraded_kernels() == ("draw_block",)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            again = backend.draw_block(seeds, KINDS)
        assert np.array_equal(again[0], expected[0])

    def test_degrade_is_store_scoped_not_process_wide(self):
        liar = _LyingAffineBackend()
        store = BasisStore(backend=liar)
        # Route every probe through the columnar engine (the backend's
        # affine kernel); tiny candidate sets would scalar-match instead.
        store.columnar_min_candidates = 0
        rng = np.random.default_rng(3)
        bases = rng.standard_normal((8, 10))
        for row in bases:
            store.add(Fingerprint(row), row)
        clean = BasisStore(backend=NumpyBackend())
        clean.columnar_min_candidates = 0
        for row in bases:
            clean.add(Fingerprint(row), row)
        probes = [Fingerprint(2.0 * row + 1.0) for row in bases]
        with pytest.warns(RuntimeWarning, match="lying-affine"):
            lied = _match_digest(store, probes)
        assert lied == _match_digest(clean, probes)
        assert store.backend.degraded_kernels() == ("affine_validate",)
        assert "degraded:affine_validate" in store.backend.describe()
        # The process-active backend never saw the liar.
        assert active_backend().degraded_kernels() == ()

    def test_stream_lie_degrades_fast_path_per_instance(self):
        backend = _StreamLyingBackend()
        seeds = np.arange(12, dtype=np.uint64)
        with pytest.warns(RuntimeWarning, match="scalar draw path"):
            assert not fastrng.fast_path_available(backend)
        # Degraded instances answer through the scalar path: bitwise
        # equal to the reference stream regardless of the lie.
        matrix = fastrng.draw_matrix(seeds, KINDS, backend=backend)
        assert np.array_equal(
            matrix, fastrng._draw_matrix_scalar(seeds, KINDS)
        )
        status = fastrng.fast_path_status(backend)
        assert status["fast_path"] == "degraded"
        assert "scalar-draws" in status["backend"]
        # Instance-scoped: the process-active backend is untouched.
        assert fastrng.fast_path_status()["fast_path"] in ("ok", "untested")

        # warn-once: re-probing a degraded instance stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not fastrng.fast_path_available(backend)

        # The test-only reset re-arms both the probe and the warning.
        fastrng.reset_fast_path(backend)
        assert fastrng.fast_path_status(backend)["fast_path"] == "untested"
        with pytest.warns(RuntimeWarning, match="scalar draw path"):
            assert not fastrng.fast_path_available(backend)

    def test_fast_path_status_reports_clean_backend(self):
        backend = NumpyBackend()
        assert fastrng.fast_path_status(backend) == {
            "backend": "numpy",
            "fast_path": "untested",
            "degraded_kernels": (),
        }
        assert fastrng.fast_path_available(backend)
        assert fastrng.fast_path_status(backend)["fast_path"] == "ok"

    def test_reset_verification_rearms_kernel_checks(self):
        backend = _LyingDrawBackend()
        seeds = np.arange(8, dtype=np.uint64)
        with pytest.warns(RuntimeWarning):
            backend.draw_block(seeds, KINDS)
        assert backend.degraded_kernels() == ("draw_block",)
        backend.reset_verification()
        assert backend.degraded_kernels() == ()
        assert backend._verify_remaining["draw_block"] == VERIFY_CALLS
        with pytest.warns(RuntimeWarning):
            backend.draw_block(seeds, KINDS)


class TestSelectionAndRefusal:
    def test_unknown_name_refused_with_typed_error(self):
        with pytest.raises(BackendError, match="unknown compute backend"):
            create_backend("nope")
        assert issubclass(BackendError, JigsawError)

    def test_unavailable_name_refused_not_defaulted(self):
        if backend_available("numba"):
            pytest.skip("numba installed: unavailability not testable")
        with pytest.raises(BackendError, match="not available on this host"):
            create_backend("numba")

    def test_registry_lists_numpy_and_numba(self):
        assert "numpy" in backend_names()
        assert "numba" in backend_names()
        assert backend_available("numpy")

    def test_use_backend_rejects_non_backends(self):
        with pytest.raises(BackendError, match="ComputeBackend"):
            use_backend(42)

    def test_resolve_semantics(self):
        assert resolve_backend(None) is active_backend()
        instance = NumpyBackend()
        assert resolve_backend(instance) is instance
        fresh = resolve_backend("numpy")
        assert fresh is not active_backend()
        assert fresh.name == "numpy"

    def test_cli_refuses_unknown_backend_with_exit_2(self, capsys):
        from repro.cli import main

        assert main(["store", "info", "ignored", "--backend", "nope"]) == 2
        assert "unknown compute backend" in capsys.readouterr().err

    @pytest.mark.skipif(
        backend_available("numba"),
        reason="numba installed: unavailability not testable",
    )
    def test_cli_refuses_unavailable_backend_with_exit_2(self, capsys):
        from repro.cli import main

        assert main(["store", "info", "ignored", "--backend", "numba"]) == 2
        assert "not available on this host" in capsys.readouterr().err


class TestBackendReporting:
    def test_session_stats_report_serving_backend(self, tmp_path):
        from repro.api.messages import decode_response, encode_response
        from repro.serve import build_fixture_session

        session = build_fixture_session(bases=4, seed=11)
        response = session.stats()
        assert response.backend == {"default": "numpy"}
        roundtrip = decode_response(encode_response(response))
        assert roundtrip.backend == response.backend

    def test_stats_decoding_tolerates_streams_without_backend(self):
        from repro.api.messages import decode_response, encode_response
        from repro.api.messages import StatsResponse

        encoded = encode_response(StatsResponse(counters={}, bases={}))
        encoded.pop("backend")  # a pre-backend peer's wire document
        decoded = decode_response(encoded)
        assert decoded.backend == {}
