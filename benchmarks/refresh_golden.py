#!/usr/bin/env python
"""Regenerate the golden-figure data under ``benchmarks/golden/``.

Usage::

    PYTHONPATH=src python benchmarks/refresh_golden.py [--check]

Each figure runner exposes deterministic per-figure *data points*
(``FigureResult.data``): per-x estimates, reuse decisions, and jump
counts that are pure functions of the fixed seed bank — never wall
clock.  This script records them at smoke scale, one JSON file per
figure; ``tests/integration/test_figures.py`` compares live runs against
these files **exactly** (float-for-float), so any drift in estimates —
not just in the work counters the bench gate watches — fails CI.

Refresh procedure after an *intentional* change to sampling or estimate
behavior: rerun this script, eyeball the diff, and commit it alongside
an explanation (same policy as ``BENCH_smoke_baseline.json``; see the
ROADMAP subsystem notes).

``--check`` compares without writing and exits non-zero on drift —
usable as a standalone gate.
"""

import argparse
import json
import os
import sys

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
GOLDEN_DIR = os.path.join(_BENCH_DIR, "golden")

sys.path.insert(
    0, os.path.join(os.path.dirname(_BENCH_DIR), "src")
)

from repro.bench.figures import (  # noqa: E402  (path bootstrap above)
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
)

#: fig7 is excluded: its result is a pure timing table with no
#: deterministic data points to pin.
RUNNERS = {
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
}

SCALE = "smoke"


def golden_path(figure):
    return os.path.join(GOLDEN_DIR, f"{figure}.json")


def measure(figure):
    """One figure's golden document (data points + provenance)."""
    result = RUNNERS[figure](SCALE)
    return {"figure": figure, "scale": SCALE, "data": result.data}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against committed files instead of rewriting them",
    )
    args = parser.parse_args(argv)

    os.makedirs(GOLDEN_DIR, exist_ok=True)
    drift = []
    for figure in RUNNERS:
        print(f"measuring {figure} ({SCALE} scale)...", file=sys.stderr)
        document = measure(figure)
        path = golden_path(figure)
        if args.check:
            try:
                with open(path) as handle:
                    committed = json.load(handle)
            except (OSError, ValueError) as error:
                drift.append(f"{figure}: unreadable golden file ({error})")
                continue
            # json round-trip normalizes float formatting on both sides,
            # so this is an exact value comparison.
            if json.loads(json.dumps(document)) != committed:
                drift.append(f"{figure}: data points drifted")
            continue
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")

    if drift:
        print("golden-figure check FAILED:", file=sys.stderr)
        for line in drift:
            print(f"  - {line}", file=sys.stderr)
        print(
            "\nIf the change is intentional, refresh and commit:\n"
            "  PYTHONPATH=src python benchmarks/refresh_golden.py",
            file=sys.stderr,
        )
        return 1
    if args.check:
        print(f"golden-figure check passed: {len(RUNNERS)} figures exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
