"""Unit tests for possible-worlds sampling and the Monte Carlo executor."""

import numpy as np
import pytest

from repro.blackbox import FunctionBlackBox
from repro.core.seeds import SeedBank
from repro.errors import QueryError, SchemaError
from repro.probdb.executor import MonteCarloExecutor
from repro.probdb.expressions import (
    BlackBoxCall,
    ColumnRef,
    Constant,
)
from repro.probdb.query import (
    GeneratorScan,
    Project,
    SingletonScan,
    TableScan,
    WorldContext,
)
from repro.probdb.relation import Relation
from repro.probdb.schema import Schema
from repro.probdb.worlds import RandomRelation, VGColumn, WorldSampler

from repro.blackbox.rng import DeterministicRng


def noise_box():
    return FunctionBlackBox(
        lambda p, s: p["base"] + DeterministicRng(s).normal(),
        name="Noise",
        parameter_names=("base",),
    )


class TestRandomRelation:
    def base_table(self):
        return Relation(Schema.of("row_id:int", "base"), [(0, 10.0), (1, 20.0)])

    def test_instantiate_appends_vg_columns(self):
        random_relation = RandomRelation(
            self.base_table(),
            [VGColumn("sampled", noise_box(), ("base",), ("base",))],
        )
        world = WorldContext(params={}, world_seed=5)
        realized = random_relation.instantiate(world)
        assert realized.schema.names == ("row_id", "base", "sampled")
        values = realized.column_values("sampled")
        assert values[0] != values[1]

    def test_same_world_same_realization(self):
        random_relation = RandomRelation(
            self.base_table(),
            [VGColumn("sampled", noise_box(), ("base",), ("base",))],
        )
        world = WorldContext(params={}, world_seed=5)
        first = random_relation.instantiate(world)
        second = random_relation.instantiate(world)
        assert first.rows == second.rows

    def test_different_worlds_differ(self):
        random_relation = RandomRelation(
            self.base_table(),
            [VGColumn("sampled", noise_box(), ("base",), ("base",))],
        )
        a = random_relation.instantiate(WorldContext(params={}, world_seed=1))
        b = random_relation.instantiate(WorldContext(params={}, world_seed=2))
        assert a.rows != b.rows

    def test_name_collision_rejected(self):
        with pytest.raises(SchemaError):
            RandomRelation(
                self.base_table(),
                [VGColumn("base", noise_box(), ("base",), ("base",))],
            )

    def test_unknown_argument_column_rejected(self):
        with pytest.raises(SchemaError):
            RandomRelation(
                self.base_table(),
                [VGColumn("sampled", noise_box(), ("base",), ("missing",))],
            )

    def test_vg_column_arity_check(self):
        with pytest.raises(SchemaError):
            VGColumn("v", noise_box(), ("a", "b"), ("base",))


class TestWorldSampler:
    def test_worlds_use_seed_bank(self):
        bank = SeedBank(8)
        sampler = WorldSampler(params={"p": 1.0}, seed_bank=bank)
        worlds = list(sampler.worlds(3))
        assert [w.world_seed for w in worlds] == bank.seeds(3)
        assert worlds[0].params == {"p": 1.0}

    def test_world_start_offset(self):
        bank = SeedBank(8)
        sampler = WorldSampler(seed_bank=bank)
        worlds = list(sampler.worlds(2, start=5))
        assert [w.world_seed for w in worlds] == bank.seeds(2, start=5)


def scalar_plan():
    box = noise_box()
    return Project(
        SingletonScan(),
        (
            (
                "value",
                BlackBoxCall(box, ("base",), (Constant(100.0),)),
            ),
        ),
    )


class TestMonteCarloExecutor:
    def test_run_scalar_metrics(self):
        executor = MonteCarloExecutor(world_count=400)
        metrics = executor.run_scalar(scalar_plan(), "value")
        assert metrics.count == 400
        assert metrics.expectation == pytest.approx(100.0, abs=0.2)

    def test_scalar_samples_deterministic(self):
        executor = MonteCarloExecutor(world_count=50)
        a = executor.scalar_samples(scalar_plan(), "value")
        b = executor.scalar_samples(scalar_plan(), "value")
        np.testing.assert_allclose(a, b)

    def test_scalar_samples_start_world(self):
        executor = MonteCarloExecutor(world_count=10)
        full = executor.scalar_samples(
            scalar_plan(), "value", world_count=10
        )
        tail = executor.scalar_samples(
            scalar_plan(), "value", world_count=5, start_world=5
        )
        np.testing.assert_allclose(tail, full[5:])

    def test_run_distribution(self):
        executor = MonteCarloExecutor(world_count=30)
        table = Relation(Schema.of("base"), [(10.0,), (20.0,)])
        box = noise_box()
        plan = Project(
            TableScan(table),
            (
                ("noisy", BlackBoxCall(box, ("base",), (ColumnRef("base"),))),
            ),
        )
        distribution = executor.run_distribution(plan)
        assert distribution.row_count == 2
        assert distribution.world_count == 30
        assert distribution.samples["noisy"].shape == (30, 2)
        assert distribution.expectation("noisy", 0) == pytest.approx(
            10.0, abs=1.0
        )
        assert distribution.metrics("noisy", 1).expectation == pytest.approx(
            20.0, abs=1.0
        )

    def test_varying_cardinality_rejected(self):
        executor = MonteCarloExecutor(world_count=4)
        plan = GeneratorScan(
            Schema.of("x"),
            lambda world: [(1.0,)] * (1 + world.world_seed % 2),
        )
        with pytest.raises(QueryError):
            executor.run_distribution(plan)

    def test_multi_row_scalar_rejected(self):
        executor = MonteCarloExecutor(world_count=2)
        plan = GeneratorScan(Schema.of("x"), lambda world: [(1.0,), (2.0,)])
        with pytest.raises(QueryError):
            executor.run_scalar(plan, "x")

    def test_world_count_validated(self):
        with pytest.raises(QueryError):
            MonteCarloExecutor(world_count=0)
