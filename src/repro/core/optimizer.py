"""The Selector: answering OPTIMIZE queries (paper section 2.2, Figure 1).

An OPTIMIZE query groups the explored results table by a subset of
parameters, filters groups through aggregate constraints over metric values
(e.g. ``MAX(EXPECT overload) < 0.01``), and picks the group optimizing a
lexicographic list of parameter objectives (``FOR MAX @purchase1, MAX
@purchase2``).  Per paper section 2.3, the Selector only *compares*
estimator outputs — it never combines results across parameter values, which
is why sharing seeds across points is statistically safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import MetricSet
from repro.errors import OptimizationError

#: One explored row: parameter values plus per-output-column metrics.
ResultRow = Tuple[Dict[str, float], Dict[str, MetricSet]]

_METRIC_ACCESSORS: Dict[str, Callable[[MetricSet], float]] = {
    "expect": lambda m: m.expectation,
    "expect_stddev": lambda m: m.stddev,
    "stddev": lambda m: m.stddev,
    "min": lambda m: m.minimum,
    "max": lambda m: m.maximum,
    "median": lambda m: m.quantile(0.5),
}

_GROUP_AGGREGATES: Dict[str, Callable[[Sequence[float]], float]] = {
    "max": max,
    "min": min,
    "avg": lambda vs: sum(vs) / len(vs),
    "sum": sum,
}

_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
}


@dataclass(frozen=True)
class Constraint:
    """``AGG(METRIC column) OP threshold`` over each candidate group.

    Example (paper Figure 1): ``MAX(EXPECT overload) < 0.01`` is
    ``Constraint(aggregate="max", metric="expect", column="overload",
    op="<", threshold=0.01)``.
    """

    aggregate: str
    metric: str
    column: str
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.aggregate.lower() not in _GROUP_AGGREGATES:
            raise OptimizationError(
                f"unknown group aggregate {self.aggregate!r}"
            )
        if self.metric.lower() not in _METRIC_ACCESSORS:
            raise OptimizationError(f"unknown metric {self.metric!r}")
        if self.op not in _COMPARATORS:
            raise OptimizationError(f"unknown comparator {self.op!r}")

    def evaluate(self, group_rows: Sequence[ResultRow]) -> Tuple[bool, float]:
        """(satisfied?, aggregate value) for one group of rows."""
        accessor = _METRIC_ACCESSORS[self.metric.lower()]
        values = []
        for _, columns in group_rows:
            if self.column not in columns:
                raise OptimizationError(
                    f"constraint references unknown column {self.column!r}; "
                    f"available: {sorted(columns)}"
                )
            values.append(accessor(columns[self.column]))
        aggregate_value = _GROUP_AGGREGATES[self.aggregate.lower()](values)
        return (
            _COMPARATORS[self.op](aggregate_value, self.threshold),
            aggregate_value,
        )


@dataclass(frozen=True)
class Objective:
    """``FOR MAX @param`` / ``FOR MIN @param`` — lexicographic preference."""

    parameter: str
    direction: str = "max"

    def __post_init__(self) -> None:
        if self.direction.lower() not in ("max", "min"):
            raise OptimizationError(
                f"objective direction must be max or min, got "
                f"{self.direction!r}"
            )


@dataclass
class GroupOutcome:
    """A candidate group's key, feasibility, and constraint values."""

    key: Tuple[Tuple[str, float], ...]
    feasible: bool
    constraint_values: Tuple[float, ...]
    rows: List[ResultRow] = field(default_factory=list)

    def value_of(self, parameter: str) -> float:
        for name, value in self.key:
            if name == parameter:
                return value
        raise OptimizationError(
            f"group key has no parameter {parameter!r}: {self.key}"
        )


@dataclass
class OptimizeAnswer:
    """The Selector's output: best group plus the full feasibility table."""

    best: Optional[GroupOutcome]
    groups: List[GroupOutcome]

    @property
    def feasible_groups(self) -> List[GroupOutcome]:
        return [g for g in self.groups if g.feasible]

    def best_parameters(self) -> Dict[str, float]:
        if self.best is None:
            raise OptimizationError("no feasible group satisfies constraints")
        return dict(self.best.key)


class Selector:
    """Groups explored rows, filters by constraints, picks the optimum."""

    def __init__(
        self,
        group_by: Sequence[str],
        constraints: Sequence[Constraint],
        objectives: Sequence[Objective],
    ):
        if not group_by:
            raise OptimizationError("OPTIMIZE requires a GROUP BY list")
        if not objectives:
            raise OptimizationError("OPTIMIZE requires at least one objective")
        for objective in objectives:
            if objective.parameter not in group_by:
                raise OptimizationError(
                    f"objective parameter {objective.parameter!r} must appear "
                    f"in GROUP BY {list(group_by)}"
                )
        self.group_by = tuple(group_by)
        self.constraints = tuple(constraints)
        self.objectives = tuple(objectives)

    def solve(self, rows: Sequence[ResultRow]) -> OptimizeAnswer:
        if not rows:
            raise OptimizationError("no rows to optimize over")
        groups: Dict[Tuple[Tuple[str, float], ...], List[ResultRow]] = {}
        for params, columns in rows:
            try:
                key = tuple(
                    (name, float(params[name])) for name in self.group_by
                )
            except KeyError as missing:
                raise OptimizationError(
                    f"row lacks GROUP BY parameter {missing}"
                ) from None
            groups.setdefault(key, []).append((params, columns))

        outcomes: List[GroupOutcome] = []
        for key, group_rows in sorted(groups.items()):
            feasible = True
            values: List[float] = []
            for constraint in self.constraints:
                ok, value = constraint.evaluate(group_rows)
                values.append(value)
                feasible = feasible and ok
            outcomes.append(
                GroupOutcome(
                    key=key,
                    feasible=feasible,
                    constraint_values=tuple(values),
                    rows=group_rows,
                )
            )

        best = self._select_best(outcomes)
        return OptimizeAnswer(best=best, groups=outcomes)

    def _select_best(
        self, outcomes: Sequence[GroupOutcome]
    ) -> Optional[GroupOutcome]:
        feasible = [o for o in outcomes if o.feasible]
        if not feasible:
            return None

        def sort_key(outcome: GroupOutcome) -> Tuple[float, ...]:
            parts: List[float] = []
            for objective in self.objectives:
                value = outcome.value_of(objective.parameter)
                parts.append(
                    -value if objective.direction.lower() == "max" else value
                )
            return tuple(parts)

        return min(feasible, key=sort_key)
