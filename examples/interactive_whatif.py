#!/usr/bin/env python
"""Interactive what-if exploration (the paper's Fuzzy Prophet tool, §5).

Simulates an executive scrubbing a purchase-date slider on a dashboard:
each focused point immediately gets a rough estimate from a tiny
fingerprint (reusing any correlated basis already computed), then the
event loop's refinement / validation / exploration ticks sharpen it and
prefetch neighbours.  A final GRAPH OVER rendering shows the expected
overload risk across the whole slider range.

Run:  python examples/interactive_whatif.py
"""

from repro import compile_query
from repro.blackbox import BlackBoxRegistry, CapacityModel, DemandModel
from repro.interactive import InteractiveSession, render_graph

QUERY = """
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 20 STEP BY 2;
SELECT CapacityModel(24, @purchase1, 10)
     - DemandModel(24, 12) AS headroom
INTO results;
GRAPH OVER @purchase1 EXPECT headroom WITH bold red;
"""


def build():
    registry = BlackBoxRegistry()
    registry.register(DemandModel(), "DemandModel")
    registry.register(
        CapacityModel(base_capacity=18.0, purchase_volume=8.0),
        "CapacityModel",
    )
    return compile_query(QUERY, registry)


def main():
    bound = build()
    session = InteractiveSession(
        bound.scenario.column_simulation("headroom"),
        bound.scenario.space,
        fingerprint_size=10,
        chunk=10,
    )

    # The user drags the slider to week 10 and watches the estimate firm up.
    focus = {"purchase1": 10.0}
    session.focus(focus)
    print("focused @purchase1=10; progressive estimate of E[headroom]:")
    for round_index in range(5):
        reports = session.run(3)
        estimate = session.estimate(focus)
        tasks = ",".join(r.task[:3] for r in reports)
        print(
            f"  after {3 * (round_index + 1):>2} ticks [{tasks}]: "
            f"{estimate.expectation:7.2f} +- {estimate.stddev:5.2f}  "
            f"({session.sample_count(focus)} effective samples)"
        )

    # Scrub across the slider: correlated points attach to existing bases,
    # so each new focus shows an instant estimate.
    print("\nscrubbing the slider left to right:")
    values = [float(v) for v in range(0, 21, 2)]
    for value in values:
        session.focus({"purchase1": value})
        session.run(2)
    print(
        f"  visited {len(values)} slider positions using only "
        f"{len(session.store)} basis distributions"
    )

    series = [
        session.estimate({"purchase1": value}).expectation
        for value in values
    ]
    metric, column, _ = bound.graph.series[0]
    print()
    print(
        render_graph(
            bound.graph.x_parameter,
            values,
            {f"{metric} {column}": series},
            width=60,
            height=12,
        )
    )
    print(
        "\n(later purchases leave less headroom at week 24 — the dashboard "
        "view an analyst uses to pick the latest safe purchase date)"
    )


if __name__ == "__main__":
    main()
