"""Scenario definition: a parameterized query plus its parameter space.

A *scenario* bundles what the user writes in the DEFINITION section of a
Jigsaw query (paper Figure 1): parameter declarations and a SELECT producing
named output columns, evaluated per possible world.  ``simulate`` realizes
the scenario's output row for one (parameter point, world seed) pair — the
stochastic function F that batch exploration fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import QueryError
from repro.probdb.expressions import BatchUnsupported
from repro.probdb.query import Operator, WorldContext
from repro.scenario.parameter import ChainParameter, ParameterSpec
from repro.scenario.space import ParameterSpace


@dataclass
class Scenario:
    """A parameterized, single-row scenario query.

    ``plan`` must produce exactly one row per world; its columns are the
    scenario's outputs (e.g. demand, capacity, overload).  ``into`` names
    the results table for OPTIMIZE/GRAPH clauses to reference.
    """

    plan: Operator
    parameters: Tuple[ParameterSpec, ...]
    into: str = "results"
    name: str = "scenario"

    def __post_init__(self) -> None:
        self.space = ParameterSpace(self.parameters)

    @property
    def output_columns(self) -> Tuple[str, ...]:
        return self.plan.schema().names

    @property
    def chain_parameters(self) -> Tuple[ChainParameter, ...]:
        return tuple(
            spec for spec in self.parameters if isinstance(spec, ChainParameter)
        )

    def parameter(self, name: str) -> ParameterSpec:
        for spec in self.parameters:
            if spec.name == name:
                return spec
        raise QueryError(f"scenario has no parameter @{name}")

    def simulate(
        self, params: Mapping[str, float], seed: int
    ) -> Dict[str, float]:
        """One Monte Carlo round: all output column values for one world."""
        relation = self.plan.execute(
            WorldContext(params=dict(params), world_seed=seed)
        )
        if len(relation) != 1:
            raise QueryError(
                f"scenario query must yield exactly one row per world; got "
                f"{len(relation)}"
            )
        row = relation.rows[0]
        result: Dict[str, float] = {}
        for name, value in zip(relation.schema.names, row):
            try:
                result[name] = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise QueryError(
                    f"output column {name!r} is not numeric: {value!r}"
                ) from None
        return result

    def simulate_batch(
        self, params: Mapping[str, float], seeds: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """All output columns across many worlds in one vectorized pass.

        Column vectors are lane-for-lane identical to :meth:`simulate`
        under each seed.  Raises
        :class:`~repro.probdb.expressions.BatchUnsupported` when the plan
        shape cannot batch; callers fall back to the scalar loop.
        """
        seeds = np.atleast_1d(np.asarray(seeds, dtype=np.uint64))
        columns = self.plan.execute_batch(dict(params), seeds)
        result: Dict[str, np.ndarray] = {}
        for name in self.plan.schema().names:
            value = columns[name]
            result[name] = np.broadcast_to(
                np.asarray(value, dtype=float), seeds.shape
            )
        return result

    def column_simulation(self, column: str):
        """A scalar ``(params, seed) -> float`` view of one output column.

        Suitable for :class:`repro.core.explorer.ParameterExplorer` when only
        one column matters; multi-column scenarios should use the
        :class:`repro.scenario.runner.ScenarioRunner`, which shares black-box
        invocations across columns.  The returned callable also exposes
        ``sample_batch`` so the explorer's batched path can vectorize over
        the seed bank (falling back internally when the plan cannot batch).
        """
        if column not in self.output_columns:
            raise QueryError(
                f"unknown output column {column!r}; scenario produces "
                f"{list(self.output_columns)}"
            )

        def simulation(params: Mapping[str, float], seed: int) -> float:
            return self.simulate(params, seed)[column]

        def sample_batch(
            params: Mapping[str, float], seeds: np.ndarray
        ) -> np.ndarray:
            try:
                return np.array(
                    self.simulate_batch(params, seeds)[column], dtype=float
                )
            except BatchUnsupported:
                return np.array(
                    [
                        self.simulate(params, int(seed))[column]
                        for seed in np.atleast_1d(seeds)
                    ],
                    dtype=float,
                )

        simulation.sample_batch = sample_batch  # type: ignore[attr-defined]
        return simulation
