"""Unit tests for the deterministic fault-injection harness
(:mod:`repro.testing.faults`)."""

import numpy as np
import pytest

from repro.core.persist import (
    _array_loader,
    _read_manifest,
    _write_snapshot,
)
from repro.errors import SnapshotCorruptionError
from repro.testing import (
    Fault,
    FaultPlan,
    InjectedCrash,
    InjectedHang,
    active_plan,
    corrupt_array_file,
    use_faults,
)


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("explode")

    def test_times_must_be_positive(self):
        with pytest.raises(ValueError, match="times"):
            Fault("crash", times=0)

    def test_error_faults_need_an_exception(self):
        with pytest.raises(ValueError, match="exception instance"):
            Fault("error")

    def test_uninterpretable_spec_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan({(0, 1): 42})


class TestFaultPlanAddressing:
    def test_faults_fire_only_at_their_address(self):
        plan = FaultPlan({(2, 1): "crash"})
        plan.intercept(0, 1)
        plan.intercept(2, 2)
        plan.intercept(1, 1)
        assert plan.triggered == []
        with pytest.raises(InjectedCrash):
            plan.intercept(2, 1)
        assert plan.triggered == [(2, 1, "crash")]

    def test_kind_strings_coerce_to_faults(self):
        plan = FaultPlan({(0, 1): "hang"})
        with pytest.raises(InjectedHang):
            plan.intercept(0, 1)

    def test_exception_specs_become_error_faults(self):
        boom = ValueError("app bug")
        plan = FaultPlan({(0, 1): boom})
        with pytest.raises(ValueError) as excinfo:
            plan.intercept(0, 1)
        assert excinfo.value is boom
        assert plan.triggered == [(0, 1, "error")]

    def test_interrupt_kind_raises_keyboard_interrupt(self):
        plan = FaultPlan({(0, 1): "interrupt"})
        with pytest.raises(KeyboardInterrupt):
            plan.intercept(0, 1)

    def test_unlimited_faults_fire_every_time(self):
        plan = FaultPlan({(0, 1): "crash"})
        for _ in range(3):
            with pytest.raises(InjectedCrash):
                plan.intercept(0, 1)
        assert plan.triggered == [(0, 1, "crash")] * 3

    def test_times_bounds_how_often_a_fault_fires(self):
        plan = FaultPlan({(0, 1): Fault("crash", times=1)})
        with pytest.raises(InjectedCrash):
            plan.intercept(0, 1)
        plan.intercept(0, 1)  # spent: passes through
        assert plan.triggered == [(0, 1, "crash")]

    def test_fail_n_then_succeed_builds_attempt_ladder(self):
        plan = FaultPlan.fail_n_then_succeed(3, failures=2)
        with pytest.raises(InjectedCrash):
            plan.intercept(3, 1)
        with pytest.raises(InjectedCrash):
            plan.intercept(3, 2)
        plan.intercept(3, 3)  # third attempt succeeds
        assert plan.triggered == [(3, 1, "crash"), (3, 2, "crash")]


class TestActivePlanScoping:
    def test_no_plan_outside_fault_tests(self):
        assert active_plan() is None

    def test_use_faults_installs_and_restores(self):
        outer = FaultPlan()
        inner = FaultPlan()
        with use_faults(outer) as installed:
            assert installed is outer
            assert active_plan() is outer
            with use_faults(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None

    def test_use_faults_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_faults(FaultPlan()):
                raise RuntimeError("test escape")
        assert active_plan() is None


class TestCheckpointCorruption:
    def _snapshot(self, path):
        _write_snapshot(
            str(path),
            {"magic": "test-snap", "version": 1},
            {"a": np.arange(64, dtype=np.float64)},
        )

    def _load(self, path):
        body = _read_manifest(
            str(path), magic="test-snap", max_version=1, kind="test snapshot"
        )
        return _array_loader(str(path), body, mmap=False)("a")

    def test_corrupt_array_file_defeats_the_crc_guard(self, tmp_path):
        self._snapshot(tmp_path / "snap")
        assert self._load(tmp_path / "snap").shape == (64,)  # intact
        target = corrupt_array_file(str(tmp_path / "snap"))
        assert target.endswith(".npy")
        with pytest.raises(SnapshotCorruptionError):
            self._load(tmp_path / "snap")

    def test_corrupt_array_file_requires_arrays(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            corrupt_array_file(str(empty))

    def test_corrupt_checkpoint_after_counts_writes(self, tmp_path):
        plan = FaultPlan(corrupt_checkpoint_after=2)
        first = tmp_path / "first"
        second = tmp_path / "second"
        self._snapshot(first)
        self._snapshot(second)
        with use_faults(plan):
            from repro.testing import faults

            faults.checkpoint_written(str(first))
            assert plan.checkpoints_corrupted == 0
            faults.checkpoint_written(str(second))
        assert plan.checkpoints_written == 2
        assert plan.checkpoints_corrupted == 1
        assert self._load(first).shape == (64,)  # first write untouched
        with pytest.raises(SnapshotCorruptionError):
            self._load(second)

    def test_checkpoint_hook_is_inert_without_a_plan(self, tmp_path):
        from repro.testing import faults

        self._snapshot(tmp_path / "snap")
        faults.checkpoint_written(str(tmp_path / "snap"))
        assert self._load(tmp_path / "snap").shape == (64,)
