"""Unit tests for :class:`repro.core.persist.SweepCheckpoint`.

The checkpoint's contract: records accumulate atomically per completed
shard, a reload round-trips them exactly, corruption degrades to
recompute-all (never blocks a sweep), and an intact checkpoint from a
different sweep configuration is refused with a typed error.
"""

import json
import os

import numpy as np
import pytest

from repro.core.persist import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    MANIFEST_NAME,
    SweepCheckpoint,
)
from repro.errors import JigsawError, SnapshotCompatibilityError
from repro.testing import corrupt_array_file

CONFIG = {"engine": "test", "shard_sizes": [2, 2], "seed_master": 7}


def _record(checkpoint, index):
    checkpoint.record(
        index,
        {"kind": "outcome", "index": index},
        {"values": np.arange(4, dtype=np.float64) + index},
    )


class TestSweepCheckpoint:
    def test_missing_directory_loads_empty(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path / "absent"), CONFIG)
        assert checkpoint.load() == {}

    def test_record_and_reload_round_trip(self, tmp_path):
        path = str(tmp_path / "ckpt")
        writer = SweepCheckpoint(path, CONFIG)
        _record(writer, 0)
        _record(writer, 1)

        reader = SweepCheckpoint(path, CONFIG)
        records = reader.load()
        assert sorted(records) == [0, 1]
        meta, arrays = records[1]
        assert meta == {"kind": "outcome", "index": 1}
        np.testing.assert_array_equal(
            arrays["values"], np.arange(4, dtype=np.float64) + 1
        )

    def test_each_record_is_immediately_durable(self, tmp_path):
        path = str(tmp_path / "ckpt")
        writer = SweepCheckpoint(path, CONFIG)
        _record(writer, 0)
        # A fresh reader (a restarted run) sees the completed shard even
        # though the writer never finished its sweep.
        assert sorted(SweepCheckpoint(path, CONFIG).load()) == [0]
        _record(writer, 1)
        assert sorted(SweepCheckpoint(path, CONFIG).load()) == [0, 1]

    def test_loaded_records_survive_later_appends(self, tmp_path):
        path = str(tmp_path / "ckpt")
        writer = SweepCheckpoint(path, CONFIG)
        _record(writer, 0)

        resumed = SweepCheckpoint(path, CONFIG)
        resumed.load()
        _record(resumed, 1)
        assert sorted(SweepCheckpoint(path, CONFIG).load()) == [0, 1]

    def test_config_mismatch_refuses_with_typed_error(self, tmp_path):
        path = str(tmp_path / "ckpt")
        _record(SweepCheckpoint(path, CONFIG), 0)
        other = dict(CONFIG, shard_sizes=[1, 1, 1, 1])
        with pytest.raises(SnapshotCompatibilityError) as excinfo:
            SweepCheckpoint(path, other).load()
        assert isinstance(excinfo.value, JigsawError)

    def test_corrupt_arrays_degrade_to_recompute_all(self, tmp_path):
        path = str(tmp_path / "ckpt")
        _record(SweepCheckpoint(path, CONFIG), 0)
        corrupt_array_file(path)
        assert SweepCheckpoint(path, CONFIG).load() == {}

    def test_corrupt_manifest_degrades_to_recompute_all(self, tmp_path):
        path = str(tmp_path / "ckpt")
        _record(SweepCheckpoint(path, CONFIG), 0)
        with open(os.path.join(path, MANIFEST_NAME), "a") as handle:
            handle.write("garbage")
        assert SweepCheckpoint(path, CONFIG).load() == {}

    def test_newer_version_refuses_rather_than_discarding(self, tmp_path):
        path = str(tmp_path / "ckpt")
        _record(SweepCheckpoint(path, CONFIG), 0)
        manifest_path = os.path.join(path, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["body"]["version"] = CHECKPOINT_VERSION + 1
        import zlib

        from repro.core.persist import _canonical

        manifest["crc32"] = zlib.crc32(_canonical(manifest["body"]))
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        # A *newer* intact checkpoint is a compatibility problem, not
        # corruption: silently recomputing would discard valid work.
        with pytest.raises(SnapshotCompatibilityError):
            SweepCheckpoint(path, CONFIG).load()

    def test_checkpoint_magic_distinct_from_store_snapshots(self, tmp_path):
        from repro.core.persist import SNAPSHOT_MAGIC

        assert CHECKPOINT_MAGIC != SNAPSHOT_MAGIC
        # A store snapshot is not a checkpoint: magic mismatch reads as
        # corruption, which degrades to recompute-all.
        path = str(tmp_path / "ckpt")
        _record(SweepCheckpoint(path, CONFIG), 0)
        manifest_path = os.path.join(path, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["body"]["magic"] = SNAPSHOT_MAGIC
        import zlib

        from repro.core.persist import _canonical

        manifest["crc32"] = zlib.crc32(_canonical(manifest["body"]))
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        assert SweepCheckpoint(path, CONFIG).load() == {}
