"""Scenario definitions, parameter spaces, and batch runners."""

from repro.scenario.chain_runner import (
    ChainRunResult,
    ChainScenarioRunner,
    ScenarioMarkovAdapter,
)
from repro.scenario.parameter import (
    ChainParameter,
    ParameterSpec,
    RangeParameter,
    SetParameter,
)
from repro.scenario.runner import (
    RunnerStats,
    ScenarioResult,
    ScenarioRunner,
    boolean_column_families,
)
from repro.scenario.scenario import Scenario
from repro.scenario.space import ParameterSpace

__all__ = [
    "ChainRunResult",
    "ChainScenarioRunner",
    "ScenarioMarkovAdapter",
    "ChainParameter",
    "ParameterSpec",
    "RangeParameter",
    "SetParameter",
    "RunnerStats",
    "ScenarioResult",
    "ScenarioRunner",
    "boolean_column_families",
    "Scenario",
    "ParameterSpace",
]
