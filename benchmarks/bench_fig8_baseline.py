"""Figure 8: Jigsaw vs fully exploring the parameter space.

Paper shape: fingerprint reuse wins by one to two orders of magnitude on the
continuous models (a handful of bases cover thousands of points), by much
less on boolean Overload (no remapping), and the Markov-jump evaluator
skips most steps of MarkovStep.
"""

import pytest

from repro.bench.workloads import (
    capacity_workload,
    markov_step_model,
    overload_workload,
    user_selection_workload,
)
from repro.core.basis import BasisStore
from repro.core.explorer import NaiveExplorer, ParameterExplorer
from repro.core.mapping import IdentityMappingFamily, LinearMappingFamily
from repro.core.markov import MarkovJumpRunner, NaiveMarkovRunner

SAMPLES = 80

USAGE = user_selection_workload(weeks=3, user_count=40)
CAPACITY = capacity_workload(weeks=12, purchase_step=6)
OVERLOAD = overload_workload(weeks=12, purchase_step=6)

WORKLOADS = {
    "Usage": (USAGE, LinearMappingFamily),
    "Capacity": (CAPACITY, LinearMappingFamily),
    "Overload": (OVERLOAD, IdentityMappingFamily),
}


@pytest.mark.parametrize("name", list(WORKLOADS), ids=str)
def test_full_evaluation(benchmark, name):
    workload, _ = WORKLOADS[name]
    explorer = NaiveExplorer(
        workload.simulation(), samples_per_point=SAMPLES
    )
    benchmark.pedantic(
        explorer.run, args=(workload.points,), rounds=2, iterations=1
    )


@pytest.mark.parametrize("name", list(WORKLOADS), ids=str)
def test_jigsaw(benchmark, name):
    workload, family = WORKLOADS[name]

    def run():
        explorer = ParameterExplorer(
            workload.simulation(),
            samples_per_point=SAMPLES,
            fingerprint_size=10,
            basis_store=BasisStore(mapping_family=family()),
        )
        return explorer.run(workload.points)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.stats.points_reused > 0


def test_markov_step_naive(benchmark):
    model = markov_step_model()
    runner = NaiveMarkovRunner(model, instance_count=100)
    benchmark.pedantic(runner.run, args=(100,), rounds=2, iterations=1)


def test_markov_step_jigsaw(benchmark):
    def run():
        model = markov_step_model()
        runner = MarkovJumpRunner(
            model, instance_count=100, fingerprint_size=10
        )
        return runner.run(100)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.jumped_steps > 0


def test_fig8_shape():
    """Invocation-count shape check, immune to timer noise: Jigsaw draws
    far fewer samples than the naive sweep on continuous models."""
    workload, _ = WORKLOADS["Capacity"]
    explorer = ParameterExplorer(
        workload.simulation(), samples_per_point=SAMPLES
    )
    result = explorer.run(workload.points)
    naive_samples = len(workload.points) * SAMPLES
    assert result.stats.samples_drawn < naive_samples / 3
