"""Unit tests for the Estimator and metric remapping (Mest)."""

import numpy as np
import pytest

from repro.core.estimator import (
    Estimator,
    merge_metric_sets,
    remap_samples,
)
from repro.core.mapping import AffineMapping, PiecewiseLinearMapping
from repro.errors import EstimatorError

SAMPLES = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0])


class TestEstimate:
    def test_basic_metrics(self):
        metrics = Estimator().estimate(SAMPLES)
        assert metrics.count == 10
        assert metrics.expectation == pytest.approx(5.5)
        assert metrics.stddev == pytest.approx(SAMPLES.std())
        assert metrics.minimum == 1.0
        assert metrics.maximum == 10.0

    def test_quantiles_match_numpy(self):
        metrics = Estimator((0.25, 0.5, 0.75)).estimate(SAMPLES)
        assert metrics.quantile(0.5) == pytest.approx(np.quantile(SAMPLES, 0.5))
        assert metrics.quantile(0.25) == pytest.approx(
            np.quantile(SAMPLES, 0.25)
        )

    def test_missing_quantile_raises(self):
        metrics = Estimator((0.5,)).estimate(SAMPLES)
        with pytest.raises(EstimatorError):
            metrics.quantile(0.9)

    def test_no_quantiles_configured(self):
        metrics = Estimator(()).estimate(SAMPLES)
        assert metrics.quantiles == ()

    def test_empty_samples_rejected(self):
        with pytest.raises(EstimatorError):
            Estimator().estimate([])

    def test_bad_quantile_probability_rejected(self):
        with pytest.raises(EstimatorError):
            Estimator((1.5,))

    def test_probability(self):
        estimator = Estimator()
        assert estimator.probability(SAMPLES, 5.0) == pytest.approx(0.5)
        assert estimator.probability(SAMPLES, 0.0) == 1.0
        assert estimator.probability(SAMPLES, 10.0) == 0.0

    def test_probability_empty_rejected(self):
        with pytest.raises(EstimatorError):
            Estimator().probability([], 0.0)


class TestRemap:
    """Closed-form Mest must equal re-estimating mapped samples."""

    @pytest.mark.parametrize("alpha,beta", [(2.0, 3.0), (-1.5, 0.5), (0.5, -7.0)])
    def test_remap_matches_recompute(self, alpha, beta):
        estimator = Estimator()
        mapping = AffineMapping(alpha, beta)
        direct = estimator.estimate(mapping.apply_array(SAMPLES))
        remapped = estimator.estimate(SAMPLES).remap(mapping)
        assert remapped.expectation == pytest.approx(direct.expectation)
        assert remapped.stddev == pytest.approx(direct.stddev)
        assert remapped.minimum == pytest.approx(direct.minimum)
        assert remapped.maximum == pytest.approx(direct.maximum)
        for (pa, va), (pb, vb) in zip(remapped.quantiles, direct.quantiles):
            assert pa == pytest.approx(pb)
            assert va == pytest.approx(vb, rel=1e-6)

    def test_negative_alpha_swaps_extrema(self):
        metrics = Estimator().estimate(SAMPLES).remap(AffineMapping(-1.0, 0.0))
        assert metrics.minimum == -10.0
        assert metrics.maximum == -1.0

    def test_negative_alpha_reverses_quantile_probabilities(self):
        metrics = Estimator((0.1, 0.9)).estimate(SAMPLES)
        remapped = metrics.remap(AffineMapping(-1.0, 0.0))
        probabilities = [p for p, _ in remapped.quantiles]
        assert probabilities == sorted(probabilities)
        assert probabilities == pytest.approx([0.1, 0.9])

    def test_non_affine_remap_rejected(self):
        metrics = Estimator().estimate(SAMPLES)
        piecewise = PiecewiseLinearMapping((0.0, 1.0), (0.0, 1.0))
        with pytest.raises(EstimatorError):
            metrics.remap(piecewise)

    def test_remap_samples_general_mapping(self):
        piecewise = PiecewiseLinearMapping((0.0, 10.0), (0.0, 20.0))
        mapped = remap_samples(SAMPLES, piecewise)
        np.testing.assert_allclose(mapped, SAMPLES * 2.0)


class TestApproxEquals:
    def test_equal_metrics(self):
        a = Estimator().estimate(SAMPLES)
        b = Estimator().estimate(SAMPLES.copy())
        assert a.approx_equals(b)

    def test_different_metrics(self):
        a = Estimator().estimate(SAMPLES)
        b = Estimator().estimate(SAMPLES * 2)
        assert not a.approx_equals(b)

    def test_different_quantile_sets(self):
        a = Estimator((0.5,)).estimate(SAMPLES)
        b = Estimator((0.25, 0.5)).estimate(SAMPLES)
        assert not a.approx_equals(b)


class TestMerge:
    def test_merge_matches_pooled_estimate(self):
        estimator = Estimator(())
        left, right = SAMPLES[:4], SAMPLES[4:]
        merged = merge_metric_sets(
            estimator.estimate(left), estimator.estimate(right)
        )
        pooled = estimator.estimate(SAMPLES)
        assert merged.count == pooled.count
        assert merged.expectation == pytest.approx(pooled.expectation)
        assert merged.stddev == pytest.approx(pooled.stddev)
        assert merged.minimum == pooled.minimum
        assert merged.maximum == pooled.maximum
