"""Unit tests for symbolic execution over mapped variables (section 6.2)."""

import numpy as np
import pytest

from repro.core.basis import BasisStore
from repro.core.fingerprint import Fingerprint
from repro.core.mapping import AffineMapping
from repro.core.symbolic import MappedVariable, SampleVariable

SAMPLES = np.linspace(-2.0, 2.0, 101)


@pytest.fixture
def basis():
    store = BasisStore()
    return store.add(Fingerprint(tuple(SAMPLES[:10])), SAMPLES)


@pytest.fixture
def other_basis():
    store = BasisStore()
    shifted = SAMPLES**2  # a different distribution entirely
    return store.add(Fingerprint(tuple(shifted[:10])), shifted)


class TestSameBasisAlgebra:
    def test_paper_example_sum(self, basis):
        """X = 2f+2, Y = 3f+3 => X + Y = 5f+5 without sampling."""
        x = MappedVariable.of(basis, AffineMapping(2.0, 2.0))
        y = MappedVariable.of(basis, AffineMapping(3.0, 3.0))
        total = x + y
        assert isinstance(total, MappedVariable)
        assert total.mapping.alpha == pytest.approx(5.0)
        assert total.mapping.beta == pytest.approx(5.0)

    def test_scalar_arithmetic(self, basis):
        x = MappedVariable.of(basis, AffineMapping(2.0, 0.0))
        assert (x + 1.0).mapping.beta == 1.0
        assert (1.0 + x).mapping.beta == 1.0
        assert (x - 1.0).mapping.beta == -1.0
        assert (x * 3.0).mapping.alpha == 6.0
        assert (3.0 * x).mapping.alpha == 6.0
        assert (-x).mapping.alpha == -2.0

    def test_subtraction_same_basis_is_deterministic(self, basis):
        x = MappedVariable.of(basis, AffineMapping(2.0, 5.0))
        y = MappedVariable.of(basis, AffineMapping(2.0, 1.0))
        difference = x - y
        assert isinstance(difference, MappedVariable)
        assert difference.mapping.alpha == 0.0
        assert difference.mapping.beta == pytest.approx(4.0)

    def test_expectation_and_stddev(self, basis):
        x = MappedVariable.of(basis, AffineMapping(2.0, 3.0))
        assert x.expectation() == pytest.approx(2.0 * SAMPLES.mean() + 3.0)
        assert x.stddev() == pytest.approx(2.0 * SAMPLES.std())

    def test_samples_materialization(self, basis):
        x = MappedVariable.of(basis, AffineMapping(-1.0, 0.0))
        np.testing.assert_allclose(x.samples(), -SAMPLES)


class TestProbabilities:
    def test_probability_above_constant(self, basis):
        x = MappedVariable.of(basis)
        empirical = float((SAMPLES > 0.5).mean())
        assert x.probability_greater(0.5) == pytest.approx(empirical)

    def test_probability_with_negative_alpha(self, basis):
        x = MappedVariable.of(basis, AffineMapping(-1.0, 0.0))
        empirical = float((-SAMPLES > 0.5).mean())
        assert x.probability_greater(0.5) == pytest.approx(empirical)

    def test_same_basis_comparison_closed_form(self, basis):
        x = MappedVariable.of(basis, AffineMapping(2.0, 0.1))
        y = MappedVariable.of(basis, AffineMapping(2.0, 0.0))
        # x - y = 0.1 > 0 always.
        assert x.probability_greater(y) == 1.0
        assert y.probability_greater(x) == 0.0

    def test_same_basis_sign_dependent_comparison(self, basis):
        x = MappedVariable.of(basis, AffineMapping(2.0, 0.0))
        y = MappedVariable.of(basis, AffineMapping(1.0, 0.0))
        # x - y = f: positive exactly when the basis sample is.
        expected = float((SAMPLES > 0).mean())
        assert x.probability_greater(y) == pytest.approx(expected)

    def test_cross_basis_comparison_pairs_worlds(self, basis, other_basis):
        x = MappedVariable.of(basis)
        y = MappedVariable.of(other_basis)
        expected = float((SAMPLES > SAMPLES**2).mean())
        assert x.probability_greater(y) == pytest.approx(expected)

    def test_degenerate_alpha_zero(self, basis):
        x = MappedVariable.of(basis, AffineMapping(0.0, 5.0))
        assert x.probability_greater(4.0) == 1.0
        assert x.probability_greater(6.0) == 0.0


class TestCrossBasis:
    def test_cross_basis_sum_falls_back_to_samples(self, basis, other_basis):
        x = MappedVariable.of(basis)
        y = MappedVariable.of(other_basis)
        total = x + y
        assert isinstance(total, SampleVariable)
        np.testing.assert_allclose(total.values, SAMPLES + SAMPLES**2)

    def test_sample_variable_metrics(self, basis, other_basis):
        total = MappedVariable.of(basis) + MappedVariable.of(other_basis)
        assert total.expectation() == pytest.approx(
            (SAMPLES + SAMPLES**2).mean()
        )
        assert total.metrics().count == len(SAMPLES)

    def test_sample_variable_probability(self, basis, other_basis):
        total = MappedVariable.of(basis) + MappedVariable.of(other_basis)
        expected = float(((SAMPLES + SAMPLES**2) > 1.0).mean())
        assert total.probability_greater(1.0) == pytest.approx(expected)

    def test_metrics_via_remap(self, basis):
        x = MappedVariable.of(basis, AffineMapping(3.0, 1.0))
        metrics = x.metrics()
        assert metrics.expectation == pytest.approx(
            3.0 * SAMPLES.mean() + 1.0
        )
