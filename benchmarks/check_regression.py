#!/usr/bin/env python
"""CI bench-regression gate: smoke-scale counters must match the baseline.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py [--workers N]
        [--baseline benchmarks/BENCH_smoke_baseline.json]
        [--time-factor 25.0] [--save-to out.json]

Runs the full ``run_all.py`` suite at ``smoke`` scale into a temporary
file, then compares against the committed baseline:

* **Deterministic counters** (``samples_drawn``, ``reuse_fraction``,
  ``step_invocations``, ...; every per-figure key except ``seconds``) must
  match **exactly**.  They are pure functions of the fixed seed bank, so
  any drift is a real behavior change — either a bug or an intentional
  change that must ship with a refreshed baseline (see ROADMAP subsystem
  notes for the refresh procedure).
* **Wall clock** is compared within a deliberately generous factor
  (default 25x) so the gate catches order-of-magnitude performance
  regressions without flaking on slow shared CI runners.

``--workers N`` runs the sweep sharded; by the parallel engine's
replay-merge invariant the counters must *still* match the serial
baseline, so CI runs this gate twice (serial and ``--workers 4``) against
one committed file.

``--faults-check`` runs the fault-injection smoke verification instead
of the gate: the full suite at ``--workers 4`` with a deterministic
fault plan that kills one shard's first attempt mid-sweep.  Shard
supervision (:mod:`repro.core.supervise`) must retry the crashed shard
and — because every shard is a pure function of the seed bank — land on
deterministic counters that match the committed serial baseline
**exactly**.  The check also asserts the fault actually fired, so a
silently disabled injection seam cannot turn the check into a no-op.

``--lifecycle-check`` runs the store-lifecycle smoke verification
instead of the gate: a fixture store is warmed by a deterministic probe
stream, half its bases are evicted by the reuse-value policy, and every
surviving answer — basis identity, mapping parameters, per-probe
``candidates_tested`` work — is exact-diffed against a fresh store built
from only the survivors.  The committed version-1 snapshot fixture must
also still load through the snapshot version-compat branch.

``--warm-check`` runs the warm-start smoke verification instead of the
gate: a cold ``--scale smoke`` pass that saves every sweep's basis store
(``run_all.py --warm-store``), then a warm serial rerun and a warm
``--workers 4`` rerun from those snapshots.  It verifies that (a) the
cold pass's deterministic counters still equal the committed baseline —
warm plumbing over an empty store directory is bitwise-neutral; (b) the
warm reruns reproduce the cold per-figure estimates *exactly* while
drawing strictly fewer samples; and (c) the warm serial and warm sharded
reruns agree exactly (counters and data points).

Exit status 0 on success, 1 on any mismatch (differences are printed).
"""

import argparse
import importlib.util
import json
import os
import sys
import tempfile

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(_BENCH_DIR, "BENCH_smoke_baseline.json")

#: Per-figure keys that legitimately vary between runs and machines.
#: ``match_seconds`` is the wall clock spent inside the basis-matching
#: engine (informational, like ``seconds``); the match engine's
#: *deterministic* counters — ``candidates_tested``, ``matches_found`` —
#: are exact-diffed like every other counter.  The crossover figure's
#: ``*_crossover_size`` keys are wall-clock-derived (where the backend's
#: timing curve crosses the reference's), so they vary per host and per
#: backend; its deterministic counters (``draws_total``,
#: ``*_agreement``, ...) are exact-diffed like everything else, and are
#: bitwise-identical for every backend by the backend contract.
NON_DETERMINISTIC_KEYS = frozenset(
    {
        "seconds",
        "match_seconds",
        "draw_crossover_size",
        "validate_crossover_size",
    }
)


def _load_run_all():
    spec = importlib.util.spec_from_file_location(
        "_run_all_for_gate", os.path.join(_BENCH_DIR, "run_all.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def deterministic_counters(document):
    """The regression-gated view of a bench document: figure -> counters."""
    return {
        figure: {
            key: value
            for key, value in entry.items()
            if key not in NON_DETERMINISTIC_KEYS
        }
        for figure, entry in document["figures"].items()
    }


def compare(baseline, measured, time_factor):
    """Return a list of human-readable failure strings (empty = pass)."""
    failures = []
    if measured.get("scale") != baseline.get("scale"):
        failures.append(
            f"scale mismatch: baseline {baseline.get('scale')!r}, "
            f"measured {measured.get('scale')!r}"
        )
    expected = deterministic_counters(baseline)
    actual = deterministic_counters(measured)
    for figure in sorted(set(expected) | set(actual)):
        if figure not in actual:
            failures.append(f"{figure}: missing from measured run")
            continue
        if figure not in expected:
            failures.append(f"{figure}: not present in baseline")
            continue
        for key in sorted(set(expected[figure]) | set(actual[figure])):
            want = expected[figure].get(key)
            got = actual[figure].get(key)
            if want != got:
                failures.append(
                    f"{figure}.{key}: baseline {want!r} != measured {got!r}"
                )
    budget = baseline.get("total_seconds", 0.0) * time_factor
    total = measured.get("total_seconds", 0.0)
    if budget > 0 and total > budget:
        failures.append(
            f"wall clock regression: {total:.2f}s exceeds "
            f"{time_factor:.0f}x the baseline "
            f"({baseline['total_seconds']:.2f}s)"
        )
    return failures


#: Figures that read/write warm stores (run_all's adaptive_figures); the
#: remaining figures must be byte-identical between cold and warm runs.
WARM_FIGURES = ("fig8", "fig9", "fig10", "fig11")

#: Counters only a --warm-store run records; stripped before comparing a
#: warm-driver cold pass against the (cold, untagged) committed baseline.
WARM_ONLY_KEYS = frozenset({"warm_reuse_fraction", "warm_loaded_bases"})

#: Per-figure ``FigureResult.data`` sub-keys that must be reproduced
#: exactly by a warm rerun.  Work counters inside the data digests
#: (points_reused, bases_created, ...) legitimately differ — warm runs
#: reuse prior-run bases — but the *estimates* may not move by a single
#: bit.
WARM_EXACT_DATA_KEYS = ("mean_expectation", "mean_stddev")


def _run_suite(run_all, scratch, tag, store_dir, workers):
    """One smoke run_all pass with warm stores; returns (bench, data)."""
    bench_path = os.path.join(scratch, f"{tag}.json")
    data_path = os.path.join(scratch, f"{tag}_data.json")
    run_all.main(
        [
            "--scale", "smoke",
            "--bench-out", bench_path,
            "--data-out", data_path,
            "--warm-store", store_dir,
            "--workers", str(workers),
        ]
    )
    with open(bench_path) as handle:
        bench = json.load(handle)
    with open(data_path) as handle:
        data = json.load(handle)
    return bench, data


def warm_check(baseline_path):
    """The warm-start smoke verification; returns failure strings."""
    failures = []
    baseline = None
    try:
        with open(baseline_path) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        failures.append(f"cannot read baseline {baseline_path}: {error}")

    run_all = _load_run_all()
    with tempfile.TemporaryDirectory() as scratch:
        store_dir = os.path.join(scratch, "stores")
        cold, cold_data = _run_suite(run_all, scratch, "cold", store_dir, 1)
        warm, warm_data = _run_suite(run_all, scratch, "warm", store_dir, 1)
        warm4, warm4_data = _run_suite(
            run_all, scratch, "warm4", store_dir, 4
        )

    # (a) Warm plumbing over an empty store directory is bitwise-neutral:
    # the cold pass must reproduce the committed baseline exactly (modulo
    # the warm_reuse_fraction annotation the warm driver adds).
    if baseline is not None:
        expected = deterministic_counters(baseline)
        measured = deterministic_counters(cold)
        for figure in sorted(set(expected) | set(measured)):
            got = {
                key: value
                for key, value in measured.get(figure, {}).items()
                if key not in WARM_ONLY_KEYS
            }
            if got != expected.get(figure):
                failures.append(
                    f"cold pass drifted from baseline at {figure}: "
                    f"{got!r} != {expected.get(figure)!r}"
                )

    # (b) Warm rerun: exact estimates, strictly fewer samples.
    for figure in WARM_FIGURES:
        cold_entry = cold["figures"].get(figure, {})
        warm_entry = warm["figures"].get(figure, {})
        cold_samples = cold_entry.get("samples_drawn")
        warm_samples = warm_entry.get("samples_drawn")
        if cold_samples is None or warm_samples is None:
            failures.append(f"{figure}: samples_drawn missing from a run")
        elif not warm_samples < cold_samples:
            failures.append(
                f"{figure}: warm rerun drew {warm_samples} samples, not "
                f"strictly fewer than the cold run's {cold_samples}"
            )
        for key, cold_point in cold_data.get(figure, {}).items():
            warm_point = warm_data.get(figure, {}).get(key)
            if warm_point is None:
                failures.append(f"{figure}.{key}: missing from warm data")
                continue
            for metric in WARM_EXACT_DATA_KEYS:
                if metric not in cold_point:
                    continue
                if warm_point.get(metric) != cold_point[metric]:
                    failures.append(
                        f"{figure}.{key}.{metric}: warm "
                        f"{warm_point.get(metric)!r} != cold "
                        f"{cold_point[metric]!r} (estimates must be "
                        f"reproduced exactly)"
                    )

    # (b') Figures with no store to persist (fig7/fig12/match) must be
    # untouched by warm plumbing: cold and warm runs agree exactly.
    cold_counters = deterministic_counters(cold)
    warm_counters = deterministic_counters(warm)
    for figure in sorted(set(cold_counters) | set(warm_counters)):
        if figure in WARM_FIGURES:
            continue
        if warm_counters.get(figure) != cold_counters.get(figure):
            failures.append(
                f"{figure}: warm run counters drifted from cold "
                f"({warm_counters.get(figure)!r} != "
                f"{cold_counters.get(figure)!r}) though the figure has no "
                f"warm store"
            )
        if warm_data.get(figure) != cold_data.get(figure):
            failures.append(
                f"{figure}: warm run data drifted from cold though the "
                f"figure has no warm store"
            )

    # (c) Warm serial and warm sharded agree exactly.
    if deterministic_counters(warm) != deterministic_counters(warm4):
        failures.append(
            "warm serial and warm --workers 4 deterministic counters "
            "disagree"
        )
    if warm_data != warm4_data:
        failures.append(
            "warm serial and warm --workers 4 figure data disagree"
        )
    return failures


def faults_check(baseline_path):
    """The fault-injection smoke verification; returns failure strings.

    Runs the whole smoke suite sharded (``--workers 4``) with a crash
    injected into shard 1's first attempt of every sweep.  The
    supervisor must retry the shard and reproduce the committed serial
    baseline's deterministic counters bit-for-bit.
    """
    failures = []
    baseline = None
    try:
        with open(baseline_path) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"cannot read baseline {baseline_path}: {error}"]

    from repro.testing import FaultPlan, use_faults

    run_all = _load_run_all()
    plan = FaultPlan({(1, 1): "crash"})
    with tempfile.TemporaryDirectory() as scratch:
        out = os.path.join(scratch, "faulted.json")
        with use_faults(plan):
            run_all.main(
                [
                    "--scale", "smoke",
                    "--bench-out", out,
                    "--workers", "4",
                ]
            )
        with open(out) as handle:
            measured = json.load(handle)

    if not plan.triggered:
        failures.append(
            "fault plan never fired: the injection seam is disconnected, "
            "so the check exercised nothing"
        )
    expected = deterministic_counters(baseline)
    actual = deterministic_counters(measured)
    for figure in sorted(set(expected) | set(actual)):
        if actual.get(figure) != expected.get(figure):
            failures.append(
                f"{figure}: counters under injected shard crash drifted "
                f"from baseline ({actual.get(figure)!r} != "
                f"{expected.get(figure)!r})"
            )
    return failures


#: Committed version-1 snapshot fixture (see ROADMAP subsystem notes):
#: the lifecycle check proves the compat branch still reads it.
V1_FIXTURE = os.path.join(
    _BENCH_DIR, os.pardir, "tests", "unit", "data", "snapshot_v1"
)


def lifecycle_check():
    """The store-lifecycle smoke verification; returns failure strings.

    Warms a fixture store with a deterministic probe stream, evicts half
    of it by the reuse-value policy, and exact-diffs every surviving
    answer — basis identity, mapping parameters, per-probe
    ``candidates_tested`` work — against a fresh store built from only
    the survivors.  Also proves the committed version-1 snapshot fixture
    still loads through the version-compat branch.
    """
    failures = []
    from repro.api import EstimateRequest, MatchRequest
    from repro.core import persist
    from repro.core.basis import BasisStore, EvictionPolicy
    from repro.serve import build_fixture_session, build_request_stream

    session = build_fixture_session(bases=32, seed=2026)
    store = session.store()
    store._verify_remaining = 0
    probes = [
        request.fingerprint
        for request in build_request_stream(
            session, 200, seed=9, stats_every=0
        )
        if isinstance(request, (MatchRequest, EstimateRequest))
    ]
    from repro.core.fingerprint import Fingerprint

    fingerprints = [Fingerprint(values) for values in probes]
    for fingerprint in fingerprints:  # warm: bump reuse counters
        store.match(fingerprint)

    bound = len(store) // 2
    evicted = store.evict(EvictionPolicy(max_bases=bound))
    if len(store) != bound:
        failures.append(
            f"eviction left {len(store)} bases, wanted the bound {bound}"
        )
    if len(evicted) != 32 - bound:
        failures.append(
            f"evicted {len(evicted)} bases, expected {32 - bound}"
        )

    rebuild = BasisStore(
        mapping_family=type(store.mapping_family)(),
        index_strategy=type(store.index).strategy,
    )
    rebuild.columnar_min_candidates = store.columnar_min_candidates
    rebuild._verify_remaining = 0
    id_map = {}
    for new_id, basis in enumerate(store.bases):
        id_map[basis.basis_id] = new_id
        rebuild.add(basis.fingerprint, basis.samples)

    for index, fingerprint in enumerate(fingerprints):
        lived_before = store.stats.candidates_tested
        fresh_before = rebuild.stats.candidates_tested
        lived = store.match(fingerprint)
        fresh = rebuild.match(fingerprint)
        lived_work = store.stats.candidates_tested - lived_before
        fresh_work = rebuild.stats.candidates_tested - fresh_before
        if (lived is None) != (fresh is None):
            failures.append(
                f"probe {index}: lifecycle store "
                f"{'missed' if lived is None else 'matched'} but the "
                f"survivors-only rebuild did not agree"
            )
            continue
        if lived_work != fresh_work:
            failures.append(
                f"probe {index}: candidates_tested {lived_work} != "
                f"rebuild's {fresh_work}"
            )
        if lived is None:
            continue
        if id_map.get(lived.basis.basis_id) != fresh.basis.basis_id:
            failures.append(
                f"probe {index}: basis {lived.basis.basis_id} does not "
                f"map to the rebuild's {fresh.basis.basis_id}"
            )
        if lived.mapping != fresh.mapping:
            failures.append(
                f"probe {index}: mapping parameters drifted from the "
                f"survivors-only rebuild"
            )
        if lived.basis.basis_id in evicted:
            failures.append(
                f"probe {index}: matched evicted basis "
                f"{lived.basis.basis_id}"
            )

    try:
        info = persist.snapshot_info(V1_FIXTURE)
        if info["version"] != 1:
            failures.append(
                f"v1 fixture reports version {info['version']}, not 1"
            )
        loaded = persist.load_store(V1_FIXTURE, mmap=False)
        if len(loaded) != 5:
            failures.append(
                f"v1 fixture loaded {len(loaded)} bases, expected 5"
            )
        if any(basis.hits != 0 for basis in loaded.bases):
            failures.append(
                "v1 fixture restored non-zero hits; version-1 snapshots "
                "predate reuse counters and must restore cold"
            )
        if loaded.match(loaded.bases[0].fingerprint) is None:
            failures.append("v1 fixture store cannot answer a probe")
    except Exception as error:  # noqa: BLE001 - any load failure gates
        failures.append(
            f"version-1 snapshot fixture no longer loads: {error}"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the sweep; counters must still match the serial baseline",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help=(
            "run the sweep on this compute backend (see "
            "repro.core.backend); by the backend contract of "
            "bitwise-identical kernels, counters must still match the "
            "default-backend baseline exactly — the CI optional-deps job "
            "runs this gate with --backend numba against the one "
            "committed file"
        ),
    )
    parser.add_argument(
        "--time-factor",
        type=float,
        default=25.0,
        help="fail only when wall clock exceeds this multiple of baseline",
    )
    parser.add_argument(
        "--save-to",
        default=None,
        help=(
            "keep the measured smoke document here (e.g. to refresh the "
            "committed baseline after an intentional change)"
        ),
    )
    parser.add_argument(
        "--warm-check",
        action="store_true",
        help=(
            "run the warm-start smoke verification (cold save, warm "
            "reload serial and --workers 4, exact-diff counters and "
            "estimates) instead of the baseline gate"
        ),
    )
    parser.add_argument(
        "--faults-check",
        action="store_true",
        help=(
            "run the fault-injection smoke verification (kill one shard "
            "mid-sweep at --workers 4; supervised retry must still match "
            "the committed serial baseline exactly) instead of the gate"
        ),
    )
    parser.add_argument(
        "--lifecycle-check",
        action="store_true",
        help=(
            "run the store-lifecycle smoke verification (warm a store, "
            "evict half by policy, exact-diff survivors against a "
            "survivors-only rebuild; v1 snapshot fixture must still "
            "load) instead of the gate"
        ),
    )
    args = parser.parse_args(argv)

    if args.lifecycle_check:
        failures = lifecycle_check()
        if failures:
            print(
                "store-lifecycle smoke verification FAILED:",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(
            "store-lifecycle smoke verification passed: evicted store "
            "answers exactly like a survivors-only rebuild, and the "
            "version-1 snapshot fixture still loads"
        )
        return 0

    if args.faults_check:
        failures = faults_check(args.baseline)
        if failures:
            print(
                "fault-injection smoke verification FAILED:",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(
            "fault-injection smoke verification passed: one shard crashed "
            "and was retried in every sweep, counters still match the "
            "serial baseline exactly"
        )
        return 0

    if args.warm_check:
        failures = warm_check(args.baseline)
        if failures:
            print("warm-start smoke verification FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(
            "warm-start smoke verification passed: cold pass matches the "
            "baseline, warm reruns (serial and 4 workers) reproduce cold "
            "estimates exactly with strictly fewer samples"
        )
        return 0

    baseline = None
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        if not args.save_to:
            print(
                f"cannot read baseline {args.baseline}: {error}",
                file=sys.stderr,
            )
            return 1
        # Bootstrapping: measure and save without a comparison.
        print(
            f"no usable baseline at {args.baseline}; measuring fresh "
            f"({error})",
            file=sys.stderr,
        )

    run_all = _load_run_all()
    with tempfile.TemporaryDirectory() as scratch:
        out = os.path.join(scratch, "smoke.json")
        run_argv = [
            "--scale", "smoke",
            "--bench-out", out,
            "--workers", str(args.workers),
        ]
        if args.backend is not None:
            run_argv += ["--backend", args.backend]
        run_all.main(run_argv)
        with open(out) as handle:
            measured = json.load(handle)

    if args.save_to:
        with open(args.save_to, "w") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"measured smoke document saved to {args.save_to}")
        if baseline is None:
            return 0
        if os.path.realpath(args.save_to) == os.path.realpath(
            args.baseline
        ):
            # Refresh flow, not a gate run: the old baseline was just
            # replaced on purpose, so report what changed and succeed.
            changes = compare(baseline, measured, args.time_factor)
            if changes:
                print("baseline refreshed; counters that changed:")
                for change in changes:
                    print(f"  - {change}")
                print("commit the diff alongside an explanation.")
            else:
                print("baseline refreshed; no counter changes.")
            return 0

    failures = compare(baseline, measured, args.time_factor)
    if failures:
        print("bench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print(
            "\nIf this change is intentional, refresh the baseline:\n"
            f"  PYTHONPATH=src python benchmarks/check_regression.py "
            f"--save-to {os.path.relpath(args.baseline)}\n"
            "and commit the diff alongside an explanation.",
            file=sys.stderr,
        )
        return 1
    workers_note = (
        f" (sharded, {args.workers} workers)" if args.workers > 1 else ""
    )
    print(
        f"bench regression gate passed{workers_note}: "
        f"{len(deterministic_counters(measured))} figures, counters exact, "
        f"wall clock {measured.get('total_seconds', 0.0):.2f}s within "
        f"{args.time_factor:.0f}x of "
        f"{baseline.get('total_seconds', 0.0):.2f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
