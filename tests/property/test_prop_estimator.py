"""Property-based tests for estimator math and metric remapping."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import Estimator, merge_metric_sets
from repro.core.mapping import AffineMapping
from repro.util.stats import RunningStats

sample_lists = st.lists(
    st.floats(
        min_value=-1e5, max_value=1e5, allow_nan=False, allow_infinity=False
    ),
    min_size=2,
    max_size=60,
)

alphas = st.floats(min_value=0.01, max_value=100.0).flatmap(
    lambda a: st.sampled_from([a, -a])
)
betas = st.floats(min_value=-1e3, max_value=1e3)


class TestRemapCommutes:
    """estimate(M(samples)) == M_est(estimate(samples)) — the identity that
    justifies skipping Monte Carlo for mapped points."""

    @given(samples=sample_lists, alpha=alphas, beta=betas)
    @settings(max_examples=200)
    def test_expectation_stddev_extrema(self, samples, alpha, beta):
        estimator = Estimator(())
        mapping = AffineMapping(alpha, beta)
        direct = estimator.estimate(mapping.apply_array(np.asarray(samples)))
        remapped = estimator.estimate(samples).remap(mapping)
        scale = max(abs(direct.expectation), abs(direct.stddev), 1.0)
        assert abs(remapped.expectation - direct.expectation) <= 1e-6 * scale
        assert abs(remapped.stddev - direct.stddev) <= 1e-6 * scale
        assert abs(remapped.minimum - direct.minimum) <= 1e-6 * scale
        assert abs(remapped.maximum - direct.maximum) <= 1e-6 * scale

    @given(samples=sample_lists, alpha=alphas, beta=betas)
    @settings(max_examples=100)
    def test_quantiles(self, samples, alpha, beta):
        estimator = Estimator((0.25, 0.5, 0.75))
        mapping = AffineMapping(alpha, beta)
        direct = estimator.estimate(mapping.apply_array(np.asarray(samples)))
        remapped = estimator.estimate(samples).remap(mapping)
        for (pa, va), (pb, vb) in zip(remapped.quantiles, direct.quantiles):
            assert abs(pa - pb) <= 1e-9
            assert abs(va - vb) <= 1e-5 * max(abs(vb), 1.0)


class TestMergeIsPooling:
    @given(left=sample_lists, right=sample_lists)
    @settings(max_examples=150)
    def test_merge_matches_pooled(self, left, right):
        estimator = Estimator(())
        merged = merge_metric_sets(
            estimator.estimate(left), estimator.estimate(right)
        )
        pooled = estimator.estimate(left + right)
        scale = max(abs(pooled.expectation), pooled.stddev, 1.0)
        assert merged.count == pooled.count
        assert abs(merged.expectation - pooled.expectation) <= 1e-6 * scale
        assert abs(merged.stddev - pooled.stddev) <= 1e-5 * scale


class TestRunningStats:
    @given(samples=sample_lists)
    @settings(max_examples=150)
    def test_matches_numpy(self, samples):
        stats = RunningStats()
        stats.add_many(samples)
        array = np.asarray(samples)
        scale = max(abs(array.mean()), array.var(), 1.0)
        assert abs(stats.mean - array.mean()) <= 1e-7 * scale
        assert abs(stats.variance - array.var()) <= 1e-6 * scale
        assert stats.minimum == array.min()
        assert stats.maximum == array.max()

    @given(left=sample_lists, right=sample_lists)
    @settings(max_examples=100)
    def test_merge_equals_sequential(self, left, right):
        merged = RunningStats()
        merged.add_many(left)
        other = RunningStats()
        other.add_many(right)
        combined = merged.merge(other)
        sequential = RunningStats()
        sequential.add_many(left + right)
        scale = max(abs(sequential.mean), sequential.variance, 1.0)
        assert combined.count == sequential.count
        assert abs(combined.mean - sequential.mean) <= 1e-7 * scale
        assert abs(combined.variance - sequential.variance) <= 1e-6 * scale
