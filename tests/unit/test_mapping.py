"""Unit tests for mapping functions and families (paper Algorithm 2)."""

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.mapping import (
    IDENTITY,
    AffineMapping,
    IdentityMappingFamily,
    LinearMappingFamily,
    MonotoneMappingFamily,
    PiecewiseLinearMapping,
    ScaleMappingFamily,
    ShiftMappingFamily,
    find_linear_mapping,
)
from repro.errors import MappingError


class TestAffineMapping:
    def test_apply(self):
        m = AffineMapping(2.0, 3.0)
        assert m.apply(4.0) == 11.0

    def test_apply_array(self):
        m = AffineMapping(2.0, 3.0)
        np.testing.assert_allclose(
            m.apply_array(np.array([0.0, 1.0])), [3.0, 5.0]
        )

    def test_inverse_round_trip(self):
        m = AffineMapping(2.5, -3.0)
        inverse = m.inverse()
        assert inverse.apply(m.apply(7.0)) == pytest.approx(7.0)

    def test_degenerate_has_no_inverse(self):
        with pytest.raises(MappingError):
            AffineMapping(0.0, 1.0).inverse()

    def test_compose(self):
        outer = AffineMapping(2.0, 1.0)
        inner = AffineMapping(3.0, -1.0)
        composed = outer.compose(inner)
        for x in (-2.0, 0.0, 5.5):
            assert composed.apply(x) == pytest.approx(
                outer.apply(inner.apply(x))
            )

    def test_identity_flags(self):
        assert IDENTITY.is_identity
        assert IDENTITY.is_affine
        assert not AffineMapping(2.0, 0.0).is_identity


class TestFindLinearMapping:
    """Paper Algorithm 2 with float tolerance."""

    def test_paper_example(self):
        # θ1=(0,1.2,2.3,1.3,1.5), θ2=θ1+0.1 — the paper's worked example.
        theta1 = [0.0, 1.2, 2.3, 1.3, 1.5]
        theta2 = [v + 0.1 for v in theta1]
        mapping = find_linear_mapping(theta1, theta2)
        assert mapping is not None
        assert mapping.alpha == pytest.approx(1.0)
        assert mapping.beta == pytest.approx(0.1)

    def test_recovers_scale_and_shift(self):
        source = [1.0, 2.0, -1.0, 4.0]
        target = [3.0 * v - 2.0 for v in source]
        mapping = find_linear_mapping(source, target)
        assert mapping.alpha == pytest.approx(3.0)
        assert mapping.beta == pytest.approx(-2.0)

    def test_rejects_nonlinear_relation(self):
        source = [1.0, 2.0, 3.0]
        target = [1.0, 4.0, 9.0]
        assert find_linear_mapping(source, target) is None

    def test_validates_every_entry(self):
        # First two entries define the map; a later entry breaks it.
        source = [0.0, 1.0, 2.0]
        target = [0.0, 1.0, 2.5]
        assert find_linear_mapping(source, target) is None

    def test_constant_source_to_constant_target_is_shift(self):
        mapping = find_linear_mapping([5.0, 5.0, 5.0], [8.0, 8.0, 8.0])
        assert mapping is not None
        assert mapping.alpha == 1.0
        assert mapping.beta == pytest.approx(3.0)

    def test_constant_source_to_varying_target_fails(self):
        assert find_linear_mapping([5.0, 5.0], [1.0, 2.0]) is None

    def test_size_mismatch_fails(self):
        family = LinearMappingFamily()
        assert (
            family.find(Fingerprint((1.0, 2.0)), Fingerprint((1.0, 2.0, 3.0)))
            is None
        )

    def test_negative_alpha_found(self):
        source = [1.0, 2.0, 3.0]
        target = [-2.0 * v + 1.0 for v in source]
        mapping = find_linear_mapping(source, target)
        assert mapping.alpha == pytest.approx(-2.0)

    def test_tolerates_float_noise(self):
        source = [1.0, 2.0, 3.0, 4.0]
        target = [2.0 * v + 1.0 + 1e-13 for v in source]
        assert find_linear_mapping(source, target) is not None


class TestIdentityFamily:
    def test_equal_fingerprints_match(self):
        family = IdentityMappingFamily()
        fp = Fingerprint((0.0, 1.0, 0.0, 1.0))
        mapping = family.find(fp, Fingerprint(fp.values))
        assert mapping is IDENTITY

    def test_shifted_fingerprints_do_not_match(self):
        family = IdentityMappingFamily()
        assert (
            family.find(Fingerprint((0.0, 1.0)), Fingerprint((1.0, 2.0)))
            is None
        )


class TestShiftFamily:
    def test_finds_pure_shift(self):
        family = ShiftMappingFamily()
        mapping = family.find(
            Fingerprint((1.0, 2.0, 3.0)), Fingerprint((4.0, 5.0, 6.0))
        )
        assert mapping.alpha == 1.0
        assert mapping.beta == pytest.approx(3.0)

    def test_rejects_scaling(self):
        family = ShiftMappingFamily()
        assert (
            family.find(Fingerprint((1.0, 2.0)), Fingerprint((2.0, 4.0)))
            is None
        )


class TestScaleFamily:
    def test_finds_pure_scale(self):
        family = ScaleMappingFamily()
        mapping = family.find(
            Fingerprint((1.0, 2.0, -3.0)), Fingerprint((2.0, 4.0, -6.0))
        )
        assert mapping.alpha == pytest.approx(2.0)
        assert mapping.beta == 0.0

    def test_rejects_shift(self):
        family = ScaleMappingFamily()
        assert (
            family.find(Fingerprint((1.0, 2.0)), Fingerprint((2.0, 3.0)))
            is None
        )

    def test_zero_source_to_zero_target(self):
        family = ScaleMappingFamily()
        mapping = family.find(
            Fingerprint((0.0, 0.0)), Fingerprint((0.0, 0.0))
        )
        assert mapping is IDENTITY


class TestMonotoneFamily:
    def test_finds_increasing_nonlinear_map(self):
        family = MonotoneMappingFamily()
        source = Fingerprint((1.0, 3.0, 2.0, 5.0))
        target = Fingerprint(tuple(v**3 for v in source.values))
        mapping = family.find(source, target)
        assert mapping is not None
        for s, t in zip(source.values, target.values):
            assert mapping.apply(s) == pytest.approx(t)

    def test_finds_decreasing_map(self):
        family = MonotoneMappingFamily()
        source = Fingerprint((1.0, 3.0, 2.0))
        target = Fingerprint(tuple(-(v**3) for v in source.values))
        mapping = family.find(source, target)
        assert mapping is not None
        for s, t in zip(source.values, target.values):
            assert mapping.apply(s) == pytest.approx(t)

    def test_rejects_order_scrambling(self):
        family = MonotoneMappingFamily()
        source = Fingerprint((1.0, 2.0, 3.0))
        target = Fingerprint((1.0, 3.0, 2.0))
        assert family.find(source, target) is None

    def test_equal_source_entries_must_map_equally(self):
        family = MonotoneMappingFamily()
        source = Fingerprint((1.0, 1.0, 2.0))
        target = Fingerprint((1.0, 1.5, 2.0))
        assert family.find(source, target) is None


class TestPiecewiseLinearMapping:
    def test_interpolates(self):
        m = PiecewiseLinearMapping((0.0, 1.0, 2.0), (0.0, 10.0, 40.0))
        assert m.apply(0.5) == pytest.approx(5.0)
        assert m.apply(1.5) == pytest.approx(25.0)

    def test_extrapolates_from_edges(self):
        m = PiecewiseLinearMapping((0.0, 1.0), (0.0, 2.0))
        assert m.apply(2.0) == pytest.approx(4.0)
        assert m.apply(-1.0) == pytest.approx(-2.0)

    def test_inverse(self):
        m = PiecewiseLinearMapping((0.0, 1.0, 3.0), (1.0, 2.0, 10.0))
        inverse = m.inverse()
        for x in (0.0, 0.7, 2.5):
            assert inverse.apply(m.apply(x)) == pytest.approx(x)

    def test_rejects_unsorted_knots(self):
        with pytest.raises(MappingError):
            PiecewiseLinearMapping((1.0, 0.0), (0.0, 1.0))

    def test_rejects_single_knot(self):
        with pytest.raises(MappingError):
            PiecewiseLinearMapping((1.0,), (0.0,))

    def test_rejects_mismatched_knots(self):
        with pytest.raises(MappingError):
            PiecewiseLinearMapping((0.0, 1.0), (0.0,))
