"""Reproduction runners for every table and figure in paper section 6.

Each ``run_figN`` function regenerates the corresponding experiment and
returns a :class:`~repro.bench.harness.FigureResult` (or a text table for
Figure 7) whose series mirror the paper's plot.  Sizes default to a
laptop-friendly scale; pass ``scale="paper"`` for the paper-sized sweeps
(1000 samples/point over the full spaces — minutes of wall clock in pure
Python).
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bench.engines import CoreEngine, WrapperEngine, default_query_for
from repro.bench.harness import FigureResult, Series
from repro.bench.workloads import (
    PAPER_FINGERPRINT_SIZE,
    capacity_workload,
    demand_workload,
    markov_branch_model,
    markov_step_model,
    overload_workload,
    synth_basis_workload,
    user_selection_workload,
    SweepWorkload,
)
from repro.core.basis import BasisStore
from repro.core.explorer import NaiveExplorer, ParameterExplorer
from repro.core.fingerprint import Fingerprint
from repro.core.mapping import IdentityMappingFamily, LinearMappingFamily
from repro.core.adaptive import (
    AdaptiveBudget,
    fixed_budget_samples,
    saved_fraction,
)
from repro.core.markov import MarkovJumpRunner, NaiveMarkovRunner
from repro.core.parallel import ParallelExplorer
from repro.core.seeds import DEFAULT_SEED_BANK
from repro.core import persist
from repro.util import timing
from repro.util.tables import format_table

#: Recognized workload scales: ``smoke`` is the CI regression-gate size
#: (seconds for the whole suite), ``quick`` the laptop default, ``paper``
#: the paper-sized sweeps.
SCALES = ("smoke", "quick", "paper")


def _pick(scale: str, smoke, quick, paper):
    """Choose a size knob by scale name (validates the name)."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}")
    return {"smoke": smoke, "quick": quick, "paper": paper}[scale]


class WarmStores:
    """Per-figure warm-start bookkeeping for ``run_all.py --warm-store``.

    One instance wraps a snapshot directory: each sweep asks for its store
    by a deterministic label — loaded from ``<root>/<label>`` when a
    snapshot exists there (built by an earlier run), cold otherwise — and
    saves the (possibly grown) store back after the sweep, so the *next*
    bench run warm-starts from it.  ``publish`` records the observed
    ``warm_reuse_fraction`` into the figure's counters; warm counters
    legitimately differ from cold ones, which is why the driver tags warm
    documents and refuses them as cold-baseline replacements.
    """

    def __init__(self, root: str):
        self.root = root
        self.points_total = 0
        self.points_reused = 0
        self.loaded_bases = 0

    def _path(self, label: str) -> str:
        return os.path.join(self.root, re.sub(r"[^-A-Za-z0-9_.]", "_", label))

    def store_for(self, label: str, template: BasisStore) -> BasisStore:
        """The warm store for one sweep: snapshot-loaded, else ``template``.

        The template pins the expected configuration, so a stale snapshot
        built under another family/strategy/tolerance regime is refused
        (typed error) instead of silently reused.
        """
        path = self._path(label)
        if not os.path.isdir(path):
            return template
        store = persist.load_store(
            path, like=template, seed_bank=DEFAULT_SEED_BANK
        )
        self.loaded_bases += len(store)
        return store

    def save(self, label: str, store: BasisStore) -> None:
        persist.save_store(
            store, self._path(label), seed_bank=DEFAULT_SEED_BANK
        )

    def record(self, stats) -> None:
        self.points_total += stats.points_total
        self.points_reused += stats.points_reused

    def publish(self, result: FigureResult) -> None:
        result.counters["warm_reuse_fraction"] = (
            self.points_reused / self.points_total
            if self.points_total
            else 0.0
        )
        # Bases the figure's sweeps started from (0 on the cold pass that
        # populates the directory) — deterministic for a given snapshot
        # set, like every other warm counter.
        result.counters["warm_loaded_bases"] = float(self.loaded_bases)


def _warm_context(warm_store: Optional[str]) -> Optional[WarmStores]:
    """A figure's :class:`WarmStores` (or None when running cold)."""
    return WarmStores(warm_store) if warm_store else None


def sweep_checkpoint_path(root: Optional[str], label: str) -> Optional[str]:
    """Per-sweep checkpoint directory under ``--checkpoint``'s root.

    Same label sanitization as :class:`WarmStores`, so each sweep of a
    figure resumes from exactly its own completed-shard records."""
    if not root:
        return None
    return os.path.join(root, re.sub(r"[^-A-Za-z0-9_.]", "_", label))


def _make_explorer(
    simulation,
    samples: int,
    fingerprint_size: int,
    index_strategy: str = "normalization",
    mapping_family=None,
    workers: int = 1,
    adaptive: Optional[AdaptiveBudget] = None,
    warm: Optional[WarmStores] = None,
    warm_label: str = "",
    checkpoint: Optional[str] = None,
):
    """Serial or sharded explorer with identical counters and estimates.

    The sharded engine's canonical replay keeps every counter the bench
    JSON records bit-identical to the serial sweep, so ``--workers`` only
    ever changes wall-clock columns — never the regression-gated values.
    An adaptive budget *does* change counters (that is its point), which
    is why adaptive bench runs are never merged into a fixed baseline;
    the same applies to a ``warm`` store (reuse against prior-run bases
    is the whole point), so warm documents are tagged and refused too.
    """
    store = BasisStore(
        mapping_family=mapping_family, index_strategy=index_strategy
    )
    if warm is not None:
        store = warm.store_for(warm_label, store)
    if workers > 1 or checkpoint is not None:
        # Checkpointing rides on the sharded engine's shard records, so a
        # checkpointed sweep routes through it even single-worker — the
        # canonical replay keeps counters bit-identical regardless.
        return ParallelExplorer(
            simulation,
            workers=workers,
            samples_per_point=samples,
            fingerprint_size=fingerprint_size,
            index_strategy=index_strategy,
            mapping_family=mapping_family,
            adaptive=adaptive,
            basis_store=store,
            checkpoint=checkpoint,
        )
    return ParameterExplorer(
        simulation,
        samples_per_point=samples,
        fingerprint_size=fingerprint_size,
        basis_store=store,
        adaptive=adaptive,
    )


class _AdaptiveAccounting:
    """Accumulates actual-vs-fixed-budget sample counts across sweeps.

    Publishes ``samples_saved_fraction`` — the fraction of the fixed
    budget the adaptive policy did not draw — into a figure's counters.
    Inactive (publishes nothing) when no policy is given, so default
    bench documents stay byte-identical to pre-adaptive baselines.
    """

    def __init__(self, adaptive: Optional[AdaptiveBudget]):
        self.adaptive = adaptive
        self.actual = 0
        self.budget = 0

    def record(self, stats, samples: int, fingerprint_size: int) -> None:
        if self.adaptive is None:
            return
        self.actual += stats.samples_drawn
        self.budget += fixed_budget_samples(
            stats.points_total,
            stats.points_reused,
            samples,
            fingerprint_size,
        )

    def publish(self, result: FigureResult) -> None:
        if self.adaptive is None:
            return
        result.counters["samples_saved_fraction"] = saved_fraction(
            self.actual, self.budget
        )


def _match_counter_baseline(store: BasisStore) -> Dict[str, float]:
    """The store's match counters before a sweep runs against it.

    A cold store reads all zeros; a warm (snapshot-loaded) store carries
    its cumulative lifetime counters, which must not leak into a figure's
    per-run accounting — figures fold the *delta* across the run, so warm
    counters are deterministic for a given starting snapshot regardless
    of how many runs produced it.
    """
    stats = store.stats
    return {
        "candidates_tested": float(stats.candidates_tested),
        "matches": float(stats.matches),
        "match_seconds": stats.match_seconds,
    }


def _match_counter_delta(
    store: BasisStore, baseline: Optional[Dict[str, float]]
) -> Dict[str, float]:
    """Match counters accumulated since ``baseline`` (None = all of them)."""
    current = _match_counter_baseline(store)
    if baseline is None:
        return current
    return {key: current[key] - baseline[key] for key in current}


def _fold_match_counters(
    counters: Dict[str, float],
    candidates_tested: float,
    matches_found: float,
    match_seconds: float,
) -> None:
    """Accumulate one store's match-engine counters into figure totals.

    ``candidates_tested`` and ``matches_found`` are deterministic and
    regression-gated; ``match_seconds`` is informational wall clock
    (rounded so the JSON stays tidy).
    """
    counters["candidates_tested"] = counters.get(
        "candidates_tested", 0.0
    ) + float(candidates_tested)
    counters["matches_found"] = counters.get("matches_found", 0.0) + float(
        matches_found
    )
    counters["match_seconds"] = round(
        counters.get("match_seconds", 0.0) + match_seconds, 6
    )


def _sweep_digest(run) -> Dict[str, float]:
    """Deterministic summary of one explorer sweep's estimates."""
    expectations = [p.metrics.expectation for p in run.points.values()]
    stddevs = [p.metrics.stddev for p in run.points.values()]
    return {
        "mean_expectation": float(np.mean(expectations)),
        "mean_stddev": float(np.mean(stddevs)),
        "points_reused": float(run.stats.points_reused),
        "bases_created": float(run.stats.bases_created),
    }


# ---------------------------------------------------------------------------
# Figure 7 (table): wrapper vs core engine, seconds per parameter combination


def run_fig7(scale: str = "quick") -> str:
    """User-interface wrapper vs core engine timing comparison."""
    samples = _pick(scale, 20, 40, 1000)
    point_budget = _pick(scale, 2, 3, 5)

    workloads = [
        demand_workload(weeks=10, features=(5.0,)),
        capacity_workload(weeks=10, purchase_step=5),
        overload_workload(weeks=10, purchase_step=5),
        user_selection_workload(
            weeks=4, user_count=_pick(scale, 150, 400, 2000)
        ),
    ]
    rows: List[List[object]] = []
    for workload in workloads:
        points = workload.points[:point_budget]
        wrapper = WrapperEngine(
            workload.box,
            default_query_for(workload.box),
            samples_per_point=samples,
        )
        core = CoreEngine(workload.box, samples_per_point=samples)
        start = timing.perf_counter()
        for point in points:
            wrapper.evaluate_point(point)
        wrapper_seconds = (timing.perf_counter() - start) / len(points)
        start = timing.perf_counter()
        for point in points:
            core.evaluate_point(point)
        core_seconds = (timing.perf_counter() - start) / len(points)
        rows.append(
            [
                workload.name,
                wrapper_seconds,
                core_seconds,
                wrapper_seconds / core_seconds,
            ]
        )
    return format_table(
        ["Model", "Online s/pc", "Offline s/pc", "Online/Offline"],
        rows,
        title=(
            "Figure 7: User Interface Wrapper vs Core Engine Simulator "
            "(time per parameter combination)"
        ),
    )


# ---------------------------------------------------------------------------
# Figure 8: Jigsaw vs fully exploring the parameter space


def _explore_pair(
    workload: SweepWorkload,
    mapping_family=None,
    workers: int = 1,
    adaptive: Optional[AdaptiveBudget] = None,
    warm: Optional[WarmStores] = None,
    warm_label: str = "",
    checkpoint_root: Optional[str] = None,
) -> Tuple[float, float, Dict[str, float], "object"]:
    """(naive s, jigsaw s, extras, jigsaw stats) for one sweep workload."""
    simulation = workload.simulation()

    start = timing.perf_counter()
    naive = NaiveExplorer(
        simulation, samples_per_point=workload.samples_per_point
    )
    naive_run = naive.run(workload.points)
    naive_seconds = timing.perf_counter() - start

    explorer = _make_explorer(
        simulation,
        samples=workload.samples_per_point,
        fingerprint_size=workload.fingerprint_size,
        mapping_family=mapping_family or LinearMappingFamily(),
        workers=workers,
        adaptive=adaptive,
        warm=warm,
        warm_label=warm_label,
        checkpoint=sweep_checkpoint_path(checkpoint_root, warm_label),
    )
    match_baseline = _match_counter_baseline(explorer.store)
    start = timing.perf_counter()
    result = explorer.run(workload.points)
    jigsaw_seconds = timing.perf_counter() - start
    if warm is not None:
        warm.record(result.stats)
        warm.save(warm_label, explorer.store)
    match_delta = _match_counter_delta(explorer.store, match_baseline)
    extras = {
        "bases": float(result.stats.bases_created),
        "reuse_fraction": result.stats.reuse_fraction,
        "naive_samples": float(naive_run.stats.samples_drawn),
        "jigsaw_samples": float(result.stats.samples_drawn),
        "candidates_tested": match_delta["candidates_tested"],
        "matches_found": match_delta["matches"],
        "match_seconds": match_delta["match_seconds"],
    }
    extras.update(_sweep_digest(result))
    return naive_seconds, jigsaw_seconds, extras, result.stats


def run_fig8(
    scale: str = "quick",
    workers: int = 1,
    adaptive: Optional[AdaptiveBudget] = None,
    warm_store: Optional[str] = None,
    checkpoint: Optional[str] = None,
) -> FigureResult:
    """Jigsaw vs full evaluation on Usage, Capacity, Overload, MarkovStep."""
    # The paper's 1000 samples/point are affordable even at quick scale with
    # the batch sampling engine; quick now shrinks only the parameter spaces.
    # Full evaluation cost scales with samples/point while reused points do
    # not, so this is also what Figure 8 is actually about.
    samples = _pick(scale, 250, 1000, 1000)
    result = FigureResult(
        figure="Figure 8",
        caption="Jigsaw vs fully exploring the parameter space",
        x_label="workload",
        y_label="computation time (s)",
    )
    full_series = Series("Full Evaluation")
    jigsaw_series = Series("Jigsaw")

    workloads = [
        (
            "Usage",
            user_selection_workload(
                weeks=_pick(scale, 3, 4, 8),
                user_count=_pick(scale, 40, 60, 500),
            ),
            LinearMappingFamily(),
        ),
        (
            "Capacity",
            capacity_workload(
                weeks=_pick(scale, 10, 16, 52),
                purchase_step=_pick(scale, 8, 8, 4),
            ),
            LinearMappingFamily(),
        ),
        (
            "Overload",
            overload_workload(
                weeks=_pick(scale, 10, 20, 52),
                purchase_step=_pick(scale, 8, 8, 4),
            ),
            IdentityMappingFamily(),
        ),
    ]
    reuse_fractions = []
    accounting = _AdaptiveAccounting(adaptive)
    warm = _warm_context(warm_store)
    for label_index, (label, workload, family) in enumerate(workloads):
        workload.samples_per_point = samples
        naive_seconds, jigsaw_seconds, extras, stats = _explore_pair(
            workload, mapping_family=family, workers=workers,
            adaptive=adaptive, warm=warm, warm_label=f"fig8-{label}",
            checkpoint_root=checkpoint,
        )
        accounting.record(stats, samples, workload.fingerprint_size)
        full_series.add(float(label_index), naive_seconds)
        jigsaw_series.add(float(label_index), jigsaw_seconds)
        result.counters["samples_drawn"] = result.counters.get(
            "samples_drawn", 0.0
        ) + extras["naive_samples"] + extras["jigsaw_samples"]
        _fold_match_counters(
            result.counters,
            extras["candidates_tested"],
            extras["matches_found"],
            extras["match_seconds"],
        )
        reuse_fractions.append(extras["reuse_fraction"])
        result.data[label] = {
            "points": float(len(workload.points)),
            "bases": extras["bases"],
            "reuse_fraction": extras["reuse_fraction"],
            "naive_samples": extras["naive_samples"],
            "jigsaw_samples": extras["jigsaw_samples"],
            "mean_expectation": extras["mean_expectation"],
            "mean_stddev": extras["mean_stddev"],
        }
        result.notes.append(
            f"{label}: {len(workload.points)} points, "
            f"{int(extras['bases'])} bases, "
            f"reuse {extras['reuse_fraction']:.1%}, "
            f"speedup {naive_seconds / jigsaw_seconds:.1f}x"
        )
    result.counters["reuse_fraction"] = sum(reuse_fractions) / len(
        reuse_fractions
    )
    accounting.publish(result)
    if warm is not None:
        warm.publish(result)

    # MarkovStep: chain evaluation, naive vs jump.  Chains are sequential
    # in their step index, so this comparison stays single-process at any
    # worker count (sharding applies to parameter sweeps, not chains).
    steps = _pick(scale, 60, 160, 2500)
    instances = _pick(scale, 60, 150, 1000)
    model = markov_step_model()
    naive_runner = NaiveMarkovRunner(model, instance_count=instances)
    start = timing.perf_counter()
    naive_runner.run(steps)
    naive_seconds = timing.perf_counter() - start
    model.reset_invocations()
    jump_runner = MarkovJumpRunner(
        model,
        instance_count=instances,
        fingerprint_size=PAPER_FINGERPRINT_SIZE,
    )
    start = timing.perf_counter()
    jump_result = jump_runner.run(steps)
    jigsaw_seconds = timing.perf_counter() - start
    index = float(len(workloads))
    full_series.add(index, naive_seconds)
    jigsaw_series.add(index, jigsaw_seconds)
    result.notes.append(
        f"MarkovStep: {steps} steps, {len(jump_result.jumps)} jumps, "
        f"{jump_result.full_steps} full steps, "
        f"speedup {naive_seconds / jigsaw_seconds:.1f}x"
    )
    result.counters["markov_step_invocations"] = float(
        jump_result.step_invocations
    )
    result.data["MarkovStep"] = {
        "jumps": float(len(jump_result.jumps)),
        "full_steps": float(jump_result.full_steps),
        "step_invocations": float(jump_result.step_invocations),
    }
    result.notes.append(
        "x axis order: 0=Usage 1=Capacity 2=Overload 3=MarkovStep"
    )
    result.series = [full_series, jigsaw_series]
    return result


# ---------------------------------------------------------------------------
# Figure 9: computation time vs structure size (Capacity model)


def _accumulate_run_counters(
    result: FigureResult, run, match_counters=None
) -> None:
    """Fold one explorer run's work counters into the figure's totals.

    ``match_counters`` (a :func:`_match_counter_delta` over the explorer's
    basis store — serial or merged-parallel, either way carrying the
    canonical replay counters) contributes the match-engine counters:
    ``candidates_tested`` and ``matches_found`` are deterministic and
    regression-gated; ``match_seconds`` is informational wall clock spent
    inside match()/match_batch().  Deltas, not store totals: a
    warm-started store arrives carrying its lifetime counters, and only
    the work of *this* run belongs to this figure.
    """
    counters = result.counters
    counters["samples_drawn"] = counters.get("samples_drawn", 0.0) + float(
        run.stats.samples_drawn
    )
    counters["points_total"] = counters.get("points_total", 0.0) + float(
        run.stats.points_total
    )
    counters["points_reused"] = counters.get("points_reused", 0.0) + float(
        run.stats.points_reused
    )
    counters["reuse_fraction"] = (
        counters["points_reused"] / counters["points_total"]
    )
    if match_counters is not None:
        _fold_match_counters(
            counters,
            match_counters["candidates_tested"],
            match_counters["matches"],
            match_counters["match_seconds"],
        )


def run_fig9(
    scale: str = "quick",
    structure_sizes: Optional[Tuple[float, ...]] = None,
    workers: int = 1,
    adaptive: Optional[AdaptiveBudget] = None,
    warm_store: Optional[str] = None,
    checkpoint: Optional[str] = None,
) -> FigureResult:
    if structure_sizes is None:
        structure_sizes = _pick(
            scale,
            (0.0, 5.0, 10.0),
            (0.0, 2.0, 5.0, 10.0, 16.0),
            tuple(range(0, 21, 2)),
        )
    samples = _pick(scale, 60, 120, 1000)
    weeks = _pick(scale, 12, 26, 52)
    result = FigureResult(
        figure="Figure 9",
        caption="Computation time versus structure size (Capacity model)",
        x_label="structure size",
        y_label="time (ms/point)",
    )
    strategies = ("array", "normalization", "sorted_sid")
    series = {name: Series(_strategy_label(name)) for name in strategies}
    accounting = _AdaptiveAccounting(adaptive)
    warm = _warm_context(warm_store)
    for structure_size in structure_sizes:
        workload = capacity_workload(
            weeks=weeks, purchase_step=8, structure_size=float(structure_size)
        )
        workload.samples_per_point = samples
        for strategy in strategies:
            warm_label = f"fig9-structure{structure_size:g}-{strategy}"
            explorer = _make_explorer(
                workload.simulation(),
                samples=samples,
                fingerprint_size=workload.fingerprint_size,
                index_strategy=strategy,
                workers=workers,
                adaptive=adaptive,
                warm=warm,
                warm_label=warm_label,
                checkpoint=sweep_checkpoint_path(checkpoint, warm_label),
            )
            match_baseline = _match_counter_baseline(explorer.store)
            start = timing.perf_counter()
            run = explorer.run(workload.points)
            elapsed = timing.perf_counter() - start
            if warm is not None:
                warm.record(run.stats)
                warm.save(warm_label, explorer.store)
            series[strategy].add(
                float(structure_size),
                1000.0 * elapsed / len(workload.points),
            )
            _accumulate_run_counters(
                result, run,
                _match_counter_delta(explorer.store, match_baseline),
            )
            accounting.record(run.stats, samples, workload.fingerprint_size)
            result.data[f"structure={structure_size:g}|{strategy}"] = (
                _sweep_digest(run)
            )
            if strategy == "array":
                result.notes.append(
                    f"structure={structure_size}: "
                    f"{run.stats.bases_created} bases over "
                    f"{len(workload.points)} points"
                )
    result.series = [series[s] for s in strategies]
    accounting.publish(result)
    if warm is not None:
        warm.publish(result)
    return result


# ---------------------------------------------------------------------------
# Figures 10 and 11: indexing strategies vs number of basis distributions


def run_fig10(
    scale: str = "quick",
    basis_counts: Optional[Tuple[int, ...]] = None,
    workers: int = 1,
    adaptive: Optional[AdaptiveBudget] = None,
    warm_store: Optional[str] = None,
    checkpoint: Optional[str] = None,
) -> FigureResult:
    """Static parameter space: time relative to the Array scan."""
    if basis_counts is None:
        basis_counts = _pick(
            scale, (10, 40), (10, 50, 150), (10, 25, 50, 100, 200)
        )
    point_count = _pick(scale, 200, 600, 1000)
    samples = _pick(scale, 40, 60, 1000)
    result = FigureResult(
        figure="Figure 10",
        caption="Indexing in a static parameter space",
        x_label="# basis distributions",
        y_label="time relative to Array",
    )
    strategies = ("array", "normalization", "sorted_sid")
    series = {name: Series(_strategy_label(name)) for name in strategies}
    accounting = _AdaptiveAccounting(adaptive)
    warm = _warm_context(warm_store)
    for basis_count in basis_counts:
        timings: Dict[str, float] = {}
        for strategy in strategies:
            workload = synth_basis_workload(basis_count, point_count)
            workload.samples_per_point = samples
            warm_label = f"fig10-bases{basis_count}-{strategy}"
            explorer = _make_explorer(
                workload.simulation(),
                samples=samples,
                fingerprint_size=workload.fingerprint_size,
                index_strategy=strategy,
                workers=workers,
                adaptive=adaptive,
                warm=warm,
                warm_label=warm_label,
                checkpoint=sweep_checkpoint_path(checkpoint, warm_label),
            )
            match_baseline = _match_counter_baseline(explorer.store)
            start = timing.perf_counter()
            run = explorer.run(workload.points)
            timings[strategy] = timing.perf_counter() - start
            if warm is not None:
                warm.record(run.stats)
                warm.save(warm_label, explorer.store)
            _accumulate_run_counters(
                result, run,
                _match_counter_delta(explorer.store, match_baseline),
            )
            accounting.record(run.stats, samples, workload.fingerprint_size)
            result.data[f"bases={basis_count}|{strategy}"] = _sweep_digest(
                run
            )
        for strategy in strategies:
            series[strategy].add(
                float(basis_count), timings[strategy] / timings["array"]
            )
    result.series = [series[s] for s in strategies]
    accounting.publish(result)
    if warm is not None:
        warm.publish(result)
    return result


def run_fig11(
    scale: str = "quick",
    basis_counts: Optional[Tuple[int, ...]] = None,
    workers: int = 1,
    adaptive: Optional[AdaptiveBudget] = None,
    warm_store: Optional[str] = None,
    checkpoint: Optional[str] = None,
) -> FigureResult:
    """Parameter space grown with basis size (basis = 10% of the space)."""
    if basis_counts is None:
        basis_counts = _pick(
            scale,
            (20, 60),
            (25, 75, 150),
            (50, 100, 200, 300, 400, 500),
        )
    samples = _pick(scale, 40, 60, 1000)
    result = FigureResult(
        figure="Figure 11",
        caption="Indexing, growing the parameter space with basis size",
        x_label="# basis distributions",
        y_label="time (s/point)",
    )
    strategies = ("array", "normalization", "sorted_sid")
    series = {name: Series(_strategy_label(name)) for name in strategies}
    accounting = _AdaptiveAccounting(adaptive)
    warm = _warm_context(warm_store)
    for basis_count in basis_counts:
        point_count = basis_count * 10
        for strategy in strategies:
            workload = synth_basis_workload(basis_count, point_count)
            workload.samples_per_point = samples
            warm_label = f"fig11-bases{basis_count}-{strategy}"
            explorer = _make_explorer(
                workload.simulation(),
                samples=samples,
                fingerprint_size=workload.fingerprint_size,
                index_strategy=strategy,
                workers=workers,
                adaptive=adaptive,
                warm=warm,
                warm_label=warm_label,
                checkpoint=sweep_checkpoint_path(checkpoint, warm_label),
            )
            match_baseline = _match_counter_baseline(explorer.store)
            start = timing.perf_counter()
            run = explorer.run(workload.points)
            elapsed = timing.perf_counter() - start
            if warm is not None:
                warm.record(run.stats)
                warm.save(warm_label, explorer.store)
            series[strategy].add(
                float(basis_count), elapsed / point_count
            )
            _accumulate_run_counters(
                result, run,
                _match_counter_delta(explorer.store, match_baseline),
            )
            accounting.record(run.stats, samples, workload.fingerprint_size)
            result.data[f"bases={basis_count}|{strategy}"] = _sweep_digest(
                run
            )
    result.series = [series[s] for s in strategies]
    accounting.publish(result)
    if warm is not None:
        warm.publish(result)
    return result


# ---------------------------------------------------------------------------
# Figure 12: Markov process performance vs branching factor


def run_fig12(
    scale: str = "quick",
    branchings: Optional[Tuple[float, ...]] = None,
) -> FigureResult:
    if branchings is None:
        branchings = _pick(
            scale,
            (1e-3, 0.1),
            (1e-4, 1e-3, 1e-2, 0.1),
            (1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1),
        )
    steps = _pick(scale, 64, 128, 128)
    # The batch stepping engine makes the paper's full instance population
    # affordable even at quick scale, and the population size is what the
    # naive-vs-jump comparison actually measures (n versus m lanes).
    instances = _pick(scale, 400, 1000, 1000)
    result = FigureResult(
        figure="Figure 12",
        caption="Performance for a Markov process",
        x_label="branching factor",
        y_label="time (ms/step)",
    )
    naive_series = Series("Naive")
    jigsaw_series = Series("Jigsaw")
    for branching in branchings:
        model = markov_branch_model(branching)
        naive_runner = NaiveMarkovRunner(model, instance_count=instances)
        start = timing.perf_counter()
        naive_runner.run(steps)
        naive_ms = 1000.0 * (timing.perf_counter() - start) / steps

        model = markov_branch_model(branching)
        jump_runner = MarkovJumpRunner(
            model,
            instance_count=instances,
            fingerprint_size=PAPER_FINGERPRINT_SIZE,
        )
        start = timing.perf_counter()
        jump_result = jump_runner.run(steps)
        jigsaw_ms = 1000.0 * (timing.perf_counter() - start) / steps

        naive_series.add(branching, naive_ms)
        jigsaw_series.add(branching, jigsaw_ms)
        result.data[f"branching={branching:g}"] = {
            "jumps": float(len(jump_result.jumps)),
            "full_steps": float(jump_result.full_steps),
            "step_invocations": float(jump_result.step_invocations),
        }
        result.counters["step_invocations"] = result.counters.get(
            "step_invocations", 0.0
        ) + float(instances * steps + jump_result.step_invocations)
        result.notes.append(
            f"branching={branching:g}: {len(jump_result.jumps)} jumps, "
            f"{jump_result.full_steps} full steps, "
            f"naive/jigsaw = {naive_ms / jigsaw_ms:.2f}x"
        )
    result.series = [naive_series, jigsaw_series]
    return result


# ---------------------------------------------------------------------------
# Match microbenchmark: the columnar FindMatch engine in isolation


def run_match(scale: str = "quick") -> FigureResult:
    """Batched basis matching against synthetic stores, per index strategy.

    Isolates :meth:`BasisStore.match_batch` from sampling: stores are
    preloaded with deterministic fingerprints, then a fixed probe mix
    (affine images that must match, perturbed vectors that must not) is
    matched in one batch per store.  ``candidates_tested`` and
    ``matches_found`` are pure functions of the construction, so the
    smoke regression gate diffs them exactly; ``match_seconds`` tracks
    the engine's wall clock per probe.
    """
    basis_counts = _pick(scale, (32,), (64, 256), (64, 256, 1024))
    probe_count = _pick(scale, 240, 2400, 12000)
    fingerprint_size = PAPER_FINGERPRINT_SIZE
    result = FigureResult(
        figure="Match microbenchmark",
        caption="Columnar FindMatch over preloaded stores",
        x_label="# basis distributions",
        y_label="match time (us/probe)",
    )
    strategies = ("array", "normalization", "sorted_sid")
    series = {name: Series(_strategy_label(name)) for name in strategies}
    rng = np.random.default_rng(20110613)  # deterministic, scale-independent
    for basis_count in basis_counts:
        bases = rng.standard_normal((basis_count, fingerprint_size))
        probes = []
        for probe in range(probe_count):
            source = bases[probe % basis_count]
            alpha = 1.0 + 0.25 * (probe % 7)
            beta = float(probe % 5) - 2.0
            values = alpha * source + beta
            if probe % 4 == 3:
                # A miss: break the affine relation on one entry.
                values = values.copy()
                values[probe % fingerprint_size] += 0.5
            probes.append(Fingerprint(values))
        found_by: Dict[str, int] = {}
        for strategy in strategies:
            store = BasisStore(index_strategy=strategy)
            for row in bases:
                store.add(Fingerprint(row), row)
            start = timing.perf_counter()
            matches = store.match_batch(probes)
            elapsed = timing.perf_counter() - start
            series[strategy].add(
                float(basis_count), 1.0e6 * elapsed / probe_count
            )
            found_by[strategy] = sum(
                1 for match in matches if match is not None
            )
            _fold_match_counters(
                result.counters,
                store.stats.candidates_tested,
                found_by[strategy],
                store.stats.match_seconds,
            )
            result.data[f"bases={basis_count}|{strategy}"] = {
                "lookups": float(store.stats.lookups),
                "candidates_tested": float(store.stats.candidates_tested),
                "matches_found": float(found_by[strategy]),
            }
        per_strategy = ", ".join(
            f"{strategy}={found_by[strategy]}" for strategy in strategies
        )
        result.notes.append(
            f"bases={basis_count}: {probe_count} probes, "
            f"matched {per_strategy}"
        )
    result.series = [series[s] for s in strategies]
    return result


def _strategy_label(strategy: str) -> str:
    return {
        "array": "Array",
        "normalization": "Normalization",
        "sorted_sid": "Sorted SID",
    }[strategy]


# ---------------------------------------------------------------------------
# Crossover study: numpy reference vs the selected compute backend


def _best_seconds(func, repeats: int) -> float:
    """Minimum wall clock over ``repeats`` calls (noise-resistant)."""
    best = float("inf")
    for _ in range(repeats):
        start = timing.perf_counter()
        func()
        best = min(best, timing.perf_counter() - start)
    return best


def run_crossover(scale: str = "quick", backend=None) -> FigureResult:
    """CPU/accelerator crossover: reference vs backend kernel wall clock.

    Times the always-on numpy reference against the selected compute
    backend (:mod:`repro.core.backend`; default: the process-active one)
    on the two kernel hot paths — the vectorized standard-draw fill
    (``draw_block``) and the affine-fit validation (``affine_validate``)
    — across problem sizes, and records where the backend's wall clock
    crosses below the reference's.

    Every *gated* counter is a pure function of the fixed seed
    construction and — by the backend contract of bitwise-identical
    answers — the same for every backend, so the smoke regression gate
    passes unchanged whichever backend ran.  The wall-clock-derived
    values (``draw_crossover_size``, ``validate_crossover_size``) ride
    along as non-gated keys, like ``seconds``.  ``*_agreement`` counters
    are the observed bitwise equality of backend and reference output
    (1.0 on every honest backend): a backend that drifts fails the exact
    gate here even if its self-verification window has been exhausted.
    """
    from repro.blackbox import fastrng
    from repro.core.backend import NumpyBackend, resolve_backend

    backend = resolve_backend(backend)
    reference = NumpyBackend()
    sizes = _pick(
        scale,
        (8, 32),
        (16, 64, 256, 1024),
        (16, 64, 256, 1024, 4096, 16384),
    )
    repeats = _pick(scale, 1, 3, 5)
    kind_cycle = (
        fastrng.KIND_NORMAL,
        fastrng.KIND_UNIFORM,
        fastrng.KIND_EXPONENTIAL,
    )
    kinds = tuple(
        kind_cycle[i % len(kind_cycle)]
        for i in range(PAPER_FINGERPRINT_SIZE)
    )
    result = FigureResult(
        figure="Crossover",
        caption=(
            f"numpy reference vs {backend.name!r} backend, "
            f"sampling and matching kernels"
        ),
        x_label="problem size (rows)",
        y_label="time (us/row)",
    )
    series = {
        "draw_ref": Series("Reference draws"),
        "draw_backend": Series(f"{backend.name} draws"),
        "validate_ref": Series("Reference validate"),
        "validate_backend": Series(f"{backend.name} validate"),
    }
    rng = np.random.default_rng(20110617)  # deterministic, backend-blind
    counters = result.counters
    counters["sizes_swept"] = float(len(sizes))
    crossover = {"draw": -1.0, "validate": -1.0}
    agreement = {"draw": 1.0, "validate": 1.0}
    # Warm both kernels outside the timed region: the first VERIFY_CALLS
    # backend calls pay the self-verification cross-check, and a JIT
    # backend pays compilation once — neither belongs in the comparison.
    warm_seeds = np.arange(8, dtype=np.uint64)
    warm_sources = rng.standard_normal((4, PAPER_FINGERPRINT_SIZE))
    warm_affine = np.ones(4)
    for _ in range(5):
        backend.draw_block(warm_seeds, kinds)
        reference.draw_block(warm_seeds, kinds)
        backend.affine_validate(
            warm_sources, warm_affine, warm_affine, warm_sources[0], 1e-8
        )
        reference.affine_validate(
            warm_sources, warm_affine, warm_affine, warm_sources[0], 1e-8
        )
    for size in sizes:
        seeds = rng.integers(0, 2**63, size=size, dtype=np.uint64)
        ref_draws = reference.draw_block(seeds, kinds)
        backend_draws = backend.draw_block(seeds, kinds)
        if not (
            np.array_equal(ref_draws[0], backend_draws[0])
            and np.array_equal(ref_draws[1], backend_draws[1])
        ):
            agreement["draw"] = 0.0
        draw_ref = _best_seconds(
            lambda: reference.draw_block(seeds, kinds), repeats
        )
        draw_backend = _best_seconds(
            lambda: backend.draw_block(seeds, kinds), repeats
        )

        sources = rng.standard_normal((size, PAPER_FINGERPRINT_SIZE))
        alpha = 1.0 + 0.25 * (np.arange(size, dtype=np.float64) % 7)
        beta = np.arange(size, dtype=np.float64) % 5 - 2.0
        target = alpha[0] * sources[0] + beta[0]
        ref_mask = reference.affine_validate(
            sources, alpha, beta, target, 1e-8
        )
        backend_mask = backend.affine_validate(
            sources, alpha, beta, target, 1e-8
        )
        if not np.array_equal(ref_mask, backend_mask):
            agreement["validate"] = 0.0
        validate_ref = _best_seconds(
            lambda: reference.affine_validate(
                sources, alpha, beta, target, 1e-8
            ),
            repeats,
        )
        validate_backend = _best_seconds(
            lambda: backend.affine_validate(
                sources, alpha, beta, target, 1e-8
            ),
            repeats,
        )

        series["draw_ref"].add(float(size), 1.0e6 * draw_ref / size)
        series["draw_backend"].add(float(size), 1.0e6 * draw_backend / size)
        series["validate_ref"].add(float(size), 1.0e6 * validate_ref / size)
        series["validate_backend"].add(
            float(size), 1.0e6 * validate_backend / size
        )
        if not backend.is_reference:
            if crossover["draw"] < 0 and draw_backend < draw_ref:
                crossover["draw"] = float(size)
            if crossover["validate"] < 0 and validate_backend < validate_ref:
                crossover["validate"] = float(size)
        counters["draws_total"] = counters.get("draws_total", 0.0) + float(
            size * len(kinds)
        )
        counters["rows_validated"] = counters.get(
            "rows_validated", 0.0
        ) + float(size)
        counters["valid_rows"] = counters.get("valid_rows", 0.0) + float(
            int(ref_mask.sum())
        )
        result.data[f"size={size}"] = {
            "draws": float(size * len(kinds)),
            "valid_rows": float(int(ref_mask.sum())),
            "rejection_patched_lanes": float(
                int(np.count_nonzero(~ref_draws[1]))
            ),
        }
    counters["draw_agreement"] = agreement["draw"]
    counters["validate_agreement"] = agreement["validate"]
    # Wall-clock-derived, hence excluded from the exact gate (like
    # ``seconds``); -1 means "never crossed" — always so for the
    # reference backend measured against itself.
    counters["draw_crossover_size"] = crossover["draw"]
    counters["validate_crossover_size"] = crossover["validate"]
    result.notes.append(f"backend under test: {backend.describe()}")
    if backend.is_reference:
        result.notes.append(
            "backend is the numpy reference: timings compare the same "
            "implementation against itself (crossover not applicable)"
        )
    else:
        for kernel in ("draw", "validate"):
            at = crossover[kernel]
            result.notes.append(
                f"{kernel} kernel crossover: "
                + (
                    f"backend faster from size {at:g}"
                    if at >= 0
                    else "reference faster at every measured size"
                )
            )
    result.series = [
        series[key]
        for key in ("draw_ref", "draw_backend", "validate_ref",
                    "validate_backend")
    ]
    return result
