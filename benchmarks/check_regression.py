#!/usr/bin/env python
"""CI bench-regression gate: smoke-scale counters must match the baseline.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py [--workers N]
        [--baseline benchmarks/BENCH_smoke_baseline.json]
        [--time-factor 25.0] [--save-to out.json]

Runs the full ``run_all.py`` suite at ``smoke`` scale into a temporary
file, then compares against the committed baseline:

* **Deterministic counters** (``samples_drawn``, ``reuse_fraction``,
  ``step_invocations``, ...; every per-figure key except ``seconds``) must
  match **exactly**.  They are pure functions of the fixed seed bank, so
  any drift is a real behavior change — either a bug or an intentional
  change that must ship with a refreshed baseline (see ROADMAP subsystem
  notes for the refresh procedure).
* **Wall clock** is compared within a deliberately generous factor
  (default 25x) so the gate catches order-of-magnitude performance
  regressions without flaking on slow shared CI runners.

``--workers N`` runs the sweep sharded; by the parallel engine's
replay-merge invariant the counters must *still* match the serial
baseline, so CI runs this gate twice (serial and ``--workers 4``) against
one committed file.

Exit status 0 on success, 1 on any mismatch (differences are printed).
"""

import argparse
import importlib.util
import json
import os
import sys
import tempfile

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(_BENCH_DIR, "BENCH_smoke_baseline.json")

#: Per-figure keys that legitimately vary between runs and machines.
#: ``match_seconds`` is the wall clock spent inside the basis-matching
#: engine (informational, like ``seconds``); the match engine's
#: *deterministic* counters — ``candidates_tested``, ``matches_found`` —
#: are exact-diffed like every other counter.
NON_DETERMINISTIC_KEYS = frozenset({"seconds", "match_seconds"})


def _load_run_all():
    spec = importlib.util.spec_from_file_location(
        "_run_all_for_gate", os.path.join(_BENCH_DIR, "run_all.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def deterministic_counters(document):
    """The regression-gated view of a bench document: figure -> counters."""
    return {
        figure: {
            key: value
            for key, value in entry.items()
            if key not in NON_DETERMINISTIC_KEYS
        }
        for figure, entry in document["figures"].items()
    }


def compare(baseline, measured, time_factor):
    """Return a list of human-readable failure strings (empty = pass)."""
    failures = []
    if measured.get("scale") != baseline.get("scale"):
        failures.append(
            f"scale mismatch: baseline {baseline.get('scale')!r}, "
            f"measured {measured.get('scale')!r}"
        )
    expected = deterministic_counters(baseline)
    actual = deterministic_counters(measured)
    for figure in sorted(set(expected) | set(actual)):
        if figure not in actual:
            failures.append(f"{figure}: missing from measured run")
            continue
        if figure not in expected:
            failures.append(f"{figure}: not present in baseline")
            continue
        for key in sorted(set(expected[figure]) | set(actual[figure])):
            want = expected[figure].get(key)
            got = actual[figure].get(key)
            if want != got:
                failures.append(
                    f"{figure}.{key}: baseline {want!r} != measured {got!r}"
                )
    budget = baseline.get("total_seconds", 0.0) * time_factor
    total = measured.get("total_seconds", 0.0)
    if budget > 0 and total > budget:
        failures.append(
            f"wall clock regression: {total:.2f}s exceeds "
            f"{time_factor:.0f}x the baseline "
            f"({baseline['total_seconds']:.2f}s)"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the sweep; counters must still match the serial baseline",
    )
    parser.add_argument(
        "--time-factor",
        type=float,
        default=25.0,
        help="fail only when wall clock exceeds this multiple of baseline",
    )
    parser.add_argument(
        "--save-to",
        default=None,
        help=(
            "keep the measured smoke document here (e.g. to refresh the "
            "committed baseline after an intentional change)"
        ),
    )
    args = parser.parse_args(argv)

    baseline = None
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        if not args.save_to:
            print(
                f"cannot read baseline {args.baseline}: {error}",
                file=sys.stderr,
            )
            return 1
        # Bootstrapping: measure and save without a comparison.
        print(
            f"no usable baseline at {args.baseline}; measuring fresh "
            f"({error})",
            file=sys.stderr,
        )

    run_all = _load_run_all()
    with tempfile.TemporaryDirectory() as scratch:
        out = os.path.join(scratch, "smoke.json")
        run_all.main(
            [
                "--scale", "smoke",
                "--bench-out", out,
                "--workers", str(args.workers),
            ]
        )
        with open(out) as handle:
            measured = json.load(handle)

    if args.save_to:
        with open(args.save_to, "w") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"measured smoke document saved to {args.save_to}")
        if baseline is None:
            return 0
        if os.path.realpath(args.save_to) == os.path.realpath(
            args.baseline
        ):
            # Refresh flow, not a gate run: the old baseline was just
            # replaced on purpose, so report what changed and succeed.
            changes = compare(baseline, measured, args.time_factor)
            if changes:
                print("baseline refreshed; counters that changed:")
                for change in changes:
                    print(f"  - {change}")
                print("commit the diff alongside an explanation.")
            else:
                print("baseline refreshed; no counter changes.")
            return 0

    failures = compare(baseline, measured, args.time_factor)
    if failures:
        print("bench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print(
            "\nIf this change is intentional, refresh the baseline:\n"
            f"  PYTHONPATH=src python benchmarks/check_regression.py "
            f"--save-to {os.path.relpath(args.baseline)}\n"
            "and commit the diff alongside an explanation.",
            file=sys.stderr,
        )
        return 1
    workers_note = (
        f" (sharded, {args.workers} workers)" if args.workers > 1 else ""
    )
    print(
        f"bench regression gate passed{workers_note}: "
        f"{len(deterministic_counters(measured))} figures, counters exact, "
        f"wall clock {measured.get('total_seconds', 0.0):.2f}s within "
        f"{args.time_factor:.0f}x of "
        f"{baseline.get('total_seconds', 0.0):.2f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
