"""Integration test: symbolic execution rescues the Overload query.

Paper section 6.2 observes that the boolean Overload output defeats
fingerprint remapping and suggests a symbolic strategy: keep demand and
capacity as mapped random variables and resolve ``P(demand > capacity)``
from basis samples.  This test runs that strategy end to end and compares
it against brute-force overload estimation.
"""

import pytest

from repro.blackbox import CapacityModel, DemandModel
from repro.core.basis import BasisStore
from repro.core.explorer import ParameterExplorer
from repro.core.seeds import DEFAULT_SEED_BANK, derive_seed
from repro.core.symbolic import MappedVariable


def demand_sim(params, seed):
    return DEMAND.sample(
        {
            "current_week": params["current_week"],
            "feature_release": 1e9,
        },
        derive_seed(seed, 1),
    )


def capacity_sim(params, seed):
    return CAPACITY.sample(
        {
            "current_week": params["current_week"],
            "purchase1": params["purchase1"],
            "purchase2": params["purchase2"],
        },
        derive_seed(seed, 2),
    )


DEMAND = DemandModel()
CAPACITY = CapacityModel(base_capacity=10.0, purchase_volume=10.0)

POINTS = [
    {"current_week": float(week), "purchase1": float(p), "purchase2": 16.0}
    for week in range(2, 20, 3)
    for p in (0.0, 8.0)
]

SAMPLES = 200


@pytest.fixture(scope="module")
def explored():
    demand_explorer = ParameterExplorer(
        demand_sim, samples_per_point=SAMPLES, basis_store=BasisStore()
    )
    capacity_explorer = ParameterExplorer(
        capacity_sim, samples_per_point=SAMPLES, basis_store=BasisStore()
    )
    return (
        demand_explorer,
        demand_explorer.run(POINTS),
        capacity_explorer,
        capacity_explorer.run(POINTS),
    )


def brute_force_overload(point):
    hits = 0
    for seed in DEFAULT_SEED_BANK.seeds(SAMPLES):
        if demand_sim(point, seed) > capacity_sim(point, seed):
            hits += 1
    return hits / SAMPLES


class TestSymbolicOverload:
    def test_symbolic_probability_matches_brute_force(self, explored):
        demand_explorer, demand_result, capacity_explorer, capacity_result = (
            explored
        )
        for point in POINTS:
            demand_point = demand_result.result(point)
            capacity_point = capacity_result.result(point)
            demand_var = MappedVariable.of(
                demand_explorer.store.get(demand_point.basis_id),
                demand_point.mapping
                if demand_point.mapping is not None
                else None,
            )
            capacity_var = MappedVariable.of(
                capacity_explorer.store.get(capacity_point.basis_id),
                capacity_point.mapping
                if capacity_point.mapping is not None
                else None,
            )
            symbolic = demand_var.probability_greater(capacity_var)
            brute = brute_force_overload(point)
            # Inside purchase transients the capacity mapping is exact only
            # on the fingerprint entries, so the symbolic probability can
            # drift by a few hundredths; outside transients it is exact.
            assert symbolic == pytest.approx(brute, abs=0.06), point

    def test_symbolic_path_reuses_continuous_bases(self, explored):
        _, demand_result, _, capacity_result = explored
        # Demand over same code path: one basis. Capacity: few bases.
        assert demand_result.stats.bases_created <= 2
        assert (
            capacity_result.stats.bases_created
            < len(POINTS)
        )

    def test_symbolic_work_is_cheaper_than_reexploring_overload(
        self, explored
    ):
        demand_explorer, demand_result, capacity_explorer, capacity_result = (
            explored
        )
        reused = (
            demand_result.stats.points_reused
            + capacity_result.stats.points_reused
        )
        assert reused > 0
