"""Stochastic black-box functions: the protocol plus the paper's Figure 6 models."""

from repro.blackbox.base import (
    BlackBox,
    BlackBoxRegistry,
    FunctionBlackBox,
    MarkovModel,
    Params,
    param_key,
)
from repro.blackbox.capacity import CapacityModel
from repro.blackbox.demand import DemandModel
from repro.blackbox.draws import DEFAULT_DRAW_CACHE, StandardDrawCache
from repro.blackbox.markov_branch import MarkovBranchModel
from repro.blackbox.markov_step import DemandObservedMarkovStep, MarkovStepModel
from repro.blackbox.overload import OverloadModel
from repro.blackbox.rng import DeterministicRng
from repro.blackbox.synth_basis import SynthBasisModel
from repro.blackbox.user_selection import UserSelectionModel

__all__ = [
    "BlackBox",
    "BlackBoxRegistry",
    "FunctionBlackBox",
    "MarkovModel",
    "Params",
    "param_key",
    "CapacityModel",
    "DemandModel",
    "DEFAULT_DRAW_CACHE",
    "StandardDrawCache",
    "MarkovBranchModel",
    "MarkovStepModel",
    "DemandObservedMarkovStep",
    "OverloadModel",
    "DeterministicRng",
    "SynthBasisModel",
    "UserSelectionModel",
]


def default_registry() -> BlackBoxRegistry:
    """Registry with the Figure 6 models under their paper names."""
    registry = BlackBoxRegistry()
    registry.register(DemandModel(), "DemandModel")
    registry.register(CapacityModel(), "CapacityModel")
    registry.register(OverloadModel(), "OverloadModel")
    registry.register(UserSelectionModel(user_count=100), "UserSelectionModel")
    registry.register(SynthBasisModel(), "SynthBasisModel")
    return registry
