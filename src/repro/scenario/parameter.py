"""Parameter declarations (paper section 2.2, ``DECLARE PARAMETER``).

Three kinds, matching the query language:

* ``RANGE a TO b STEP BY s`` — an arithmetic progression (discrete-finite,
  the paper's standing assumption);
* ``SET (v1, v2, ...)`` — an explicit finite set;
* ``CHAIN col FROM @driver : expr INITIAL VALUE v`` — a Markov chain
  parameter whose value at one step of the driver parameter is produced by
  the previous step's query output (paper Figure 5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import JigsawError


class ParameterSpec(ABC):
    """A declared @parameter with its permitted values."""

    name: str

    @abstractmethod
    def values(self) -> Tuple[float, ...]:
        """Every permitted value, in declaration order."""

    @property
    def is_chain(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self.values())


@dataclass(frozen=True)
class RangeParameter(ParameterSpec):
    """``RANGE start TO stop STEP BY step`` (inclusive endpoints)."""

    name: str
    start: float
    stop: float
    step: float = 1.0

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise JigsawError(f"@{self.name}: STEP BY must be positive")
        if self.stop < self.start:
            raise JigsawError(f"@{self.name}: range stop precedes start")

    def values(self) -> Tuple[float, ...]:
        result: List[float] = []
        value = self.start
        # Half-step slack keeps float accumulation from dropping the
        # inclusive endpoint.
        while value <= self.stop + self.step * 1e-9:
            result.append(round(value, 12))
            value += self.step
        return tuple(result)


@dataclass(frozen=True)
class SetParameter(ParameterSpec):
    """``SET (v1, v2, ...)``."""

    name: str
    members: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise JigsawError(f"@{self.name}: SET needs at least one value")

    def values(self) -> Tuple[float, ...]:
        return self.members


@dataclass(frozen=True)
class ChainParameter(ParameterSpec):
    """``CHAIN column FROM @driver : driver_offset INITIAL VALUE v``.

    The parameter's value while evaluating driver step ``t`` is the value of
    ``column`` in the query output at driver step ``t + driver_offset``
    (paper Figure 5 uses offset −1: the previous week's output feeds the
    next).  ``values()`` is undefined for chains — they are not enumerated
    but evolved by the Markov machinery.
    """

    name: str
    source_column: str
    driver: str
    driver_offset: int
    initial_value: float

    @property
    def is_chain(self) -> bool:
        return True

    def values(self) -> Tuple[float, ...]:
        raise JigsawError(
            f"@{self.name} is a CHAIN parameter; its values are produced by "
            "the Markov process, not enumerated"
        )
