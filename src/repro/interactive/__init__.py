"""Interactive online what-if exploration (the paper's Fuzzy Prophet tool)."""

from repro.interactive.heuristics import (
    AdjacentExploreHeuristic,
    RoundRobinTaskHeuristic,
    TASK_EXPLORATION,
    TASK_REFINEMENT,
    TASK_VALIDATION,
)
from repro.interactive.plotting import ascii_chart, render_graph
from repro.interactive.session import (
    InteractiveSession,
    PointState,
    TickReport,
)

__all__ = [
    "AdjacentExploreHeuristic",
    "RoundRobinTaskHeuristic",
    "TASK_EXPLORATION",
    "TASK_REFINEMENT",
    "TASK_VALIDATION",
    "ascii_chart",
    "render_graph",
    "InteractiveSession",
    "PointState",
    "TickReport",
]
