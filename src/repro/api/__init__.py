"""Unified session API: typed requests over basis-store reuse state.

:class:`Session` is the single warm-start and query surface for the
library's precomputed reuse state (the older per-component entry points
— explorer ``basis_store=`` arguments, ``ScenarioRunner.save_stores`` /
``load_stores``, ``InteractiveSession.save_store``/``load_store``, and
the CLI's ``--store``/``--save-store`` — all delegate here).  The same
typed request/response dataclasses drive the in-process facade and the
:mod:`repro.serve` daemon, with bitwise-identical answers.

Quickstart::

    from repro.api import EstimateRequest, Session

    session = Session.open("snapshots/demand")       # zero-copy mmap
    response = session.estimate(
        EstimateRequest(fingerprint=probe_values)
    )
    if response.matched:
        print(response.metrics.expectation)
    session.save("snapshots/demand")                 # atomic
"""

from repro.api.messages import (
    DEFAULT_STORE,
    CompactRequest,
    CompactResponse,
    ErrorResponse,
    EstimateRequest,
    EstimateResponse,
    EvictRequest,
    EvictResponse,
    MatchRequest,
    MatchResponse,
    RefineRequest,
    RefineResponse,
    Request,
    Response,
    ShutdownRequest,
    ShutdownResponse,
    StatsRequest,
    StatsResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.api.session import Session

__all__ = [
    "DEFAULT_STORE",
    "CompactRequest",
    "CompactResponse",
    "ErrorResponse",
    "EstimateRequest",
    "EstimateResponse",
    "EvictRequest",
    "EvictResponse",
    "MatchRequest",
    "MatchResponse",
    "RefineRequest",
    "RefineResponse",
    "Request",
    "Response",
    "Session",
    "ShutdownRequest",
    "ShutdownResponse",
    "StatsRequest",
    "StatsResponse",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
]
